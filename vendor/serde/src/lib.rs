//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides
//! the exact subset of serde the workspace uses: `Serialize` /
//! `Deserialize` derive-able traits and a JSON value model that
//! `serde_json` renders and parses. The serialization contract is
//! simplified — `Serialize` produces a [`Value`] tree directly instead of
//! driving a visitor — which is all `serde_json::to_string_pretty`
//! needs.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document: the target of [`Serialize::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (also covers unsigned values up to `i64::MAX`).
    Int(i64),
    /// An unsigned integer too large for `Int`.
    UInt(u64),
    /// A floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Numeric view of any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned view, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Signed view, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion to the JSON value model. Derivable.
pub trait Serialize {
    /// Render `self` as a [`Value`] tree.
    fn to_json(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`. Derivable; the
/// workspace only ever deserializes untyped [`Value`]s, so no method is
/// required.
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )+};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_returns_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v["a"], Value::Int(1));
        assert!(v["b"].is_null());
        assert!(v[0].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(3u32.to_json(), Value::Int(3));
        assert_eq!(u64::MAX.to_json(), Value::UInt(u64::MAX));
        assert_eq!((-1i32).to_json(), Value::Int(-1));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("x".to_json(), Value::String("x".into()));
        assert_eq!(Option::<f64>::None.to_json(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            (1u32, 2.5f64).to_json(),
            Value::Array(vec![Value::Int(1), Value::Float(2.5)])
        );
    }
}
