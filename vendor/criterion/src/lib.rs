//! Offline stand-in for `criterion`.
//!
//! Measures real wall-clock time: each `Bencher::iter` call calibrates an
//! iteration count so one sample lasts a few milliseconds, collects
//! `sample_size` samples, reports the median, and writes
//! `target/criterion/<group>/<id>/estimates.json` in (a subset of)
//! criterion's on-disk format so downstream tooling can collect medians.
//! No statistical analysis beyond median/min/max, no HTML reports.
#![allow(clippy::all)]

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const SAMPLE_TARGET: Duration = Duration::from_millis(8);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id that is just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the measured routine; handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, calibrating iteration count first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost per iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters as f64);
        }
    }
}

fn target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() || dir.join("target").is_dir() {
            return dir.join("target");
        }
        if !dir.pop() {
            return PathBuf::from("target");
        }
    }
}

fn sanitize(component: &str) -> String {
    component
        .chars()
        .map(|c| if c == '/' || c == '\\' { '_' } else { c })
        .collect()
}

fn run_one(full_id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{full_id:<40} (no measurement: iter was never called)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{full_id:<40} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );

    // Subset of criterion's estimates.json: enough for tooling that
    // reads `.median.point_estimate` (nanoseconds).
    let mut dir = target_dir().join("criterion");
    for part in full_id.split('/') {
        dir.push(sanitize(part));
    }
    if std::fs::create_dir_all(&dir).is_ok() {
        let json = format!(
            "{{\n  \"median\": {{\"point_estimate\": {median}}},\n  \
             \"min\": {{\"point_estimate\": {lo}}},\n  \
             \"max\": {{\"point_estimate\": {hi}}},\n  \
             \"sample_size\": {}\n}}\n",
            samples.len()
        );
        if let Ok(mut file) = std::fs::File::create(dir.join("estimates.json")) {
            let _ = file.write_all(json.as_bytes());
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// Group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a bench group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_samples() {
        let mut bencher = Bencher {
            sample_size: 3,
            samples: Vec::new(),
        };
        bencher.iter(|| black_box(1u64 + 1));
        assert_eq!(bencher.samples.len(), 3);
        assert!(bencher.samples.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("tick", 8).id, "tick/8");
    }
}
