//! Minimal readiness polling for the fvsst control plane.
//!
//! The workspace builds offline with no external crates, so this is the
//! `vendor/` stand-in for the usual `mio`/`polling` layer: a thin, safe
//! wrapper over the operating system's readiness interface — epoll(7)
//! on Linux, poll(2) on other unixes — declared directly against the C
//! runtime that `std` already links. No async runtime, no wakers, no
//! reactor of its own: [`Poller::wait`] blocks, everything above it is
//! an ordinary loop.
//!
//! All `unsafe` in the networking stack lives in this crate; `fvs-net`
//! itself keeps `#![forbid(unsafe_code)]`.
//!
//! The crate also hosts [`raise_nofile_limit`], the `setrlimit(2)` call
//! a 10k-connection loopback soak needs before it can open 20k+
//! descriptors in one process.

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with queued output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor has bytes to read (or EOF to deliver).
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// Error or hang-up: the owner should read to completion and drop.
    pub hangup: bool,
}

const MAX_EVENTS: usize = 1024;

/// A level-triggered readiness poller.
///
/// Register descriptors with a `u64` token, then [`wait`](Poller::wait)
/// for whatever became ready. Level-triggered on purpose: the state
/// machines above re-arm by simply not draining, which is impossible to
/// get wrong under load.
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// A new, empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Change the interest of an already-registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Remove a descriptor from the poller.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Block until something is ready or `timeout` lapses, appending
    /// events to `events` (cleared first). Returns how many arrived.
    /// `None` blocks indefinitely.
    pub fn wait(
        &self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

/// Round a timeout up to whole milliseconds for the C interfaces (so a
/// 100 µs timeout polls for 1 ms instead of busy-spinning at 0).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! epoll(7) backend: O(ready) wakeups regardless of the number of
    //! registered descriptors — the property the 10k-agent soak proves.

    use super::{timeout_ms, Interest, PollEvent, MAX_EVENTS};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel ABI struct. x86-64 packs it to match the 32-bit
    /// layout; every other Linux arch keeps natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                let r = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        MAX_EVENTS as c_int,
                        timeout_ms(timeout),
                    )
                };
                match cvt(r) {
                    Ok(n) => break n as usize,
                    // A signal mid-wait is not an error; retry with the
                    // same timeout (close enough for a 2 ms tick).
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! poll(2) backend for non-Linux unixes: O(n) per wait, which is
    //! fine for tests and small fleets — the soak targets Linux.

    use super::{timeout_ms, Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        regs: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller {
                regs: Mutex::new(Vec::new()),
            })
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut regs = self.regs.lock().unwrap();
            if regs.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            regs.push((fd, token, interest));
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut regs = self.regs.lock().unwrap();
            for r in regs.iter_mut() {
                if r.0 == fd {
                    *r = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut regs = self.regs.lock().unwrap();
            let before = regs.len();
            regs.retain(|(f, _, _)| *f != fd);
            if regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let snapshot: Vec<(RawFd, u64, Interest)> = self.regs.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let r = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
                if r >= 0 {
                    break r as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for (pfd, (_, token, _)) in fds.iter().zip(&snapshot) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

mod rlimit {
    use std::io;
    use std::os::raw::c_int;

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    /// Raise the open-file soft limit toward `want`, lifting the hard
    /// limit too when the process is privileged to. Returns the soft
    /// limit actually in force afterwards — callers scale their fleets
    /// to whatever they got rather than failing outright.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut cur = Rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut cur) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if cur.rlim_cur >= want {
            return Ok(cur.rlim_cur);
        }
        // Privileged path first: lift both limits to the target.
        let lifted = Rlimit {
            rlim_cur: want,
            rlim_max: cur.rlim_max.max(want),
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &lifted) } == 0 {
            return Ok(want);
        }
        // Unprivileged: the hard limit is the ceiling.
        let capped = Rlimit {
            rlim_cur: want.min(cur.rlim_max),
            rlim_max: cur.rlim_max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
            return Ok(capped.rlim_cur);
        }
        Err(io::Error::last_os_error())
    }
}

pub use rlimit::raise_nofile_limit;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "nothing connected yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn data_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "no bytes yet");

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(n >= 1 && events[0].readable);

        // Level-triggered: unread bytes keep the fd ready.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(n >= 1, "level-triggered readiness must persist");

        // Write interest on an idle socket fires immediately.
        poller
            .modify(server.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(n >= 1 && events.iter().any(|e| e.writable));

        poller.deregister(server.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd must not wake the poller");
        drop(client);
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        drop(client);

        let poller = Poller::new().unwrap();
        server.set_nonblocking(true).unwrap();
        poller
            .register(server.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(n >= 1);
        assert!(events[0].readable, "EOF must surface as readable");
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "read observes EOF");
    }

    #[test]
    fn wait_timeout_is_honoured() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotonic() {
        // Asking for a tiny limit must not *lower* anything.
        let before = raise_nofile_limit(64).unwrap();
        assert!(before >= 64);
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before);
    }
}
