//! Offline stand-in for `crossbeam`.
//!
//! Implements the channel subset this workspace uses: `bounded` /
//! `unbounded` mpmc channels with blocking `send`/`recv`,
//! non-blocking `try_recv`/`try_iter`, disconnect-on-drop semantics, and
//! a two/three-arm `select!` macro over `recv(rx) -> msg` arms. The
//! select is a short-interval poll rather than a true waker-based wait —
//! adequate for the daemon control paths that use it.
#![allow(clippy::all)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half. Clonable; the channel disconnects when every sender
    /// is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half. Clonable; `send` fails once every receiver is
    /// dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is ready, but senders remain.
        Empty,
        /// No message is ready and all senders are gone.
        Disconnected,
    }

    /// Channel with a maximum capacity; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Channel with unlimited capacity; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).expect("channel lock");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel lock");
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take the next message, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel lock");
            }
        }

        /// Take the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drain currently-queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().expect("channel lock");
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

/// Wait on several `recv(rx) -> msg => body` arms at once.
///
/// Poll-based: each pass tries the arms in order and sleeps ~50µs when
/// nothing is ready. The winning arm's result is captured first and its
/// body runs *outside* the polling loop, so `break`/`continue` inside a
/// body bind to the caller's enclosing loop, exactly as with real
/// crossbeam.
#[macro_export]
macro_rules! select {
    (
        recv($rx0:expr) -> $msg0:pat => $body0:expr,
        recv($rx1:expr) -> $msg1:pat => $body1:expr $(,)?
    ) => {{
        let mut __sel_res0 = ::core::option::Option::None;
        let mut __sel_res1 = ::core::option::Option::None;
        loop {
            match $rx0.try_recv() {
                ::core::result::Result::Ok(v) => {
                    __sel_res0 = ::core::option::Option::Some(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_res0 = ::core::option::Option::Some(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx1.try_recv() {
                ::core::result::Result::Ok(v) => {
                    __sel_res1 = ::core::option::Option::Some(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_res1 = ::core::option::Option::Some(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(50));
        }
        if let ::core::option::Option::Some($msg0) = __sel_res0 {
            $body0
        } else if let ::core::option::Option::Some($msg1) = __sel_res1 {
            $body1
        } else {
            ::core::unreachable!("select! polling loop exited without a ready arm")
        }
    }};
    (
        recv($rx0:expr) -> $msg0:pat => $body0:expr,
        recv($rx1:expr) -> $msg1:pat => $body1:expr,
        recv($rx2:expr) -> $msg2:pat => $body2:expr $(,)?
    ) => {{
        let mut __sel_res0 = ::core::option::Option::None;
        let mut __sel_res1 = ::core::option::Option::None;
        let mut __sel_res2 = ::core::option::Option::None;
        loop {
            match $rx0.try_recv() {
                ::core::result::Result::Ok(v) => {
                    __sel_res0 = ::core::option::Option::Some(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_res0 = ::core::option::Option::Some(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx1.try_recv() {
                ::core::result::Result::Ok(v) => {
                    __sel_res1 = ::core::option::Option::Some(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_res1 = ::core::option::Option::Some(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx2.try_recv() {
                ::core::result::Result::Ok(v) => {
                    __sel_res2 = ::core::option::Option::Some(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __sel_res2 = ::core::option::Option::Some(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(50));
        }
        if let ::core::option::Option::Some($msg0) = __sel_res0 {
            $body0
        } else if let ::core::option::Option::Some($msg1) = __sel_res1 {
            $body1
        } else if let ::core::option::Option::Some($msg2) = __sel_res2 {
            $body2
        } else {
            ::core::unreachable!("select! polling loop exited without a ready arm")
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let handle = thread::spawn(move || {
            tx.send(20).unwrap(); // blocks until the first recv
            30
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.recv(), Ok(20));
        assert_eq!(handle.join().unwrap(), 30);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn try_iter_drains_queue() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<i32> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_breaks_bind_to_user_loop() {
        let (data_tx, data_rx) = unbounded::<u32>();
        let (ctl_tx, ctl_rx) = unbounded::<&'static str>();
        let handle = thread::spawn(move || {
            let mut total = 0u32;
            loop {
                crate::select! {
                    recv(data_rx) -> msg => match msg {
                        Ok(v) => total += v,
                        Err(_) => break,
                    },
                    recv(ctl_rx) -> msg => match msg {
                        Ok("stop") | Err(_) => break,
                        Ok(_) => {}
                    },
                }
            }
            total
        });
        data_tx.send(3).unwrap();
        data_tx.send(4).unwrap();
        thread::sleep(Duration::from_millis(20));
        ctl_tx.send("stop").unwrap();
        assert_eq!(handle.join().unwrap(), 7);
    }
}
