//! Offline stand-in for `serde_json`.
//!
//! Renders the [`serde`] stand-in's [`Value`] model to JSON text (compact
//! and pretty) and parses JSON text back into [`Value`]s. Covers the
//! subset the workspace uses: `to_string`, `to_string_pretty`,
//! `from_str::<Value>`, and the `Value` inspection API re-exported from
//! `serde`.
#![allow(clippy::all)]

use serde::Serialize;
pub use serde::Value;
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1.0e15 {
        // Keep integral floats readable ("140.0", not "140").
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_f64(*x, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                render(item, indent, depth + 1, out);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed (2-space indented) JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

/// Parse a JSON document. Only `Value` is supported as the target type
/// (typed deserialization is unused in this workspace).
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fvsst".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_and_rejects_garbage() {
        let v = from_str(r#"{"a": [1, {"b": -2.5e3}], "c": "x"}"#).unwrap();
        assert_eq!(v["a"][1]["b"].as_f64(), Some(-2500.0));
        assert!(from_str("{oops}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn integral_floats_render_with_decimal_point() {
        assert_eq!(to_string(&140.0f64).unwrap(), "140.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }
}
