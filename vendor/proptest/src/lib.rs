//! Offline stand-in for `proptest`.
//!
//! Deterministic random property testing covering the subset this
//! workspace uses: `proptest!` blocks with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, strategies over
//! numeric ranges, tuples, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `any::<bool/u64/...>()`, `.prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its seed instead), and value streams are not compatible with
//! upstream's. Each test's RNG seed is derived from its name, so runs
//! are reproducible.
#![allow(clippy::all)]

/// Core strategy abstraction and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Box a strategy (inference-friendly helper for `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
        Box::new(strategy)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the alternative strategies.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_inclusive(0, self.options.len() - 1);
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "empty f64 strategy range");
            a + rng.unit_f64() * (b - a)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty integer strategy range");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    (a as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Build that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive (see [`Arbitrary`] impls).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! any_primitive {
        ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }
    any_primitive! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        f64 => |rng| rng.unit_f64();
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a vec-length specification.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy yielding `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_inclusive(0, self.options.len() - 1);
            self.options[idx].clone()
        }
    }
}

/// Test-loop plumbing: config, RNG, and case outcomes.
pub mod test_runner {
    /// Run configuration. `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject(String),
        /// `prop_assert!`-style failure; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (input filtered out).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// A real assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic SplitMix64 stream used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded RNG; the `proptest!` macro seeds from the test name.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[min, max]`.
        pub fn usize_inclusive(&mut self, min: usize, max: usize) -> usize {
            debug_assert!(min <= max);
            let span = (max - min) as u64 + 1;
            min + (self.next_u64() % span) as usize
        }

        /// FNV-1a hash of a test path, for per-test seeds.
        pub fn seed_from_name(name: &str) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::sample::select`
/// work with `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject (skip) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::__proptest_run!(@cfg($cfg) @name($name) @params($($params)*) @body($body));
        }
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (@cfg($cfg:expr) @name($name:ident) @params($($pname:pat in $strat:expr),+ $(,)?) @body($body:block)) => {{
        let __config: $crate::test_runner::Config = $cfg;
        let __seed = $crate::test_runner::TestRng::seed_from_name(
            concat!(module_path!(), "::", stringify!($name)),
        );
        let mut __rng = $crate::test_runner::TestRng::new(__seed);
        let mut __accepted: u32 = 0;
        let mut __attempts: u64 = 0;
        while __accepted < __config.cases {
            __attempts += 1;
            assert!(
                __attempts <= __config.cases as u64 * 100 + 1000,
                "proptest `{}`: too many rejected cases ({} attempts for {} accepted)",
                stringify!($name),
                __attempts,
                __accepted,
            );
            let __case_seed = __rng.next_u64();
            let __vals = {
                let mut __case_rng = $crate::test_runner::TestRng::new(__case_seed);
                ($( $crate::strategy::Strategy::generate(&($strat), &mut __case_rng), )+)
            };
            let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    let ($($pname,)+) = __vals;
                    $body
                    ::core::result::Result::Ok(())
                })();
            match __result {
                ::core::result::Result::Ok(()) => __accepted += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{}` failed (case seed {:#x}): {}",
                        stringify!($name),
                        __case_seed,
                        msg,
                    );
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 0.0f64..10.0,
            n in 250u32..=1000,
            flag in any::<bool>(),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((250..=1000).contains(&n));
            prop_assert!(flag || !flag);
        }

        #[test]
        fn vec_and_select_and_map(
            mut v in prop::collection::vec(prop::sample::select(vec![1u32, 2, 3]), 2..6),
            fixed in prop::collection::vec(any::<u64>(), 4),
            mapped in (0u32..5).prop_map(|x| x * 2),
        ) {
            v.push(1);
            prop_assert!(v.len() >= 3 && v.len() <= 6);
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn oneof_and_assume(choice in prop_oneof![Just(0.0f64), 1.0f64..2.0, Just(f64::NAN)]) {
            prop_assume!(!choice.is_nan());
            prop_assert!(choice == 0.0 || (1.0..2.0).contains(&choice));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let seed = crate::test_runner::TestRng::seed_from_name("x");
        let mut a = crate::test_runner::TestRng::new(seed);
        let mut b = crate::test_runner::TestRng::new(seed);
        let s = 0.0f64..1.0e9;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn unsatisfiable_assume_panics() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assume!(x > 100);
            }
        }
        inner();
    }
}
