//! Offline stand-in for `rayon`.
//!
//! Provides `.par_iter()` / `.par_iter_mut()` / `.into_par_iter()` over
//! slices and `Vec`s with `map` + `collect` and `for_each`, executed on
//! `std::thread::scope` with one chunk per available core. Ordering
//! matches the sequential iterator (results are collected per-chunk and
//! concatenated in order). Small inputs run inline without spawning.
#![allow(clippy::all)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Threshold below which parallel dispatch is pure overhead.
const INLINE_THRESHOLD: usize = 2;

/// 0 = no explicit cap (use available parallelism).
static GLOBAL_THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

fn worker_count(len: usize) -> usize {
    let cores = match GLOBAL_THREAD_CAP.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        cap => cap,
    };
    cores.min(len).max(1)
}

/// Error type returned by [`ThreadPoolBuilder::build_global`]. The
/// stand-in never actually fails; real rayon errors when the global pool
/// was already initialised, and callers that ignore the result keep
/// working either way.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`, supporting the `num_threads` +
/// `build_global` subset. The stand-in has no persistent pool; the
/// configured thread count caps the workers each parallel call spawns.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start configuring the (process-global) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `n` worker threads; 0 restores the default
    /// (available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike real rayon this can be
    /// called repeatedly; the latest setting wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREAD_CAP.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The number of worker threads parallel calls currently use for large
/// inputs (`rayon::current_num_threads` equivalent).
pub fn current_num_threads() -> usize {
    worker_count(usize::MAX)
}

/// `rayon::join` stand-in: runs both closures, potentially in parallel.
///
/// With more than one configured worker, `oper_b` runs on a scoped
/// thread while `oper_a` runs on the caller; with a single worker both
/// run inline (no spawn, no allocation), which is what allocation-
/// counting proofs rely on to exercise chunked code paths serially.
/// Unlike real rayon there is no work-stealing pool — each parallel
/// `join` spawns one OS thread — so recursive users should split down
/// to coarse chunks, not single items.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if worker_count(usize::MAX) == 1 {
        let ra = oper_a();
        let rb = oper_b();
        (ra, rb)
    } else {
        std::thread::scope(|scope| {
            let hb = scope.spawn(oper_b);
            let ra = oper_a();
            let rb = hb.join().expect("rayon stand-in join worker panicked");
            (ra, rb)
        })
    }
}

/// Run `f` on disjoint index chunks of `0..len`, in parallel.
fn chunked<F: Fn(std::ops::Range<usize>) + Sync>(len: usize, f: F) {
    let workers = worker_count(len);
    if len < INLINE_THRESHOLD || workers == 1 {
        f(0..len);
        return;
    }
    let per = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let start = w * per;
            let end = ((w + 1) * per).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move || f(start..end));
        }
    });
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Parallel iterator over `&mut T` items.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// Mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Transform each item; evaluation happens at `collect`.
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every item in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let items = self.items;
        chunked(items.len(), |range| {
            for item in &items[range] {
                f(item);
            }
        });
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Evaluate the map in parallel, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len();
        if n < INLINE_THRESHOLD || worker_count(n) == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let slots = std::sync::Mutex::new(&mut out);
            let items = self.items;
            let f = &self.f;
            let workers = worker_count(n);
            let per = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let start = w * per;
                    let end = ((w + 1) * per).min(n);
                    if start >= end {
                        break;
                    }
                    let slots = &slots;
                    scope.spawn(move || {
                        let chunk: Vec<U> = items[start..end].iter().map(f).collect();
                        let mut guard = slots.lock().expect("rayon stand-in slots poisoned");
                        for (i, v) in chunk.into_iter().enumerate() {
                            guard[start + i] = Some(v);
                        }
                    });
                }
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("every index filled"))
            .collect()
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every item in parallel, through mutable references.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        let len = self.items.len();
        let workers = worker_count(len);
        if len < INLINE_THRESHOLD || workers == 1 {
            for item in self.items.iter_mut() {
                f(item);
            }
            return;
        }
        let per = len.div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            for chunk in self.items.chunks_mut(per) {
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                });
            }
        });
    }
}

/// `.par_iter()` — shared-reference parallel iteration.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by reference.
    type Item: 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

/// `.par_iter_mut()` — mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type yielded by mutable reference.
    type Item: 'a;
    /// Create the parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn for_each_mut_touches_everything() {
        let mut v: Vec<u64> = vec![1; 517];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn thread_cap_is_respected_and_reversible() {
        // Other tests in this binary share the global cap, so restore it.
        super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        assert_eq!(super::current_num_threads(), 1);
        // Capped to one worker, parallel calls still produce full,
        // ordered results (inline path).
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
        super::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn tiny_inputs_run_inline() {
        let v = vec![7u32];
        let out: Vec<u32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }
}
