//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` over the
//! raw `proc_macro` API (the registry — and therefore `syn`/`quote` — is
//! unavailable offline). Supports the item shapes this workspace
//! actually uses:
//!
//! - structs with named fields,
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! - unit structs,
//! - enums with unit and struct variants (externally tagged, like real
//!   serde).
//!
//! `#[serde(...)]` attributes and generic items are not supported and
//! panic at compile time with a clear message.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived for.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip one attribute (`#` + `[...]`) if present at `i`; returns the new
/// position. Panics on `#[serde(...)]`, which this stand-in cannot honor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner = g.stream().to_string();
                if inner.starts_with("serde") {
                    panic!(
                        "the offline serde_derive stand-in does not support #[serde(...)] \
                         attributes (found `#[{inner}]`)"
                    );
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or discriminant expression) to the next
/// top-level comma, tracking `<...>` nesting, which is token-level
/// (angle brackets are not `Group`s).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse `{ field: Type, ... }` contents into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, found {:?}", tokens[i].to_string());
        };
        fields.push(name.to_string());
        i += 1; // name
        i += 1; // ':'
        i = skip_to_comma(&tokens, i);
        i += 1; // ','
    }
    fields
}

/// Count the types in `( Type, ... )` contents.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_comma(&tokens, i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, found {:?}", tokens[i].to_string());
        };
        let name = name.to_string();
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Named(parse_named_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        // Skip an optional `= discriminant` then the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i = skip_to_comma(&tokens, i + 1);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, data });
    }
    variants
}

/// Parse the derive input down to `(type name, shape)`.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name after `{kw}`");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the offline serde_derive stand-in does not support generic types ({name})");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!(
                "unsupported struct body: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {:?}", other.map(|t| t.to_string())),
        },
        other => panic!("derive(Serialize) on unsupported item kind `{other}`"),
    };
    (name, shape)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::with_capacity({});\n\
                 {pushes}::serde::Value::Object(fields)",
                fields.len()
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantData::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_json(__f0))]),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{}}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
