//! Offline stand-in for `rand`.
//!
//! Implements the subset this workspace uses: `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}`, and `Rng::gen_range` over float and integer
//! ranges. The core generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic, fast, and statistically solid for simulation noise.
#![allow(clippy::all)]

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte buffer with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for the provided RNGs).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point; nudge off it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256PlusPlus { s }
    }
}

/// Sampling from a range, implemented per range/element type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        start + unit * (end - start)
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty integer range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw from `[0, 1)` for floats / full width for ints.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Stand-in for rand's `StdRng` (xoshiro256++ here; determinism per
    /// seed is all the workspace relies on, not cross-crate stream
    /// compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(Xoshiro256PlusPlus::from_seed(seed))
        }
    }

    /// Small, fast RNG (same core as [`StdRng`] in this stand-in).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(Xoshiro256PlusPlus::from_seed(seed))
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&x));
            let y = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..4);
            seen[v] = true;
            let w = rng.gen_range(250u32..=1000);
            assert!((250..=1000).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
