//! Micro-benchmarks of the scheduler hot path: the costs a production
//! deployment pays every dispatch tick and every scheduling period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fvs_model::{
    counters::synthesize_delta, CpiModel, Estimator, FreqMhz, FrequencySet, MemoryLatencies,
    PerfLossTable,
};
use fvs_sched::{FvsstAlgorithm, ProcInput};
use fvs_sim::MachineBuilder;
use fvs_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_estimator(c: &mut Criterion) {
    let est = Estimator::new(MemoryLatencies::P630);
    let model = CpiModel::from_components(1.2, 5.0e-9);
    let delta = synthesize_delta(&model, 0.01, 0.004, 0.012, 1.0e7, FreqMhz(1000));
    c.bench_function("estimator_fit", |b| {
        b.iter(|| est.estimate(black_box(&delta), FreqMhz(1000)).unwrap())
    });
}

fn bench_perf_loss_table(c: &mut Criterion) {
    let set = FrequencySet::p630();
    let model = CpiModel::from_components(1.2, 5.0e-9);
    c.bench_function("perf_loss_table_build", |b| {
        b.iter(|| PerfLossTable::build(black_box(&model), &set))
    });
}

fn bench_schedule_scaling(c: &mut Criterion) {
    let alg = FvsstAlgorithm::p630();
    let mut g = c.benchmark_group("schedule_two_pass");
    for n_procs in [4usize, 16, 64, 256, 1024] {
        let procs: Vec<ProcInput> = (0..n_procs)
            .map(|i| ProcInput {
                model: Some(CpiModel::from_components(
                    1.0 + (i % 7) as f64 * 0.1,
                    (i % 11) as f64 * 1.0e-9,
                )),
                idle: i % 13 == 0,
                current: FreqMhz(1000),
            })
            .collect();
        // A budget forcing roughly half the demotions possible.
        let budget = n_procs as f64 * 70.0;
        g.bench_with_input(BenchmarkId::from_parameter(n_procs), &procs, |b, procs| {
            b.iter(|| alg.schedule(black_box(procs), budget))
        });
    }
    g.finish();
}

fn bench_machine_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_step_10ms");
    for cores in [1usize, 4, 16] {
        let mut b = MachineBuilder::p630().cores(cores);
        for i in 0..cores {
            b = b.workload(
                i,
                WorkloadSpec::synthetic((i % 5) as f64 * 25.0, 1.0e15).looping(),
            );
        }
        let mut machine = b.build();
        g.bench_with_input(BenchmarkId::from_parameter(cores), &(), |bch, _| {
            bch.iter(|| machine.step(0.01))
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_estimator,
    bench_perf_loss_table,
    bench_schedule_scaling,
    bench_machine_tick
);
criterion_main!(micro);
