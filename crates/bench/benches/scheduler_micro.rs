//! Micro-benchmarks of the scheduler hot path: the costs a production
//! deployment pays every dispatch tick and every scheduling period.
//!
//! `schedule_two_pass` vs `schedule_reference` measures the tentpole
//! optimisation: the heap-based incremental pass 2 (`O(d log n)`)
//! against the naive full-rescan loop (`O(d·n)`), under a demotion-heavy
//! budget drop where pass 2 dominates. Run
//! `cargo run -p fvs-bench --bin collect_bench` afterwards to gather the
//! medians into `BENCH_scheduler.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fvs_cluster::{ClusterConfig, ClusterSim};
use fvs_model::{
    counters::synthesize_delta, CpiModel, Estimator, FreqMhz, FrequencySet, MemoryLatencies,
    PerfLossTable,
};
use fvs_power::BudgetSchedule;
use fvs_sched::{FvsstAlgorithm, ProcInput, ScheduleCache, ScheduleScratch};
use fvs_sim::MachineBuilder;
use fvs_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_estimator(c: &mut Criterion) {
    let est = Estimator::new(MemoryLatencies::P630);
    let model = CpiModel::from_components(1.2, 5.0e-9);
    let delta = synthesize_delta(&model, 0.01, 0.004, 0.012, 1.0e7, FreqMhz(1000));
    c.bench_function("estimator_fit", |b| {
        b.iter(|| est.estimate(black_box(&delta), FreqMhz(1000)).unwrap())
    });
}

fn bench_perf_loss_table(c: &mut Criterion) {
    let set = FrequencySet::p630();
    let model = CpiModel::from_components(1.2, 5.0e-9);
    c.bench_function("perf_loss_table_build", |b| {
        b.iter(|| PerfLossTable::build(black_box(&model), &set))
    });
}

/// The workload mix used by the scheduling-scale benchmarks: varied
/// models, a sprinkle of idle and unmodelled processors.
fn proc_mix(n_procs: usize) -> Vec<ProcInput> {
    (0..n_procs)
        .map(|i| ProcInput {
            model: (i % 17 != 0).then(|| {
                CpiModel::from_components(1.0 + (i % 7) as f64 * 0.1, (i % 11) as f64 * 1.0e-9)
            }),
            idle: i % 13 == 0,
            current: FreqMhz(1000),
        })
        .collect()
}

/// A budget-drop scenario where pass 2 dominates: just above the
/// 9 W/processor floor, so nearly every processor walks most of the way
/// down the frequency table (~14 demotion steps each).
fn demotion_heavy_budget(n_procs: usize) -> f64 {
    n_procs as f64 * 10.0
}

fn bench_schedule_scaling(c: &mut Criterion) {
    let alg = FvsstAlgorithm::p630();
    let mut g = c.benchmark_group("schedule_two_pass");
    for n_procs in [4usize, 16, 64, 256, 1024] {
        let procs = proc_mix(n_procs);
        let budget = demotion_heavy_budget(n_procs);
        let mut scratch = ScheduleScratch::new();
        g.bench_with_input(BenchmarkId::from_parameter(n_procs), &procs, |b, procs| {
            b.iter(|| {
                let d = alg.schedule_with_scratch(&mut scratch, black_box(procs), budget);
                black_box(d.demotions)
            })
        });
    }
    g.finish();
}

fn bench_schedule_cached(c: &mut Criterion) {
    // Steady state of the fingerprint cache: the same processor set and
    // budget every round, so after warm-up each call is a full hit that
    // returns the previous decision without rebuilding anything. Uses
    // the same mix and budget as `schedule_two_pass`, so the ratio of
    // the two medians is the cache-hit speedup collect_bench reports.
    let alg = FvsstAlgorithm::p630();
    let mut g = c.benchmark_group("schedule_cached_steady");
    for n_procs in [4usize, 16, 64, 256, 1024] {
        let procs = proc_mix(n_procs);
        let budget = demotion_heavy_budget(n_procs);
        let mut cache = ScheduleCache::new();
        for _ in 0..3 {
            alg.schedule_cached(&mut cache, &procs, budget);
        }
        g.bench_with_input(BenchmarkId::from_parameter(n_procs), &procs, |b, procs| {
            b.iter(|| {
                let d = alg.schedule_cached(&mut cache, black_box(procs), budget);
                black_box(d.demotions)
            })
        });
    }
    g.finish();
}

fn bench_schedule_reference(c: &mut Criterion) {
    let alg = FvsstAlgorithm::p630();
    let mut g = c.benchmark_group("schedule_reference");
    for n_procs in [4usize, 16, 64, 256, 1024] {
        let procs = proc_mix(n_procs);
        let budget = demotion_heavy_budget(n_procs);
        g.bench_with_input(BenchmarkId::from_parameter(n_procs), &procs, |b, procs| {
            b.iter(|| alg.schedule_reference(black_box(procs), budget))
        });
    }
    g.finish();
}

fn bench_machine_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_step_10ms");
    for cores in [1usize, 4, 16] {
        let mut b = MachineBuilder::p630().cores(cores);
        for i in 0..cores {
            b = b.workload(
                i,
                WorkloadSpec::synthetic((i % 5) as f64 * 25.0, 1.0e15).looping(),
            );
        }
        let mut machine = b.build();
        g.bench_with_input(BenchmarkId::from_parameter(cores), &(), |bch, _| {
            bch.iter(|| machine.step(0.01))
        });
    }
    g.finish();
}

fn bench_cluster_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_tick");
    g.sample_size(10);
    for nodes in [8usize, 32, 128, 512, 1024] {
        // Budget forces real scheduling work every round (~70 W/core of
        // a 140 W/core unconstrained draw).
        let config =
            ClusterConfig::rack().with_budget(BudgetSchedule::constant(nodes as f64 * 4.0 * 70.0));
        let mut sim = ClusterSim::three_tier(nodes, 42, config);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &(), |b, _| {
            b.iter(|| sim.step_tick())
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_estimator,
    bench_perf_loss_table,
    bench_schedule_scaling,
    bench_schedule_cached,
    bench_schedule_reference,
    bench_machine_tick,
    bench_cluster_tick
);
criterion_main!(micro);
