//! One bench per paper *figure*: running the group regenerates the
//! figure's series (printed once per run).

use criterion::{criterion_group, criterion_main, Criterion};
use fvs_bench::bench_settings;
use fvs_harness::experiments::{example5, fig1, fig4, fig5, fig6, fig7, fig8, fig9};

fn bench_fig1(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", fig1::run(&settings).render());
    let mut g = c.benchmark_group("fig1_saturation");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| fig1::run(&settings)));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", fig4::run(&settings).render());
    let mut g = c.benchmark_group("fig4_overhead");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| fig4::run(&settings)));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let settings = bench_settings();
    let r = fig5::run(&settings);
    println!(
        "fig5: cpu-phase mean {:.0} MHz, mem-phase mean {:.0} MHz\n",
        r.cpu_phase_mean_mhz, r.mem_phase_mean_mhz
    );
    let mut g = c.benchmark_group("fig5_phase_tracking");
    g.sample_size(10);
    g.bench_function("trace", |b| b.iter(|| fig5::run(&settings)));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", fig6::run(&settings).render());
    let mut g = c.benchmark_group("fig6_power_limits");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| fig6::run(&settings)));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", fig7::run(&settings).render());
    let mut g = c.benchmark_group("fig7_constrained_residency");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| fig7::run(&settings)));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", fig8::run(&settings).render());
    let mut g = c.benchmark_group("fig8_app_residency");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| fig8::run(&settings)));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let settings = bench_settings();
    let r = fig9::run(&settings);
    println!(
        "fig9: desired exceeded the 750 MHz cap in {:.0}% of samples\n",
        r.desired_above_cap * 100.0
    );
    let mut g = c.benchmark_group("fig9_gap_trace");
    g.sample_size(10);
    g.bench_function("trace", |b| b.iter(|| fig9::run(&settings)));
    g.finish();
}

fn bench_example5(c: &mut Criterion) {
    println!("{}", example5::run().render());
    c.bench_function("example5_worked_example", |b| b.iter(example5::run));
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_example5
);
criterion_main!(figures);
