//! One bench per paper *table*: running the group regenerates the
//! table's data (the rendered output is printed once per run).

use criterion::{criterion_group, criterion_main, Criterion};
use fvs_bench::bench_settings;
use fvs_harness::experiments::{table1, table2, table3};

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once, then measure the computation.
    println!("{}", table1::run().render());
    c.bench_function("table1_freq_power", |b| b.iter(table1::run));
}

fn bench_table2(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", table2::run(&settings).render());
    let mut g = c.benchmark_group("table2_predictor_error");
    g.sample_size(10);
    g.bench_function("all_intensities", |b| b.iter(|| table2::run(&settings)));
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", table3::run(&settings).render());
    let mut g = c.benchmark_group("table3_apps_under_budgets");
    g.sample_size(10);
    g.bench_function("all_apps", |b| b.iter(|| table3::run(&settings)));
    g.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3);
criterion_main!(tables);
