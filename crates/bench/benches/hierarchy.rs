//! Hierarchy benchmarks: full-cluster dispatch ticks at 10k–100k nodes
//! coordinated through the budget-delegation tree, and the steady-state
//! incremental win of per-subtree fingerprint skipping over the flat
//! coordinator.
//!
//! `cluster_tick/{10000,100000}` extends the flat `cluster_tick` table
//! (8–1024 nodes, `scheduler_micro.rs`) to datacenter scale — at these
//! sizes the config switches to the delegation tree, which is the whole
//! point of the tier.
//!
//! `hier_steady_state/{flat,hier}/{10000,100000}` is coordinator-only:
//! pre-built summaries, warm caches, and a handful of nodes whose raw
//! counters jitter every round without changing any decision — the
//! telemetry-noise steady state a big cluster actually sits in. The
//! flat coordinator pays its O(all processors) fingerprint sweep every
//! round; the tree re-runs only the drifters' racks and skips every
//! clean subtree, which is the ≥10× `collect_bench` reports as
//! `hier_vs_flat_speedup`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fvs_cluster::{
    ClusterConfig, ClusterSim, DelegationTree, GlobalCoordinator, HierTopology, NodeSummary,
};
use fvs_model::{CpiModel, FreqMhz};
use fvs_power::BudgetSchedule;
use fvs_sched::FvsstAlgorithm;
use std::hint::black_box;

const PROCS_PER_NODE: usize = 4;
/// Nodes whose raw counters jitter each round, spread one per rack.
const DRIFTERS: usize = 4;

/// A node summary drawn from five model classes (0–20 ns of memory time
/// per instruction) so demotion ladders coalesce the way a real mix
/// does. `jitter` perturbs one processor's memory time by 1 ps — far
/// past the model-tolerance quantum, so the per-processor cache must
/// refit it, but four orders of magnitude below anything that moves a
/// frequency decision.
fn summary(node: usize, at: f64, jitter: bool) -> NodeSummary {
    let mems: Vec<f64> = (0..PROCS_PER_NODE)
        .map(|p| {
            let base = ((node * 7 + p * 3) % 5) as f64 * 5.0e-9;
            if jitter && p == 0 {
                base + 1.0e-12
            } else {
                base
            }
        })
        .collect();
    NodeSummary {
        node,
        sent_at_s: at,
        models: mems
            .iter()
            .map(|m| Some(CpiModel::from_components(1.0, *m)))
            .collect(),
        idle: vec![false; PROCS_PER_NODE],
        current: vec![FreqMhz(1000); PROCS_PER_NODE],
        power_w: 140.0 * PROCS_PER_NODE as f64,
    }
}

fn bench_cluster_tick_hier(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_tick");
    g.sample_size(10);
    for &nodes in &[10_000usize, 100_000] {
        // Budget forces real scheduling work every round (~70 W/core of
        // a 140 W/core unconstrained draw), as in the flat rows.
        let config = ClusterConfig::rack()
            .with_hierarchy(HierTopology::default())
            .with_budget(BudgetSchedule::constant(nodes as f64 * 4.0 * 70.0));
        let mut sim = ClusterSim::three_tier(nodes, 42, config);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &(), |b, _| {
            b.iter(|| sim.step_tick())
        });
    }
    g.finish();
}

fn bench_hier_steady_state(c: &mut Criterion) {
    let alg = FvsstAlgorithm::p630();
    let mut g = c.benchmark_group("hier_steady_state");
    g.sample_size(10);
    for &nodes in &[10_000usize, 100_000] {
        let budget = nodes as f64 * PROCS_PER_NODE as f64 * 70.0;
        let stride = nodes / DRIFTERS;
        // Flat baseline: every round sweeps all processors.
        {
            let mut flat =
                GlobalCoordinator::new(alg.clone(), nodes).with_heartbeat_timeout(f64::INFINITY);
            for n in 0..nodes {
                flat.ingest(summary(n, 1.0, false));
            }
            flat.schedule(budget, 1.0);
            flat.schedule(budget, 1.0);
            let mut i = 0u64;
            g.bench_with_input(BenchmarkId::new("flat", nodes), &(), |b, _| {
                b.iter(|| {
                    i += 1;
                    for d in 0..DRIFTERS {
                        flat.ingest(summary(d * stride, 1.0, i.is_multiple_of(2)));
                    }
                    black_box(flat.schedule(budget, 1.0).len())
                })
            });
        }
        // Delegation tree: only the drifters' racks re-run.
        {
            let mut tree = DelegationTree::new(alg.clone(), nodes, HierTopology::default())
                .with_heartbeat_timeout(f64::INFINITY);
            for n in 0..nodes {
                tree.ingest(summary(n, 1.0, false));
            }
            tree.schedule(budget, 1.0);
            tree.schedule(budget, 1.0);
            let mut i = 0u64;
            g.bench_with_input(BenchmarkId::new("hier", nodes), &(), |b, _| {
                b.iter(|| {
                    i += 1;
                    for d in 0..DRIFTERS {
                        tree.ingest(summary(d * stride, 1.0, i.is_multiple_of(2)));
                    }
                    black_box(tree.schedule(budget, 1.0).len())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(hier, bench_cluster_tick_hier, bench_hier_steady_state);
criterion_main!(hier);
