//! Core-tick throughput of the simulator substrate: the batched SoA
//! pass (`Machine::step`) against the scalar per-core reference stepper
//! (`MachineBuilder::reference_stepping`), at machine sizes from one
//! p630 to a 1024-core rack aggregate.
//!
//! This is the tentpole measurement for `sim_core_ticks_per_sec` in
//! `BENCH_scheduler.json`: the batched pass must clear >=10x the
//! reference throughput at 1024 cores. Run
//! `cargo run -p fvs-bench --bin collect_bench` afterwards to harvest
//! the medians.
//!
//! Both sides run the identical workload mix (looping synthetic bodies
//! across five intensities, huge budgets so nothing finishes) and the
//! identical semantics — `tests/batch_parity.rs` proves the two paths
//! agree (bit-identical under every-tick sampling, <=1e-12 relative for
//! deferred multi-tick windows), so this is a pure cost comparison.
//!
//! Three batched flavours are reported: the bare tick (uniform blocks
//! advance by a counter bump and commit their windows in closed form),
//! and the every-tick-sampled loop (`step` + `sample_all_into`, the
//! scheduler's actual usage, which forces k = 1 windows and a full
//! materialisation pass per tick).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fvs_sim::{Machine, MachineBuilder, NoiseModel};
use fvs_workloads::WorkloadSpec;

const CORE_COUNTS: [usize; 4] = [4, 64, 256, 1024];

fn build_machine(cores: usize, reference: bool) -> Machine {
    let mut b = MachineBuilder::p630().cores(cores).noise(NoiseModel::NONE);
    for i in 0..cores {
        b = b.workload(
            i,
            WorkloadSpec::synthetic((i % 5) as f64 * 25.0, 1.0e15).looping(),
        );
    }
    if reference {
        b = b.reference_stepping();
    }
    b.build()
}

fn bench_sim_tick_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tick_batched");
    for cores in CORE_COUNTS {
        let mut machine = build_machine(cores, false);
        g.bench_with_input(BenchmarkId::from_parameter(cores), &(), |b, _| {
            b.iter(|| machine.step(0.01))
        });
    }
    g.finish();
}

fn bench_sim_tick_batched_sampled(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tick_batched_sampled");
    for cores in CORE_COUNTS {
        let mut machine = build_machine(cores, false);
        let mut out = Vec::with_capacity(cores);
        g.bench_with_input(BenchmarkId::from_parameter(cores), &(), |b, _| {
            b.iter(|| {
                machine.step(0.01);
                machine.sample_all_into(&mut out);
            })
        });
    }
    g.finish();
}

fn bench_sim_tick_scalar(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tick_scalar");
    // The reference stepper at 1024 cores is the slow side by design;
    // keep the sample count modest so the run stays short.
    g.sample_size(20);
    for cores in CORE_COUNTS {
        let mut machine = build_machine(cores, true);
        g.bench_with_input(BenchmarkId::from_parameter(cores), &(), |b, _| {
            b.iter(|| machine.step(0.01))
        });
    }
    g.finish();
}

criterion_group!(
    sim_tick,
    bench_sim_tick_batched,
    bench_sim_tick_batched_sampled,
    bench_sim_tick_scalar
);
criterion_main!(sim_tick);
