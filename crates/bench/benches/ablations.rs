//! The ablation suite as a bench target, plus a cluster-scale run.

use criterion::{criterion_group, criterion_main, Criterion};
use fvs_bench::bench_settings;
use fvs_cluster::{ClusterConfig, ClusterSim};
use fvs_harness::experiments::{ablations, migration, predictors};

fn bench_ablations(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", ablations::run(&settings).render());
    let mut g = c.benchmark_group("ablation_suite");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| ablations::run(&settings)));
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", predictors::run(&settings).render());
    let mut g = c.benchmark_group("predictor_variants");
    g.sample_size(10);
    g.bench_function("miscalibration_sweep", |b| {
        b.iter(|| predictors::run(&settings))
    });
    g.finish();
}

fn bench_migration(c: &mut Criterion) {
    let settings = bench_settings();
    println!("{}", migration::run(&settings).render());
    let mut g = c.benchmark_group("frequency_vs_work_scheduling");
    g.sample_size(10);
    g.bench_function("comparison", |b| b.iter(|| migration::run(&settings)));
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_three_tier");
    g.sample_size(10);
    for nodes in [4usize, 16] {
        g.bench_function(format!("{nodes}_nodes_1s"), |b| {
            b.iter(|| {
                let mut sim = ClusterSim::three_tier(nodes, 7, ClusterConfig::rack());
                sim.run_for(1.0)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablation_benches,
    bench_ablations,
    bench_predictors,
    bench_migration,
    bench_cluster
);
criterion_main!(ablation_benches);
