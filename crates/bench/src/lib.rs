//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches wrap the `fvs-harness` experiments (one bench group per
//! paper table/figure — run them to regenerate every result) plus
//! micro-benchmarks of the scheduler hot path. All experiment benches
//! run in the harness's fast mode so `cargo bench` completes in minutes;
//! use `fvsst-exp <id>` for full-fidelity numbers.

use fvs_harness::runs::RunSettings;

/// The settings every experiment bench uses.
pub fn bench_settings() -> RunSettings {
    RunSettings::fast()
}
