//! Collect criterion medians into `BENCH_scheduler.json`.
//!
//! Run after the scheduler micro-benchmarks:
//!
//! ```text
//! cargo bench -p fvs-bench --bench scheduler_micro
//! cargo bench -p fvs-bench --bench sim_tick
//! cargo run -p fvs-bench --bin collect_bench
//! ```
//!
//! Reads `target/criterion/<group>/<id>/estimates.json` for the
//! `schedule_two_pass`, `schedule_cached_steady` and
//! `schedule_reference` groups plus `cluster_tick` and the
//! `sim_tick_batched`/`sim_tick_scalar` pair, times the harness
//! fast suite (every experiment, run in parallel), and writes a flat
//! summary (median ns/iter, the naive/heap speedup, the cache-hit
//! speedup per size, and core-tick throughput of the batched SoA
//! simulator pass vs the scalar reference) to `BENCH_scheduler.json`
//! in the workspace root.
//!
//! `collect_bench --check` instead validates an existing
//! `BENCH_scheduler.json`: it must parse as JSON and carry the expected
//! shape. Exit status is non-zero on failure, so CI can gate on it
//! without having run the benchmarks.

use fvs_harness::experiments::{run_by_name, ALL_EXPERIMENTS};
use fvs_harness::runs::RunSettings;
use fvs_telemetry::RoundTimer;
use rayon::prelude::*;
use std::path::{Path, PathBuf};

const SIZES: &[usize] = &[4, 16, 64, 256, 1024];
const CLUSTER_SIZES: &[usize] = &[8, 32, 128, 512, 1024, 10_000, 100_000];
const SIM_CORES: &[usize] = &[4, 64, 256, 1024];
const HIER_SIZES: &[usize] = &[10_000, 100_000];

fn workspace_root() -> PathBuf {
    // The binary runs from anywhere inside the workspace; walk upward to
    // the directory holding the workspace Cargo.lock.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            eprintln!("workspace root with Cargo.lock not found — run from inside the workspace");
            std::process::exit(1);
        }
    }
}

fn median_ns(criterion_dir: &Path, group: &str, id: &str) -> Option<f64> {
    let path = criterion_dir.join(group).join(id).join("estimates.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v = serde_json::from_str(&text).ok()?;
    v.get("median")?.get("point_estimate")?.as_f64()
}

/// One row of the per-size table.
struct SizeEntry {
    n: usize,
    heap: f64,
    naive: Option<f64>,
    speedup: Option<f64>,
    cached: Option<f64>,
    cache_speedup: Option<f64>,
}

/// One row of the simulator core-tick throughput table.
struct SimEntry {
    cores: usize,
    batched: f64,
    /// Core-ticks per wall second through the batched pass.
    throughput: f64,
    /// The every-tick-sampled loop (`step` + `sample_all_into`) — the
    /// scheduler's actual per-round cost, with no window deferral.
    sampled: Option<f64>,
    scalar: Option<f64>,
    speedup: Option<f64>,
}

/// One row of the steady-state hierarchy-vs-flat table.
struct HierEntry {
    nodes: usize,
    flat: f64,
    hier: f64,
    speedup: f64,
}

/// Validate an existing `BENCH_scheduler.json`: parseable, and shaped
/// the way the README/DESIGN tables and downstream tooling expect.
fn check(root: &Path) -> i32 {
    let path = root.join("BENCH_scheduler.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return 1;
        }
    };
    let v: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{} is not valid JSON: {e}", path.display());
            return 1;
        }
    };
    let mut errors = Vec::new();
    if v.get("benchmark").and_then(|b| b.as_str()).is_none() {
        errors.push("missing string field 'benchmark'".to_string());
    }
    match v.get("sizes").and_then(|s| s.as_array()) {
        None => errors.push("missing array field 'sizes'".to_string()),
        Some(sizes) if sizes.is_empty() => errors.push("'sizes' is empty".to_string()),
        Some(sizes) => {
            for (i, row) in sizes.iter().enumerate() {
                if row.get("n_procs").and_then(|n| n.as_u64()).is_none() {
                    errors.push(format!("sizes[{i}] missing integer 'n_procs'"));
                }
                if row.get("heap_median_ns").and_then(|n| n.as_f64()).is_none() {
                    errors.push(format!("sizes[{i}] missing number 'heap_median_ns'"));
                }
            }
        }
    }
    if v.get("cluster_tick").and_then(|s| s.as_array()).is_none() {
        errors.push("missing array field 'cluster_tick'".to_string());
    }
    match v.get("sim_core_ticks_per_sec").and_then(|s| s.as_array()) {
        None => errors.push("missing array field 'sim_core_ticks_per_sec'".to_string()),
        Some(rows) if rows.is_empty() => {
            errors.push("'sim_core_ticks_per_sec' is empty".to_string())
        }
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("cores").and_then(|n| n.as_u64()).is_none() {
                    errors.push(format!(
                        "sim_core_ticks_per_sec[{i}] missing integer 'cores'"
                    ));
                }
                for field in ["batched_median_ns", "core_ticks_per_sec"] {
                    if row.get(field).and_then(|n| n.as_f64()).is_none() {
                        errors.push(format!(
                            "sim_core_ticks_per_sec[{i}] missing number '{field}'"
                        ));
                    }
                }
            }
        }
    }
    match v.get("hier_steady_state").and_then(|s| s.as_array()) {
        None => errors.push("missing array field 'hier_steady_state'".to_string()),
        Some(rows) if rows.is_empty() => errors.push("'hier_steady_state' is empty".to_string()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("nodes").and_then(|n| n.as_u64()).is_none() {
                    errors.push(format!("hier_steady_state[{i}] missing integer 'nodes'"));
                }
                for field in ["flat_median_ns", "hier_median_ns", "hier_vs_flat_speedup"] {
                    if row.get(field).and_then(|n| n.as_f64()).is_none() {
                        errors.push(format!("hier_steady_state[{i}] missing number '{field}'"));
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        println!("{} OK", path.display());
        0
    } else {
        for e in &errors {
            eprintln!("{}: {e}", path.display());
        }
        1
    }
}

/// Run every experiment once with fast settings, in parallel, and
/// return the wall time. This is the number the README quotes for "how
/// long does regenerating everything take".
fn time_fast_suite() -> (usize, f64) {
    let settings = RunSettings::fast();
    let timer = RoundTimer::start();
    let reports: Vec<Option<String>> = ALL_EXPERIMENTS
        .par_iter()
        .map(|name| run_by_name(name, &settings))
        .collect();
    let wall_s = timer.elapsed_s();
    let ran = reports
        .iter()
        .flatten()
        .filter(|r| !r.trim().is_empty())
        .count();
    if ran != ALL_EXPERIMENTS.len() {
        eprintln!(
            "warning: fast suite produced {ran}/{} non-empty reports",
            ALL_EXPERIMENTS.len()
        );
    }
    (ran, wall_s)
}

fn main() {
    let root = workspace_root();
    if std::env::args().skip(1).any(|a| a == "--check") {
        std::process::exit(check(&root));
    }
    let criterion_dir = root.join("target").join("criterion");
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for &n in SIZES {
        let id = n.to_string();
        let heap = median_ns(&criterion_dir, "schedule_two_pass", &id);
        let naive = median_ns(&criterion_dir, "schedule_reference", &id);
        let cached = median_ns(&criterion_dir, "schedule_cached_steady", &id);
        match heap {
            Some(h) => entries.push(SizeEntry {
                n,
                heap: h,
                naive,
                speedup: naive.map(|r| r / h),
                cached,
                cache_speedup: cached.map(|cc| h / cc),
            }),
            None => missing.push(format!("schedule_two_pass/{n}")),
        }
    }
    let mut cluster = Vec::new();
    for &n in CLUSTER_SIZES {
        if let Some(ns) = median_ns(&criterion_dir, "cluster_tick", &n.to_string()) {
            cluster.push((n, ns));
        }
    }
    let mut sim = Vec::new();
    for &cores in SIM_CORES {
        let id = cores.to_string();
        let batched = median_ns(&criterion_dir, "sim_tick_batched", &id);
        let sampled = median_ns(&criterion_dir, "sim_tick_batched_sampled", &id);
        let scalar = median_ns(&criterion_dir, "sim_tick_scalar", &id);
        match batched {
            Some(b) => sim.push(SimEntry {
                cores,
                batched: b,
                throughput: cores as f64 / (b * 1e-9),
                sampled,
                scalar,
                speedup: scalar.map(|s| s / b),
            }),
            None => missing.push(format!("sim_tick_batched/{cores}")),
        }
    }
    let mut hier = Vec::new();
    for &nodes in HIER_SIZES {
        let id = nodes.to_string();
        let flat = median_ns(&criterion_dir, "hier_steady_state", &format!("flat/{id}"));
        let h = median_ns(&criterion_dir, "hier_steady_state", &format!("hier/{id}"));
        match (flat, h) {
            (Some(flat), Some(h)) => hier.push(HierEntry {
                nodes,
                flat,
                hier: h,
                speedup: flat / h,
            }),
            _ => missing.push(format!("hier_steady_state/{nodes}")),
        }
    }
    if entries.is_empty() {
        eprintln!(
            "no criterion estimates found under {} — run \
             `cargo bench -p fvs-bench --bench scheduler_micro` first",
            criterion_dir.display()
        );
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("warning: missing benchmark results: {missing:?}");
    }

    println!(
        "timing harness fast suite ({} experiments, {} workers)...",
        ALL_EXPERIMENTS.len(),
        rayon::current_num_threads()
    );
    let (suite_ran, suite_wall_s) = time_fast_suite();

    // Hand-assemble the JSON so the report shape is stable regardless of
    // serializer behaviour for optional fields.
    let mut out = String::from("{\n  \"benchmark\": \"schedule_two_pass\",\n");
    out.push_str("  \"units\": \"ns/iter (median)\",\n");
    out.push_str("  \"scenario\": \"demotion-heavy budget drop (10 W/processor)\",\n");
    out.push_str("  \"sizes\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n_procs\": {}, \"heap_median_ns\": {:.1}",
            e.n, e.heap
        ));
        if let Some(r) = e.naive {
            out.push_str(&format!(", \"naive_median_ns\": {r:.1}"));
        }
        if let Some(s) = e.speedup {
            out.push_str(&format!(", \"speedup\": {s:.2}"));
        }
        if let Some(cc) = e.cached {
            out.push_str(&format!(", \"cached_median_ns\": {cc:.1}"));
        }
        if let Some(s) = e.cache_speedup {
            out.push_str(&format!(", \"cache_speedup\": {s:.2}"));
        }
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"cluster_tick\": [\n");
    for (i, (n, ns)) in cluster.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {n}, \"median_ns\": {ns:.1}}}{}\n",
            if i + 1 < cluster.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"sim_core_ticks_per_sec\": [\n");
    for (i, e) in sim.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cores\": {}, \"batched_median_ns\": {:.1}, \"core_ticks_per_sec\": {:.3e}",
            e.cores, e.batched, e.throughput
        ));
        if let Some(s) = e.sampled {
            out.push_str(&format!(", \"sampled_median_ns\": {s:.1}"));
        }
        if let Some(s) = e.scalar {
            out.push_str(&format!(", \"scalar_median_ns\": {s:.1}"));
        }
        if let Some(s) = e.speedup {
            out.push_str(&format!(", \"speedup\": {s:.2}"));
        }
        out.push('}');
        if i + 1 < sim.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"hier_steady_state\": [\n");
    for (i, e) in hier.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"flat_median_ns\": {:.1}, \"hier_median_ns\": {:.1}, \
             \"hier_vs_flat_speedup\": {:.2}}}{}\n",
            e.nodes,
            e.flat,
            e.hier,
            e.speedup,
            if i + 1 < hier.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"harness_fast_suite\": {\n");
    out.push_str(&format!("    \"experiments\": {suite_ran},\n"));
    out.push_str(&format!(
        "    \"jobs\": {},\n",
        rayon::current_num_threads()
    ));
    out.push_str(&format!("    \"wall_s\": {suite_wall_s:.2}\n"));
    out.push_str("  }\n}\n");

    let out_path = root.join("BENCH_scheduler.json");
    std::fs::write(&out_path, &out).expect("write BENCH_scheduler.json");
    println!("wrote {}", out_path.display());
    for e in &entries {
        let mut line = format!("n={:<5} heap {:>12.1} ns", e.n, e.heap);
        if let (Some(r), Some(s)) = (e.naive, e.speedup) {
            line.push_str(&format!("  naive {r:>14.1} ns  speedup {s:.2}x"));
        }
        if let (Some(cc), Some(s)) = (e.cached, e.cache_speedup) {
            line.push_str(&format!("  cached {cc:>10.1} ns  cache-hit {s:.2}x"));
        }
        println!("{line}");
    }
    for e in &sim {
        let mut line = format!(
            "cores={:<5} batched {:>12.1} ns  {:>10.3e} core-ticks/s",
            e.cores, e.batched, e.throughput
        );
        if let Some(s) = e.sampled {
            line.push_str(&format!("  sampled {s:>10.1} ns"));
        }
        if let (Some(s), Some(x)) = (e.scalar, e.speedup) {
            line.push_str(&format!("  scalar {s:>14.1} ns  speedup {x:.2}x"));
        }
        println!("{line}");
    }
    for e in &hier {
        println!(
            "hier nodes={:<7} flat {:>14.1} ns  hier {:>12.1} ns  speedup {:.2}x",
            e.nodes, e.flat, e.hier, e.speedup
        );
    }
    println!("harness fast suite: {suite_ran} experiments in {suite_wall_s:.2}s wall");
    // The steady-state cache target: a round with an unchanged model
    // set must be at least 5x cheaper than rebuilding at n=256.
    if let Some(e) = entries.iter().find(|e| e.n == 256) {
        if let Some(s) = e.cache_speedup {
            if s < 5.0 {
                eprintln!("warning: cache-hit speedup at n=256 is {s:.2}x (< 5x target)");
            }
        }
    }
    // The SoA tentpole target: the batched pass must clear 10x the
    // scalar reference at the 1024-core rack aggregate.
    if let Some(e) = sim.iter().find(|e| e.cores == 1024) {
        if let Some(s) = e.speedup {
            if s < 10.0 {
                eprintln!("warning: batched speedup at 1024 cores is {s:.2}x (< 10x target)");
            }
        }
    }
    // The delegation-tree target: a steady-state round with a few
    // drifting nodes must be at least 10x cheaper through the tree
    // than through the flat coordinator at 10k nodes.
    if let Some(e) = hier.iter().find(|e| e.nodes == 10_000) {
        if e.speedup < 10.0 {
            eprintln!(
                "warning: hier steady-state speedup at 10k nodes is {:.2}x (< 10x target)",
                e.speedup
            );
        }
    }
}
