//! Collect criterion medians into `BENCH_scheduler.json`.
//!
//! Run after the scheduler micro-benchmarks:
//!
//! ```text
//! cargo bench -p fvs-bench --bench scheduler_micro
//! cargo run -p fvs-bench --bin collect_bench
//! ```
//!
//! Reads `target/criterion/<group>/<id>/estimates.json` for the
//! `schedule_two_pass` and `schedule_reference` groups plus
//! `cluster_tick`, and writes a flat summary (median ns/iter and the
//! naive/heap speedup per size) to `BENCH_scheduler.json` in the
//! workspace root.

use std::path::{Path, PathBuf};

const SIZES: &[usize] = &[4, 16, 64, 256, 1024];
const CLUSTER_SIZES: &[usize] = &[8, 32, 128];

fn workspace_root() -> PathBuf {
    // The binary runs from anywhere inside the workspace; walk upward to
    // the directory holding the workspace Cargo.lock.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            eprintln!("workspace root with Cargo.lock not found — run from inside the workspace");
            std::process::exit(1);
        }
    }
}

fn median_ns(criterion_dir: &Path, group: &str, id: &str) -> Option<f64> {
    let path = criterion_dir.join(group).join(id).join("estimates.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v = serde_json::from_str(&text).ok()?;
    v.get("median")?.get("point_estimate")?.as_f64()
}

fn main() {
    let root = workspace_root();
    let criterion_dir = root.join("target").join("criterion");
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for &n in SIZES {
        let id = n.to_string();
        let heap = median_ns(&criterion_dir, "schedule_two_pass", &id);
        let naive = median_ns(&criterion_dir, "schedule_reference", &id);
        match (heap, naive) {
            (Some(h), Some(r)) => entries.push((n, h, Some(r), Some(r / h))),
            (Some(h), None) => entries.push((n, h, None, None)),
            _ => missing.push(format!("schedule_two_pass/{n}")),
        }
    }
    let mut cluster = Vec::new();
    for &n in CLUSTER_SIZES {
        if let Some(ns) = median_ns(&criterion_dir, "cluster_tick", &n.to_string()) {
            cluster.push((n, ns));
        }
    }
    if entries.is_empty() {
        eprintln!(
            "no criterion estimates found under {} — run \
             `cargo bench -p fvs-bench --bench scheduler_micro` first",
            criterion_dir.display()
        );
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("warning: missing benchmark results: {missing:?}");
    }

    // Hand-assemble the JSON so the report shape is stable regardless of
    // serializer behaviour for optional fields.
    let mut out = String::from("{\n  \"benchmark\": \"schedule_two_pass\",\n");
    out.push_str("  \"units\": \"ns/iter (median)\",\n");
    out.push_str("  \"scenario\": \"demotion-heavy budget drop (10 W/processor)\",\n");
    out.push_str("  \"sizes\": [\n");
    for (i, (n, heap, naive, speedup)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n_procs\": {n}, \"heap_median_ns\": {heap:.1}"
        ));
        if let Some(r) = naive {
            out.push_str(&format!(", \"naive_median_ns\": {r:.1}"));
        }
        if let Some(s) = speedup {
            out.push_str(&format!(", \"speedup\": {s:.2}"));
        }
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"cluster_tick\": [\n");
    for (i, (n, ns)) in cluster.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {n}, \"median_ns\": {ns:.1}}}{}\n",
            if i + 1 < cluster.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let out_path = root.join("BENCH_scheduler.json");
    std::fs::write(&out_path, &out).expect("write BENCH_scheduler.json");
    println!("wrote {}", out_path.display());
    for (n, heap, naive, speedup) in &entries {
        match (naive, speedup) {
            (Some(r), Some(s)) => {
                println!("n={n:<5} heap {heap:>12.1} ns  naive {r:>14.1} ns  speedup {s:.2}x")
            }
            _ => println!("n={n:<5} heap {heap:>12.1} ns"),
        }
    }
}
