//! Baseline power-management policies the paper compares against (or
//! mentions as the state of the art in its introduction and related
//! work):
//!
//! - [`NoDvfs`] — the non-fvsst reference system: every core pinned at
//!   `f_max` regardless of budget. Table 3's energy numbers are
//!   normalised against this.
//! - [`UniformScaling`] — "slowing all nodes in a system uniformly": the
//!   highest single frequency whose aggregate power fits the budget,
//!   applied to every core. The introduction's strawman.
//! - [`NodePowerDown`] — "powering down some nodes": cores are switched
//!   off (drawing nothing, computing nothing) until the remainder fit
//!   the budget at full speed.
//! - [`UtilizationDriven`] — a LongRun / Demand-Based-Switching stand-in
//!   (related work §3.1): frequency follows *utilization* (the idle
//!   signal), one step at a time, with no knowledge of memory behaviour;
//!   budget enforced by a uniform cap.
//! - [`Oracle`] — fvsst's pass structure fed with ground-truth models
//!   instead of counter estimates: the upper bound that isolates
//!   prediction error from algorithmic behaviour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod no_dvfs;
pub mod oracle;
pub mod powerdown;
pub mod uniform;
pub mod utilization;

pub use no_dvfs::NoDvfs;
pub use oracle::Oracle;
pub use powerdown::NodePowerDown;
pub use uniform::{uniform_cap_frequency, UniformScaling};
pub use utilization::UtilizationDriven;
