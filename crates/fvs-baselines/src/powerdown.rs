//! Node power-down under a budget.

use fvs_sched::{Decision, Policy, TickContext};

/// Switches whole cores off, highest index first, until the remaining
/// cores fit the budget at full speed — the "power down some nodes"
/// alternative of the paper's abstract. Work on a powered-down core
/// simply stops (migration is what clusters can't do, which is the
/// paper's premise).
#[derive(Debug, Default)]
pub struct NodePowerDown {
    last_budget: Option<f64>,
}

impl NodePowerDown {
    /// New power-down policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for NodePowerDown {
    fn name(&self) -> &str {
        "node-powerdown"
    }

    fn decide(&mut self, ctx: &TickContext<'_>, out: &mut Decision) -> bool {
        if self.last_budget == Some(ctx.budget_w) {
            return false;
        }
        self.last_budget = Some(ctx.budget_w);
        let n = ctx.samples.len();
        let f_max = ctx.platform.freq_set.max();
        let p_max = ctx.platform.power_table.max_power();
        // How many cores fit at full speed?
        let fit = ((ctx.budget_w / p_max).floor() as usize).min(n);
        out.set_uniform(n, f_max);
        for i in fit..n {
            out.powered_on[i] = false;
        }
        out.feasible = fit > 0 || ctx.budget_w >= 0.0 && n == 0;
        if fit == 0 {
            out.feasible = ctx.budget_w <= 0.0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_power::BudgetSchedule;
    use fvs_sched::ScheduledSimulation;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn powers_down_to_fit_budget() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(1, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(2, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(3, WorkloadSpec::synthetic(100.0, 1.0e12))
            .build();
        // 294 W fits two cores at 140 W, not three.
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            NodePowerDown::new(),
            BudgetSchedule::constant(294.0),
            0.01,
        );
        let report = sim.run_for(0.5);
        assert!(report.final_power_w <= 294.0);
        assert_eq!(report.final_power_w, 280.0, "two cores at 140 W");
        // Cores 2 and 3 stopped after the first dispatch tick (the
        // policy decides at the end of tick 0), so they retired at most
        // one tick's worth of work while core 0 ran the whole time.
        let one_tick_work = report.body_instructions[0] / 49.0;
        assert!(report.body_instructions[2] <= one_tick_work * 1.01);
        assert!(report.body_instructions[3] <= one_tick_work * 1.01);
        assert!(report.body_instructions[0] > 40.0 * report.body_instructions[2]);
    }

    #[test]
    fn full_budget_keeps_everything_on() {
        let machine = MachineBuilder::p630().build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            NodePowerDown::new(),
            BudgetSchedule::constant(560.0),
            0.01,
        );
        let report = sim.run_for(0.2);
        assert_eq!(report.final_power_w, 560.0);
    }
}
