//! Uniform frequency scaling under a budget.

use fvs_model::{FreqMhz, FrequencySet};
use fvs_power::FreqPowerTable;
use fvs_sched::{Decision, Policy, TickContext};

/// The highest frequency `f` in `set` such that `n · P(f) ≤ budget_w`,
/// or `None` when even the minimum does not fit.
pub fn uniform_cap_frequency(
    set: &FrequencySet,
    table: &FreqPowerTable,
    n: usize,
    budget_w: f64,
) -> Option<FreqMhz> {
    let per_core = budget_w / n as f64;
    table.max_freq_under(per_core).and_then(|f| {
        // `max_freq_under` works on the table's own grid, which equals
        // the schedulable set on this platform, but snap defensively.
        set.highest_at_most(f)
    })
}

/// Slows *all* cores to one shared frequency that fits the budget — the
/// simple alternative the paper's introduction contrasts with
/// workload-aware non-uniform slowdown. Ignores memory behaviour
/// entirely, so CPU-bound and memory-bound cores pay the same clock cut.
#[derive(Debug, Default)]
pub struct UniformScaling {
    last_budget: Option<f64>,
}

impl UniformScaling {
    /// New uniform-scaling policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for UniformScaling {
    fn name(&self) -> &str {
        "uniform-scaling"
    }

    fn decide(&mut self, ctx: &TickContext<'_>, out: &mut Decision) -> bool {
        // Recompute only when the budget changes (the assignment is
        // workload-independent).
        if self.last_budget == Some(ctx.budget_w) {
            return false;
        }
        self.last_budget = Some(ctx.budget_w);
        let n = ctx.samples.len();
        match uniform_cap_frequency(
            &ctx.platform.freq_set,
            &ctx.platform.power_table,
            n,
            ctx.budget_w,
        ) {
            Some(f) => out.set_uniform(n, f),
            None => {
                out.set_uniform(n, ctx.platform.freq_set.min());
                out.feasible = false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_power::BudgetSchedule;
    use fvs_sched::ScheduledSimulation;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn cap_frequency_math() {
        let table = FreqPowerTable::p630_table1();
        let set = table.frequency_set();
        // 294 W over 4 cores = 73.5 W/core → 700 MHz (66 W).
        assert_eq!(
            uniform_cap_frequency(&set, &table, 4, 294.0),
            Some(FreqMhz(700))
        );
        // 560 W: full speed.
        assert_eq!(
            uniform_cap_frequency(&set, &table, 4, 560.0),
            Some(FreqMhz(1000))
        );
        // 20 W over 4 cores: under the 9 W floor.
        assert_eq!(uniform_cap_frequency(&set, &table, 4, 20.0), None);
    }

    #[test]
    fn meets_budget_but_hurts_cpu_bound_work() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(1, WorkloadSpec::synthetic(0.0, 1.0e12))
            .workload(2, WorkloadSpec::synthetic(0.0, 1.0e12))
            .workload(3, WorkloadSpec::synthetic(0.0, 1.0e12))
            .build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            UniformScaling::new(),
            BudgetSchedule::constant(294.0),
            0.01,
        );
        let report = sim.run_for(0.5);
        assert!(report.final_power_w <= 294.0);
        // All four cores at the same 700 MHz — including the CPU-bound
        // one that fvsst would have kept fast.
        for i in 0..4 {
            assert_eq!(sim.machine().effective_frequency(i), FreqMhz(700));
        }
    }

    #[test]
    fn recomputes_on_budget_change_only() {
        let machine = MachineBuilder::p630().build();
        let budget = BudgetSchedule::with_events(
            560.0,
            vec![fvs_power::BudgetEvent {
                at_s: 0.25,
                budget_w: 140.0,
            }],
        );
        let mut sim =
            ScheduledSimulation::with_policy(machine, UniformScaling::new(), budget, 0.01);
        let report = sim.run_for(0.5);
        assert_eq!(report.decisions, 2, "initial + one budget change");
        // 140 W / 4 = 35 W per core → 500 MHz.
        assert_eq!(sim.machine().effective_frequency(0), FreqMhz(500));
    }
}
