//! The non-fvsst reference system.

use fvs_sched::{Decision, Policy, TickContext};

/// Pins every core at `f_max` forever — what a server without any power
/// management does. It never meets a reduced budget; experiments use it
/// as the performance/energy reference (Table 3 normalises against it)
/// and as the system that *cascades* in the supply-failure scenario.
#[derive(Debug, Default)]
pub struct NoDvfs {
    configured: bool,
}

impl NoDvfs {
    /// New reference policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for NoDvfs {
    fn name(&self) -> &str {
        "no-dvfs"
    }

    fn decide(&mut self, ctx: &TickContext<'_>, out: &mut Decision) -> bool {
        if self.configured {
            return false;
        }
        self.configured = true;
        let n = ctx.samples.len();
        let f_max = ctx.platform.freq_set.max();
        out.set_uniform(n, f_max);
        // Honest reporting: it has no way to meet a finite budget below
        // n × max_power.
        out.feasible = n as f64 * ctx.platform.power_table.max_power() <= ctx.budget_w;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_power::BudgetSchedule;
    use fvs_sched::ScheduledSimulation;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn stays_at_fmax_and_violates_reduced_budget() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(20.0, 1.0e12))
            .build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            NoDvfs::new(),
            BudgetSchedule::constant(294.0),
            0.01,
        );
        let report = sim.run_for(0.5);
        assert_eq!(report.final_power_w, 560.0);
        assert!((report.violation_s - 0.5).abs() < 1e-9);
        assert_eq!(report.decisions, 1);
    }
}
