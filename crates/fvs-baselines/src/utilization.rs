//! Utilization-driven DVFS (LongRun / Demand Based Switching stand-in).

use fvs_sched::{Decision, Policy, TickContext};

/// Frequency follows demand, one table step per period: busy cores step
/// up, idle cores step down. No memory-behaviour input whatsoever — the
/// paper's §3.1 point about LongRun/DBS is precisely that "neither one
/// makes any use of information about how efficiently the workload uses
/// the processor or about its memory behavior". A uniform budget cap is
/// applied on top so the comparison under power limits is fair.
#[derive(Debug)]
pub struct UtilizationDriven {
    /// Dispatch ticks between adjustments (mirrors fvsst's `n`).
    pub period_ticks: u64,
    ticks: u64,
}

impl UtilizationDriven {
    /// Adjust every `period_ticks` dispatch ticks.
    pub fn new(period_ticks: u64) -> Self {
        UtilizationDriven {
            period_ticks: period_ticks.max(1),
            ticks: 0,
        }
    }
}

impl Default for UtilizationDriven {
    fn default() -> Self {
        Self::new(10)
    }
}

impl Policy for UtilizationDriven {
    fn name(&self) -> &str {
        "utilization-dvfs"
    }

    fn decide(&mut self, ctx: &TickContext<'_>, out: &mut Decision) -> bool {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.period_ticks) {
            return false;
        }
        let set = &ctx.platform.freq_set;
        let table = &ctx.platform.power_table;
        let n = ctx.samples.len();
        // Budget → per-core uniform cap.
        let cap = crate::uniform::uniform_cap_frequency(set, table, n, ctx.budget_w)
            .unwrap_or_else(|| set.min());
        out.freqs.clear();
        for i in 0..n {
            let cur = ctx.current[i];
            let next = if ctx.idle[i] {
                set.step_down(cur).unwrap_or_else(|| set.min())
            } else {
                set.step_up(cur).unwrap_or_else(|| set.max())
            };
            out.freqs.push(next.min(cap));
        }
        out.desired.clone_from(&out.freqs);
        out.predicted_ipc.clear();
        out.predicted_ipc.resize(n, None);
        out.powered_on.clear();
        out.powered_on.resize(n, true);
        out.feasible = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_model::FreqMhz;
    use fvs_power::BudgetSchedule;
    use fvs_sched::ScheduledSimulation;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn busy_cores_ramp_up_idle_cores_ramp_down() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(0.0, 1.0e12)) // busy but memory-bound
            .initial_frequency(FreqMhz(600))
            .build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            UtilizationDriven::default(),
            BudgetSchedule::constant(f64::INFINITY),
            0.01,
        );
        sim.run_for(2.0);
        // The busy core climbed to f_max even though its work is
        // memory-bound — the strategy's blind spot.
        assert_eq!(sim.machine().effective_frequency(0), FreqMhz(1000));
        // The idle cores walked down to f_min.
        assert_eq!(sim.machine().effective_frequency(1), FreqMhz(250));
    }

    #[test]
    fn budget_cap_is_respected() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(1, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(2, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(3, WorkloadSpec::synthetic(100.0, 1.0e12))
            .build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            UtilizationDriven::default(),
            BudgetSchedule::constant(294.0),
            0.01,
        );
        let report = sim.run_for(2.0);
        assert!(report.final_power_w <= 294.0);
        assert_eq!(sim.machine().effective_frequency(0), FreqMhz(700));
    }
}
