//! The ground-truth oracle: fvsst without prediction error.

use fvs_sched::{Decision, FvsstAlgorithm, Policy, ProcInput, ScheduleCache, TickContext};

/// Runs the exact two-pass fvsst algorithm, but feeds it the *ground
/// truth* timing model of whatever each core is executing right now
/// (delivered by the harness via `TickContext::ground_truth`) instead of
/// counter-window estimates. The gap between `Oracle` and
/// [`fvs_sched::FvsstScheduler`] is therefore pure prediction/sampling
/// error — the quantity the paper's Table 2 bounds.
#[derive(Debug)]
pub struct Oracle {
    algorithm: FvsstAlgorithm,
    period_ticks: u64,
    ticks: u64,
    last_budget: Option<f64>,
    cache: ScheduleCache,
    proc_buf: Vec<ProcInput>,
}

impl Oracle {
    /// Oracle with the same algorithm parameters and period as a given
    /// fvsst configuration.
    pub fn new(algorithm: FvsstAlgorithm, period_ticks: u64) -> Self {
        Oracle {
            algorithm,
            period_ticks: period_ticks.max(1),
            ticks: 0,
            last_budget: None,
            // EXACT tolerance: the cache is a pure memoisation layer, so
            // the oracle's decisions stay bit-identical to a fresh run.
            cache: ScheduleCache::new(),
            proc_buf: Vec::new(),
        }
    }

    /// The paper-default oracle (ε = 5 %, P630, every 10 ticks).
    pub fn p630() -> Self {
        Self::new(FvsstAlgorithm::p630(), 10)
    }
}

impl Policy for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn decide(&mut self, ctx: &TickContext<'_>, out: &mut Decision) -> bool {
        self.ticks += 1;
        let budget_changed = self
            .last_budget
            .map(|b| (b - ctx.budget_w).abs() > 1e-9)
            .unwrap_or(false);
        self.last_budget = Some(ctx.budget_w);
        // Bootstrap on the first tick (mirrors FvsstScheduler), then on
        // the timer or a budget change.
        if self.ticks > 1 && !budget_changed && !self.ticks.is_multiple_of(self.period_ticks) {
            return false;
        }
        self.proc_buf.clear();
        for i in 0..ctx.samples.len() {
            self.proc_buf.push(ProcInput {
                model: Some(ctx.ground_truth[i]),
                idle: ctx.idle[i],
                current: ctx.current[i],
            });
        }
        let n = ctx.samples.len();
        let d = self
            .algorithm
            .schedule_cached(&mut self.cache, &self.proc_buf, ctx.budget_w);
        out.freqs.clone_from(&d.freqs);
        out.desired.clone_from(&d.desired);
        out.predicted_ipc.clone_from(&d.predicted_ipc);
        out.powered_on.clear();
        out.powered_on.resize(n, true);
        out.feasible = d.feasible;
        true
    }

    fn wants_ground_truth(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_model::FreqMhz;
    use fvs_power::BudgetSchedule;
    use fvs_sched::ScheduledSimulation;
    use fvs_sim::{MachineBuilder, NoiseModel};
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn oracle_matches_fvsst_on_steady_noiseless_workloads() {
        let build = || {
            MachineBuilder::p630()
                .workload(0, WorkloadSpec::synthetic(100.0, 1.0e12))
                .workload(1, WorkloadSpec::synthetic(10.0, 1.0e12))
                .noise(NoiseModel::NONE)
                .build()
        };
        let mut oracle_sim = ScheduledSimulation::with_policy(
            build(),
            Oracle::p630(),
            BudgetSchedule::constant(f64::INFINITY),
            0.01,
        );
        oracle_sim.run_for(1.0);
        let machine = build();
        let config = fvs_sched::SchedulerConfig::p630();
        let mut fvsst_sim = ScheduledSimulation::new(machine, config);
        fvsst_sim.run_for(1.0);
        for i in 0..4 {
            assert_eq!(
                oracle_sim.machine().effective_frequency(i),
                fvsst_sim.machine().effective_frequency(i),
                "core {i}"
            );
        }
    }

    #[test]
    fn oracle_meets_budget() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(1, WorkloadSpec::synthetic(100.0, 1.0e12))
            .workload(2, WorkloadSpec::synthetic(50.0, 1.0e12))
            .workload(3, WorkloadSpec::synthetic(20.0, 1.0e12))
            .build();
        let mut sim = ScheduledSimulation::with_policy(
            machine,
            Oracle::p630(),
            BudgetSchedule::constant(294.0),
            0.01,
        );
        let report = sim.run_for(1.0);
        assert!(report.final_power_w <= 294.0);
        // The memory-bound core absorbed the cut; the CPU-bound cores
        // kept more frequency than a uniform 700 MHz cap would give.
        let f_mem = sim.machine().effective_frequency(3);
        assert!(f_mem <= FreqMhz(700));
    }
}
