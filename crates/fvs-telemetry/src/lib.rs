//! Telemetry for the fvsst scheduler stack.
//!
//! The paper's operational claims — the budget pass honors a dropped
//! `P_max` within the deadline `ΔT`, per-processor predicted loss stays
//! under ε — are only claims until they are observable. This crate turns
//! them into signals, in three pieces:
//!
//! - [`metrics`] — a lock-light registry of named counters, gauges and
//!   fixed-bucket histograms. Updates are plain atomics (no locks, no
//!   allocation); registration and snapshotting take a mutex on the
//!   cold path only. A process-wide handle lives at
//!   [`MetricsRegistry::global`], and per-scheduler scoped views come
//!   from [`MetricsRegistry::scoped`].
//! - [`event`] + [`sink`] — the structured [`SchedEvent`] journal: every
//!   scheduling round records its trigger, pass-1 ε choices, each pass-2
//!   demotion (processor, frequency step, predicted loss, power delta),
//!   the cache outcome, budget headroom and wall time, through a
//!   [`Telemetry`] handle feeding one of three sinks (preallocated
//!   in-memory ring, JSONL file, human-readable summary). The disabled
//!   handle costs one branch per emit and allocates nothing — the
//!   counting-allocator proofs in `fvs-sched` run against both the
//!   disabled handle and an enabled preallocated ring.
//! - [`trace`] — causal span tracing: nested RAII spans (cluster round
//!   → tier round → rack refresh → node apply) recorded into a
//!   preallocated ring, exportable as chrome://tracing JSON or a text
//!   flame summary. The disabled [`Tracer`] costs one branch per span.
//! - [`deadline`] — [`BudgetDeadlineTracker`]: stamps budget drops,
//!   measures rounds-to-compliance and wall-time-to-compliance against a
//!   configurable `ΔT`, and counts violations.
//!
//! [`RoundTimer`] is the shared monotonic stopwatch used for round and
//! experiment wall times.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadline;
pub mod event;
pub mod metrics;
pub mod sink;
pub mod timer;
pub mod trace;

pub use deadline::{BudgetDeadlineTracker, ComplianceRecord, OpenEpisode};
pub use event::{FaultDomain, SchedEvent, TriggerKind, WireFaultKind};
pub use metrics::{
    quantile_from_buckets, Counter, Gauge, Histogram, MetricSnapshot, MetricValue, MetricsRegistry,
    ScopedMetrics,
};
pub use sink::Telemetry;
pub use timer::RoundTimer;
pub use trace::{SpanGuard, SpanId, SpanRecord, Tracer};
