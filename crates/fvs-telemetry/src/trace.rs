//! Causal span tracing: nested, thread-safe spans in a lock-light ring.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s. Each guard stamps a
//! monotonic start offset on creation and, on drop, writes one `Copy`
//! [`SpanRecord`] — name, id, parent id, logical thread id, start and
//! duration — into a preallocated ring of per-slot mutexes (a slot lock
//! is held only for the record copy, and distinct spans hash to distinct
//! slots, so recording under a rayon fan-out serializes almost never).
//!
//! Parenting is causal, not merely lexical: within one thread a
//! thread-local cursor makes nested guards parent automatically; across
//! threads (the rack fan-out) the caller captures [`Tracer::current`]
//! before spawning and opens children with [`Tracer::span_under`], so a
//! single cluster round can be followed root → tier → rack → node even
//! though its phases ran on different workers.
//!
//! The disabled tracer costs one branch per `span()` call: no clock
//! read, no id allocation, no record. The enabled steady state performs
//! zero heap allocations per span — names are `&'static str`, records
//! are `Copy`, the ring never grows.
//!
//! Exports: [`Tracer::export_chrome_json`] renders the ring in the
//! chrome://tracing / Perfetto "complete event" JSON format;
//! [`Tracer::flame_text`] renders a per-name aggregate (count, total,
//! max, depth-indented) for terminals.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identity of one span; `SpanId::NONE` means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (roots have this parent).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id names a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One completed span, as stored in the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Span id (nonzero; 0 marks an empty slot).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Static span name (`"hier.round"`, `"rack.refresh"`, …).
    pub name: &'static str,
    /// Logical thread id (small dense integers, first-use order).
    pub tid: u64,
    /// Start offset from the tracer's epoch (ns).
    pub start_ns: u64,
    /// Duration (ns).
    pub dur_ns: u64,
}

impl SpanRecord {
    const EMPTY: SpanRecord = SpanRecord {
        id: 0,
        parent: 0,
        name: "",
        tid: 0,
        start_ns: 0,
        dur_ns: 0,
    };

    /// End offset from the tracer's epoch (ns).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense logical thread id, allocated on first span from a thread.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The innermost open span on this thread (implicit parent).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

#[derive(Debug)]
struct TracerInner {
    slots: Box<[Mutex<SpanRecord>]>,
    /// Total records written; slot = written % slots.len().
    written: AtomicU64,
    /// Span id allocator (ids start at 1).
    ids: AtomicU64,
    epoch: Instant,
}

/// A cloneable handle to one span ring, or the disabled no-op.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The no-op handle: `span()` is one branch, records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Tracer with a preallocated ring of `capacity` span records.
    /// Recording never allocates; once full, the oldest records are
    /// overwritten.
    pub fn ring(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Tracer {
            inner: Some(Arc::new(TracerInner {
                slots: (0..cap).map(|_| Mutex::new(SpanRecord::EMPTY)).collect(),
                written: AtomicU64::new(0),
                ids: AtomicU64::new(1),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span parented to the innermost open span on this thread
    /// (or a root if none). Close it by dropping the guard. The guard
    /// owns an `Arc` to the ring, so it outlives any borrow of the
    /// tracer (it can be held across `&mut self` calls).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let parent = CURRENT.with(|c| c.get());
        Self::open(inner, name, parent)
    }

    /// Open a span under an explicit parent — the cross-thread form.
    /// Capture [`Tracer::current`] before handing work to another
    /// thread (e.g. a rayon fan-out) and open the child there.
    #[inline]
    pub fn span_under(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        Self::open(inner, name, parent.0)
    }

    #[inline]
    fn open(inner: &Arc<TracerInner>, name: &'static str, parent: u64) -> SpanGuard {
        let id = inner.ids.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                name,
                id,
                parent,
                prev,
                started: Instant::now(),
            }),
        }
    }

    /// The innermost open span on the calling thread, for parenting
    /// work handed to other threads. `SpanId::NONE` when nothing is
    /// open (or the tracer is disabled).
    pub fn current(&self) -> SpanId {
        if self.inner.is_none() {
            return SpanId::NONE;
        }
        SpanId(CURRENT.with(|c| c.get()))
    }

    /// Spans recorded so far (including any overwritten).
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.written.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records lost to ring overwrites.
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| {
                i.written
                    .load(Ordering::Relaxed)
                    .saturating_sub(i.slots.len() as u64)
            })
            .unwrap_or(0)
    }

    /// Snapshot of the ring, oldest record first.
    pub fn records(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let written = inner.written.load(Ordering::SeqCst);
        let cap = inner.slots.len() as u64;
        let filled = written.min(cap) as usize;
        let head = (written % cap) as usize;
        let mut out = Vec::with_capacity(filled);
        // Oldest slot is `head` when the ring has wrapped, 0 otherwise.
        let first = if written > cap { head } else { 0 };
        for k in 0..filled {
            let slot = (first + k) % inner.slots.len();
            let rec = *inner.slots[slot].lock().expect("trace slot poisoned");
            if rec.id != 0 {
                out.push(rec);
            }
        }
        out.sort_by_key(|r| (r.start_ns, r.id));
        out
    }

    /// Render the ring as chrome://tracing JSON (an array of complete
    /// `"ph":"X"` events; open `chrome://tracing` or Perfetto and load
    /// it). Span ids and parent ids ride in `args` so the causal chain
    /// survives the export.
    pub fn export_chrome_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("[");
        for (k, r) in self.records().iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"fvsst\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                r.name,
                r.tid,
                r.start_ns as f64 / 1e3,
                r.dur_ns as f64 / 1e3,
                r.id,
                r.parent
            );
        }
        out.push(']');
        out
    }

    /// A terminal-friendly flame summary: one line per (depth, name),
    /// indented by causal depth, with count, total and max duration.
    pub fn flame_text(&self) -> String {
        use std::collections::HashMap;
        use std::fmt::Write;
        let records = self.records();
        let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
        let depth_of = |r: &SpanRecord| {
            let mut d = 0usize;
            let mut p = r.parent;
            while p != 0 {
                match by_id.get(&p) {
                    // Cap pathological chains (a wrapped ring can lose
                    // ancestors; treat the break as depth so far).
                    Some(a) if d < 32 => {
                        d += 1;
                        p = a.parent;
                    }
                    _ => break,
                }
            }
            d
        };
        struct Line {
            depth: usize,
            name: &'static str,
            count: u64,
            total_ns: u64,
            max_ns: u64,
        }
        let mut agg: Vec<Line> = Vec::new();
        for r in &records {
            let depth = depth_of(r);
            match agg
                .iter_mut()
                .find(|l| l.depth == depth && l.name == r.name)
            {
                Some(l) => {
                    l.count += 1;
                    l.total_ns += r.dur_ns;
                    l.max_ns = l.max_ns.max(r.dur_ns);
                }
                None => agg.push(Line {
                    depth,
                    name: r.name,
                    count: 1,
                    total_ns: r.dur_ns,
                    max_ns: r.dur_ns,
                }),
            }
        }
        agg.sort_by(|a, b| (a.depth, b.total_ns).cmp(&(b.depth, a.total_ns)));
        let mut out = String::new();
        let _ = writeln!(out, "trace flame summary ({} spans):", records.len());
        for l in agg {
            let _ = writeln!(
                out,
                "{:indent$}{}  count={} total={:.3}ms max={:.3}ms",
                "",
                l.name,
                l.count,
                l.total_ns as f64 / 1e6,
                l.max_ns as f64 / 1e6,
                indent = 2 * (l.depth + 1)
            );
        }
        out
    }
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<TracerInner>,
    name: &'static str,
    id: u64,
    parent: u64,
    prev: u64,
    started: Instant,
}

/// RAII guard for one open span; dropping it records the span.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's id (NONE when the tracer is disabled) — hand it to
    /// another thread as the parent for [`Tracer::span_under`].
    pub fn id(&self) -> SpanId {
        self.active.as_ref().map_or(SpanId::NONE, |a| SpanId(a.id))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        CURRENT.with(|c| c.set(a.prev));
        let dur_ns = a.started.elapsed().as_nanos() as u64;
        let start_ns = a.started.duration_since(a.inner.epoch).as_nanos() as u64;
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            tid: TID.with(|t| *t),
            start_ns,
            dur_ns,
        };
        let slot =
            (a.inner.written.fetch_add(1, Ordering::SeqCst) % a.inner.slots.len() as u64) as usize;
        *a.inner.slots[slot].lock().expect("trace slot poisoned") = rec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        {
            let _g = t.span("outer");
            let _h = t.span("inner");
        }
        assert!(!t.enabled());
        assert_eq!(t.spans_recorded(), 0);
        assert!(t.records().is_empty());
        assert_eq!(t.current(), SpanId::NONE);
    }

    #[test]
    fn nested_spans_parent_automatically() {
        let t = Tracer::ring(16);
        {
            let outer = t.span("outer");
            let outer_id = outer.id();
            {
                let inner = t.span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            assert_eq!(t.current(), outer_id);
        }
        assert_eq!(t.current(), SpanId::NONE);
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        // The child is contained in the parent.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let t = Tracer::ring(64);
        let root = t.span("root");
        let root_id = root.id();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    let _g = t.span_under("worker", root_id);
                });
            }
        });
        drop(root);
        let recs = t.records();
        assert_eq!(recs.iter().filter(|r| r.name == "worker").count(), 4);
        for r in recs.iter().filter(|r| r.name == "worker") {
            assert_eq!(r.parent, root_id.0);
        }
        // The workers ran on their own logical thread ids.
        let root_rec = recs.iter().find(|r| r.name == "root").unwrap();
        assert!(recs
            .iter()
            .filter(|r| r.name == "worker")
            .all(|r| r.tid != root_rec.tid));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::ring(4);
        for _ in 0..10 {
            let _g = t.span("s");
        }
        assert_eq!(t.spans_recorded(), 10);
        assert_eq!(t.spans_dropped(), 6);
        assert_eq!(t.records().len(), 4);
    }

    #[test]
    fn chrome_export_is_parseable_json() {
        let t = Tracer::ring(16);
        {
            let _g = t.span("round");
            let _h = t.span("phase");
        }
        let json = t.export_chrome_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert!(e.get("args").and_then(|a| a.get("id")).is_some());
        }
    }

    #[test]
    fn flame_text_indents_by_depth() {
        let t = Tracer::ring(16);
        {
            let _g = t.span("round");
            let _h = t.span("phase");
        }
        let text = t.flame_text();
        assert!(text.contains("  round"), "{text}");
        assert!(text.contains("    phase"), "{text}");
    }
}
