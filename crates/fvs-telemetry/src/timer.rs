//! Monotonic wall-time measurement.

use std::time::Instant;

/// A started monotonic stopwatch.
///
/// Thin wrapper over [`std::time::Instant`] so every crate measures
/// round/experiment wall time the same way (and the measurement points
/// are greppable). Reading it allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct RoundTimer {
    start: Instant,
}

impl RoundTimer {
    /// Start timing now.
    pub fn start() -> Self {
        RoundTimer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`start`](RoundTimer::start).
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole nanoseconds elapsed since [`start`](RoundTimer::start)
    /// (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let t = RoundTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
        assert!(t.elapsed_s() >= 0.0);
    }
}
