//! The structured scheduling-event stream.
//!
//! Every event is a plain-old-data `Copy` value so the ring-buffer sink
//! can record it without allocating. The JSONL encoding is flat —
//! `{"kind":"demotion",...}` — so traces can be filtered with nothing
//! fancier than `grep '"kind":"demotion"'` or `jq 'select(.kind==…)'`.

use core::fmt::Write;

/// Why a scheduling round ran (mirror of the daemon's trigger enum,
/// kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// The periodic timer (`T = n·t`).
    Timer,
    /// The global power limit changed.
    BudgetChange,
    /// A processor entered or left the idle loop.
    IdleEdge,
}

impl TriggerKind {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerKind::Timer => "timer",
            TriggerKind::BudgetChange => "budget_change",
            TriggerKind::IdleEdge => "idle_edge",
        }
    }
}

/// Which layer an injected fault targeted (mirror of the fault
/// taxonomy in fvs-faults, kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDomain {
    /// A performance-counter sample was corrupted.
    Counter,
    /// A frequency command was dropped, truncated or delayed.
    Actuation,
    /// A cluster message or node misbehaved.
    Cluster,
    /// The power supply failed (budget drop).
    Supply,
}

impl FaultDomain {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultDomain::Counter => "counter",
            FaultDomain::Actuation => "actuation",
            FaultDomain::Cluster => "cluster",
            FaultDomain::Supply => "supply",
        }
    }
}

/// What went wrong on the wire (mirror of the fvs-net frame-fault and
/// chaos-injection taxonomy, kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFaultKind {
    /// A frame was dropped (never written, or never delivered).
    Drop,
    /// A frame was held back and delivered late.
    Delay,
    /// A frame was delivered twice.
    Duplicate,
    /// A frame was truncated or bit-flipped in flight.
    Corrupt,
    /// The connection was reset mid-stream.
    Reset,
    /// Traffic toward the coordinator was blackholed (uplink partition).
    PartitionUp,
    /// Traffic toward the agent was blackholed (downlink partition).
    PartitionDown,
    /// A received length prefix exceeded the frame cap.
    Oversize,
    /// A received frame header had the wrong magic.
    BadMagic,
    /// A received payload failed to decode.
    Decode,
}

impl WireFaultKind {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            WireFaultKind::Drop => "drop",
            WireFaultKind::Delay => "delay",
            WireFaultKind::Duplicate => "duplicate",
            WireFaultKind::Corrupt => "corrupt",
            WireFaultKind::Reset => "reset",
            WireFaultKind::PartitionUp => "partition_up",
            WireFaultKind::PartitionDown => "partition_down",
            WireFaultKind::Oversize => "oversize",
            WireFaultKind::BadMagic => "bad_magic",
            WireFaultKind::Decode => "decode",
        }
    }
}

/// One structured scheduling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedEvent {
    /// A scheduling round began.
    RoundStart {
        /// Round sequence number (the daemon's `schedules_run`).
        round: u64,
        /// Simulation/wall time of the round (s).
        t_s: f64,
        /// What fired the round.
        trigger: TriggerKind,
        /// Budget in force (W).
        budget_w: f64,
    },
    /// Pass 1's ε choice for one processor.
    Desired {
        /// Round sequence number.
        round: u64,
        /// Processor index.
        proc: u32,
        /// The ε-constrained desired frequency (MHz).
        desired_mhz: u32,
        /// Whether the processor was idle-pinned.
        idle: bool,
    },
    /// One pass-2 single-step demotion.
    Demotion {
        /// Round sequence number.
        round: u64,
        /// Demoted processor.
        proc: u32,
        /// Frequency before the step (MHz).
        from_mhz: u32,
        /// Frequency after the step (MHz).
        to_mhz: u32,
        /// Predicted loss vs `f_max` *after* the step.
        predicted_loss: f64,
        /// Power change of the step (W, negative).
        power_delta_w: f64,
    },
    /// Cache outcome of the round.
    CacheOutcome {
        /// Round sequence number.
        round: u64,
        /// The round was answered entirely from the cached decision.
        full_hit: bool,
        /// Per-processor pass-1 evaluations skipped this round.
        proc_hits: u32,
        /// Per-processor pass-1 evaluations performed this round.
        proc_rebuilds: u32,
    },
    /// A scheduling round completed.
    RoundEnd {
        /// Round sequence number.
        round: u64,
        /// Whether the budget could be met.
        feasible: bool,
        /// Demotions pass 2 performed.
        demotions: u32,
        /// Σ table power of the final assignment (W).
        predicted_power_w: f64,
        /// Budget in force (W).
        budget_w: f64,
        /// `budget_w - predicted_power_w`.
        headroom_w: f64,
        /// Wall time of the round (ns).
        wall_ns: u64,
    },
    /// The budget dropped (e.g. a supply failed).
    BudgetDrop {
        /// When the drop was observed (s).
        t_s: f64,
        /// Budget before (W).
        from_w: f64,
        /// Budget after (W).
        to_w: f64,
        /// The compliance deadline `ΔT` in force (s).
        deadline_s: f64,
    },
    /// Measured power first came back under the dropped budget.
    BudgetCompliance {
        /// When compliance was observed (s).
        t_s: f64,
        /// Scheduling rounds between the drop and compliance.
        rounds: u32,
        /// Wall time between the drop and compliance (s).
        wall_s: f64,
        /// Whether compliance arrived within `ΔT`.
        within_deadline: bool,
    },
    /// `ΔT` expired with measured power still over the dropped budget.
    BudgetViolation {
        /// When the deadline expired (s).
        t_s: f64,
        /// The deadline that was missed (s).
        deadline_s: f64,
    },
    /// The feedback guard grew its safety margin.
    FeedbackClamp {
        /// When the clamp fired (s).
        t_s: f64,
        /// The new margin (W).
        margin_w: f64,
        /// The measured overshoot that triggered it (W).
        overshoot_w: f64,
    },
    /// One global (cluster-coordinator) scheduling round.
    ClusterRound {
        /// Coordinator round sequence number.
        round: u64,
        /// Nodes that have reported at least once.
        nodes: u32,
        /// Processors scheduled in this round.
        procs: u32,
        /// Global budget (W).
        budget_w: f64,
        /// Σ table power of the global assignment (W).
        predicted_power_w: f64,
        /// Whether the global budget could be met.
        feasible: bool,
    },
    /// One multi-threaded-daemon scheduler-thread round.
    DaemonRound {
        /// Round sequence number.
        round: u64,
        /// Processors commanded.
        procs: u32,
        /// Wall time of the round (ns).
        wall_ns: u64,
    },
    /// The fault injector fired.
    FaultInjected {
        /// When the fault fired (s).
        t_s: f64,
        /// Which layer it targeted.
        domain: FaultDomain,
        /// Processor or node index it hit.
        target: u32,
    },
    /// The sample validator refused an impossible counter sample.
    SampleQuarantined {
        /// When the sample was refused (s).
        t_s: f64,
        /// Processor (or, cluster-side, node) whose sample was refused.
        proc: u32,
        /// The offending value (observed IPC, or the corrupt summary
        /// power); non-finite values encode as `null`.
        value: f64,
    },
    /// A commanded frequency did not take effect; the scheduler
    /// re-issued it.
    ActuationRetry {
        /// When the retry fired (s).
        t_s: f64,
        /// Processor being retried.
        proc: u32,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// The frequency that was commanded (MHz).
        requested_mhz: u32,
        /// The frequency actually observed (MHz).
        actual_mhz: u32,
    },
    /// A cluster node went silent past the heartbeat timeout; the
    /// coordinator now charges it conservatively.
    NodeDeclaredDead {
        /// When the node was declared dead (s).
        t_s: f64,
        /// The silent node.
        node: u32,
        /// When it last reported (s); `null` if it never did.
        last_seen_s: f64,
        /// Power conservatively charged against the global budget (W).
        charged_w: f64,
    },
    /// Actuation retries were exhausted; the processor is pinned at its
    /// fail-safe minimum frequency and excluded from Pass 1.
    FailsafePin {
        /// When the pin was applied (s).
        t_s: f64,
        /// The pinned processor.
        proc: u32,
        /// The fail-safe frequency (MHz).
        pinned_mhz: u32,
        /// Failed retries that led here.
        retries: u32,
    },
    /// One tier of the budget-delegation tree ran (or skipped) a
    /// delegation round.
    TierRound {
        /// When the round ran (s).
        t_s: f64,
        /// Tier code: 1 = rack, 2 = row, 3 = datacenter root.
        tier: u8,
        /// Subtrees at this tier that recomputed.
        ran: u32,
        /// Subtrees at this tier skipped via unchanged fingerprints.
        skipped: u32,
    },
    /// A parent tier handed a child a *different* sub-budget.
    SubbudgetAssigned {
        /// When the assignment was made (s).
        t_s: f64,
        /// Tier code of the *assigning* parent (2 = row, 3 = root).
        tier: u8,
        /// Child index within the parent (rack or row number).
        child: u32,
        /// The new sub-budget (W); non-finite encodes as `null`.
        subbudget_w: f64,
    },
    /// Per-tier fingerprint-cache outcome for one delegation round.
    SubtreeCache {
        /// When the round ran (s).
        t_s: f64,
        /// Tier code: 1 = rack, 2 = row, 3 = datacenter root.
        tier: u8,
        /// Subtree fingerprints that matched (work skipped).
        hits: u32,
        /// Subtree fingerprints that drifted (work done).
        misses: u32,
    },
    /// Something went wrong on the wire — a chaos-injected fault (at the
    /// injection site) or an organic frame fault (at the detection site).
    WireFault {
        /// When the fault happened (s).
        t_s: f64,
        /// Node the connection belongs to (`u32::MAX` before the hello
        /// names it).
        node: u32,
        /// What went wrong.
        kind: WireFaultKind,
        /// `true` when a `ChaosStream` injected it on purpose; `false`
        /// for organic corruption detected at the frame decoder.
        injected: bool,
        /// Observed frame length (payload bytes): the length prefix of
        /// a faulting frame at the decoder, or the written frame size
        /// at an injection site. 0 when unknowable (bad magic makes
        /// the header garbage).
        frame_len: u32,
        /// Wire codec of the faulting frame: 1 = `FVS1` JSON, 2 =
        /// `FVS2` binary, 0 = unknown.
        codec: u8,
    },
    /// The coordinator persisted a recovery snapshot.
    SnapshotWritten {
        /// When the snapshot was taken (s, coordinator clock).
        t_s: f64,
        /// The coordinator epoch recorded in the snapshot.
        epoch: u64,
        /// The budget recorded in the snapshot (W); non-finite encodes
        /// as `null`.
        budget_w: f64,
        /// Node records carried by the snapshot.
        nodes: u32,
    },
    /// A coordinator restarted from a recovery snapshot (`--resume`).
    CoordinatorResumed {
        /// When the resumed coordinator came up (s, its own clock).
        t_s: f64,
        /// The new (post-bump) coordinator epoch.
        epoch: u64,
        /// The restored budget (W); non-finite encodes as `null`.
        budget_w: f64,
        /// Node charges restored from the snapshot.
        restored_nodes: u32,
        /// Length of the resync grace window (s).
        grace_s: f64,
    },
    /// A stale-epoch peer was fenced (split-brain guard).
    EpochFenced {
        /// When the fencing happened (s).
        t_s: f64,
        /// The node whose connection carried the stale epoch.
        node: u32,
        /// The peer's claimed epoch.
        peer_epoch: u64,
        /// The local epoch that won.
        local_epoch: u64,
    },
    /// The post-resume resync window closed: restored charges are now
    /// either refreshed by live summaries or conservatively retained.
    ResyncComplete {
        /// When resync closed (s, coordinator clock).
        t_s: f64,
        /// Wall time the resync took (s).
        wall_s: f64,
        /// Restored nodes that sent a fresh summary inside the window.
        fresh_nodes: u32,
        /// Restored nodes still silent (their conservative charge
        /// stands).
        charged_nodes: u32,
    },
}

/// Write `x` as a JSON number, mapping non-finite values (an unlimited
/// budget is `+∞`) to `null`.
fn jnum(buf: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(buf, "{x}");
    } else {
        buf.push_str("null");
    }
}

impl SchedEvent {
    /// Stable lowercase event-kind name (the JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            SchedEvent::RoundStart { .. } => "round_start",
            SchedEvent::Desired { .. } => "desired",
            SchedEvent::Demotion { .. } => "demotion",
            SchedEvent::CacheOutcome { .. } => "cache",
            SchedEvent::RoundEnd { .. } => "round_end",
            SchedEvent::BudgetDrop { .. } => "budget_drop",
            SchedEvent::BudgetCompliance { .. } => "budget_compliance",
            SchedEvent::BudgetViolation { .. } => "budget_violation",
            SchedEvent::FeedbackClamp { .. } => "feedback_clamp",
            SchedEvent::ClusterRound { .. } => "cluster_round",
            SchedEvent::DaemonRound { .. } => "daemon_round",
            SchedEvent::FaultInjected { .. } => "fault_injected",
            SchedEvent::SampleQuarantined { .. } => "sample_quarantined",
            SchedEvent::ActuationRetry { .. } => "actuation_retry",
            SchedEvent::NodeDeclaredDead { .. } => "node_declared_dead",
            SchedEvent::FailsafePin { .. } => "failsafe_pin",
            SchedEvent::TierRound { .. } => "tier_round",
            SchedEvent::SubbudgetAssigned { .. } => "subbudget_assigned",
            SchedEvent::SubtreeCache { .. } => "subtree_cache",
            SchedEvent::WireFault { .. } => "wire_fault",
            SchedEvent::SnapshotWritten { .. } => "snapshot_written",
            SchedEvent::CoordinatorResumed { .. } => "coordinator_resumed",
            SchedEvent::EpochFenced { .. } => "epoch_fenced",
            SchedEvent::ResyncComplete { .. } => "resync_complete",
        }
    }

    /// Append the event as one JSON object (no trailing newline) to
    /// `buf`. Reuses the caller's buffer so the JSONL sink formats
    /// without allocating in steady state.
    pub fn write_jsonl(&self, buf: &mut String) {
        let _ = write!(buf, "{{\"kind\":\"{}\"", self.kind());
        match *self {
            SchedEvent::RoundStart {
                round,
                t_s,
                trigger,
                budget_w,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"t_s\":{t_s},\"trigger\":\"{}\"",
                    trigger.as_str()
                );
                buf.push_str(",\"budget_w\":");
                jnum(buf, budget_w);
            }
            SchedEvent::Desired {
                round,
                proc,
                desired_mhz,
                idle,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"proc\":{proc},\"desired_mhz\":{desired_mhz},\"idle\":{idle}"
                );
            }
            SchedEvent::Demotion {
                round,
                proc,
                from_mhz,
                to_mhz,
                predicted_loss,
                power_delta_w,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"proc\":{proc},\"from_mhz\":{from_mhz},\"to_mhz\":{to_mhz}"
                );
                buf.push_str(",\"predicted_loss\":");
                jnum(buf, predicted_loss);
                buf.push_str(",\"power_delta_w\":");
                jnum(buf, power_delta_w);
            }
            SchedEvent::CacheOutcome {
                round,
                full_hit,
                proc_hits,
                proc_rebuilds,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"full_hit\":{full_hit},\"proc_hits\":{proc_hits},\"proc_rebuilds\":{proc_rebuilds}"
                );
            }
            SchedEvent::RoundEnd {
                round,
                feasible,
                demotions,
                predicted_power_w,
                budget_w,
                headroom_w,
                wall_ns,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"feasible\":{feasible},\"demotions\":{demotions}"
                );
                buf.push_str(",\"predicted_power_w\":");
                jnum(buf, predicted_power_w);
                buf.push_str(",\"budget_w\":");
                jnum(buf, budget_w);
                buf.push_str(",\"headroom_w\":");
                jnum(buf, headroom_w);
                let _ = write!(buf, ",\"wall_ns\":{wall_ns}");
            }
            SchedEvent::BudgetDrop {
                t_s,
                from_w,
                to_w,
                deadline_s,
            } => {
                let _ = write!(buf, ",\"t_s\":{t_s}");
                buf.push_str(",\"from_w\":");
                jnum(buf, from_w);
                buf.push_str(",\"to_w\":");
                jnum(buf, to_w);
                let _ = write!(buf, ",\"deadline_s\":{deadline_s}");
            }
            SchedEvent::BudgetCompliance {
                t_s,
                rounds,
                wall_s,
                within_deadline,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"rounds\":{rounds},\"wall_s\":{wall_s},\"within_deadline\":{within_deadline}"
                );
            }
            SchedEvent::BudgetViolation { t_s, deadline_s } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"deadline_s\":{deadline_s}");
            }
            SchedEvent::FeedbackClamp {
                t_s,
                margin_w,
                overshoot_w,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"margin_w\":{margin_w},\"overshoot_w\":{overshoot_w}"
                );
            }
            SchedEvent::ClusterRound {
                round,
                nodes,
                procs,
                budget_w,
                predicted_power_w,
                feasible,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"nodes\":{nodes},\"procs\":{procs}"
                );
                buf.push_str(",\"budget_w\":");
                jnum(buf, budget_w);
                buf.push_str(",\"predicted_power_w\":");
                jnum(buf, predicted_power_w);
                let _ = write!(buf, ",\"feasible\":{feasible}");
            }
            SchedEvent::DaemonRound {
                round,
                procs,
                wall_ns,
            } => {
                let _ = write!(
                    buf,
                    ",\"round\":{round},\"procs\":{procs},\"wall_ns\":{wall_ns}"
                );
            }
            SchedEvent::FaultInjected {
                t_s,
                domain,
                target,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"domain\":\"{}\",\"target\":{target}",
                    domain.as_str()
                );
            }
            SchedEvent::SampleQuarantined { t_s, proc, value } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"proc\":{proc}");
                buf.push_str(",\"value\":");
                jnum(buf, value);
            }
            SchedEvent::ActuationRetry {
                t_s,
                proc,
                attempt,
                requested_mhz,
                actual_mhz,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"proc\":{proc},\"attempt\":{attempt},\"requested_mhz\":{requested_mhz},\"actual_mhz\":{actual_mhz}"
                );
            }
            SchedEvent::NodeDeclaredDead {
                t_s,
                node,
                last_seen_s,
                charged_w,
            } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"node\":{node}");
                buf.push_str(",\"last_seen_s\":");
                jnum(buf, last_seen_s);
                buf.push_str(",\"charged_w\":");
                jnum(buf, charged_w);
            }
            SchedEvent::FailsafePin {
                t_s,
                proc,
                pinned_mhz,
                retries,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"proc\":{proc},\"pinned_mhz\":{pinned_mhz},\"retries\":{retries}"
                );
            }
            SchedEvent::TierRound {
                t_s,
                tier,
                ran,
                skipped,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"tier\":{tier},\"ran\":{ran},\"skipped\":{skipped}"
                );
            }
            SchedEvent::SubbudgetAssigned {
                t_s,
                tier,
                child,
                subbudget_w,
            } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"tier\":{tier},\"child\":{child}");
                buf.push_str(",\"subbudget_w\":");
                jnum(buf, subbudget_w);
            }
            SchedEvent::SubtreeCache {
                t_s,
                tier,
                hits,
                misses,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"tier\":{tier},\"hits\":{hits},\"misses\":{misses}"
                );
            }
            SchedEvent::WireFault {
                t_s,
                node,
                kind,
                injected,
                frame_len,
                codec,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"node\":{node},\"fault\":\"{}\",\"injected\":{injected},\"frame_len\":{frame_len},\"codec\":{codec}",
                    kind.as_str()
                );
            }
            SchedEvent::SnapshotWritten {
                t_s,
                epoch,
                budget_w,
                nodes,
            } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"epoch\":{epoch}");
                buf.push_str(",\"budget_w\":");
                jnum(buf, budget_w);
                let _ = write!(buf, ",\"nodes\":{nodes}");
            }
            SchedEvent::CoordinatorResumed {
                t_s,
                epoch,
                budget_w,
                restored_nodes,
                grace_s,
            } => {
                let _ = write!(buf, ",\"t_s\":{t_s},\"epoch\":{epoch}");
                buf.push_str(",\"budget_w\":");
                jnum(buf, budget_w);
                let _ = write!(
                    buf,
                    ",\"restored_nodes\":{restored_nodes},\"grace_s\":{grace_s}"
                );
            }
            SchedEvent::EpochFenced {
                t_s,
                node,
                peer_epoch,
                local_epoch,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"node\":{node},\"peer_epoch\":{peer_epoch},\"local_epoch\":{local_epoch}"
                );
            }
            SchedEvent::ResyncComplete {
                t_s,
                wall_s,
                fresh_nodes,
                charged_nodes,
            } => {
                let _ = write!(
                    buf,
                    ",\"t_s\":{t_s},\"wall_s\":{wall_s},\"fresh_nodes\":{fresh_nodes},\"charged_nodes\":{charged_nodes}"
                );
            }
        }
        buf.push('}');
    }

    /// The event as one JSON line (fresh allocation; tests/tools).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        self.write_jsonl(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<SchedEvent> {
        vec![
            SchedEvent::RoundStart {
                round: 1,
                t_s: 0.1,
                trigger: TriggerKind::Timer,
                budget_w: 294.0,
            },
            SchedEvent::Desired {
                round: 1,
                proc: 0,
                desired_mhz: 950,
                idle: false,
            },
            SchedEvent::Demotion {
                round: 1,
                proc: 2,
                from_mhz: 1000,
                to_mhz: 950,
                predicted_loss: 0.05,
                power_delta_w: -13.4,
            },
            SchedEvent::CacheOutcome {
                round: 1,
                full_hit: false,
                proc_hits: 3,
                proc_rebuilds: 1,
            },
            SchedEvent::RoundEnd {
                round: 1,
                feasible: true,
                demotions: 2,
                predicted_power_w: 280.0,
                budget_w: 294.0,
                headroom_w: 14.0,
                wall_ns: 12345,
            },
            SchedEvent::BudgetDrop {
                t_s: 0.5,
                from_w: 560.0,
                to_w: 294.0,
                deadline_s: 1.0,
            },
            SchedEvent::BudgetCompliance {
                t_s: 0.52,
                rounds: 1,
                wall_s: 0.02,
                within_deadline: true,
            },
            SchedEvent::BudgetViolation {
                t_s: 0.51,
                deadline_s: 1e-6,
            },
            SchedEvent::FeedbackClamp {
                t_s: 1.0,
                margin_w: 10.0,
                overshoot_w: 4.2,
            },
            SchedEvent::ClusterRound {
                round: 3,
                nodes: 4,
                procs: 16,
                budget_w: 1000.0,
                predicted_power_w: 950.0,
                feasible: true,
            },
            SchedEvent::DaemonRound {
                round: 7,
                procs: 4,
                wall_ns: 999,
            },
            SchedEvent::FaultInjected {
                t_s: 1.1,
                domain: FaultDomain::Actuation,
                target: 2,
            },
            SchedEvent::SampleQuarantined {
                t_s: 1.2,
                proc: 0,
                value: f64::NAN,
            },
            SchedEvent::ActuationRetry {
                t_s: 1.3,
                proc: 2,
                attempt: 1,
                requested_mhz: 600,
                actual_mhz: 1000,
            },
            SchedEvent::NodeDeclaredDead {
                t_s: 1.4,
                node: 3,
                last_seen_s: 0.9,
                charged_w: 412.0,
            },
            SchedEvent::FailsafePin {
                t_s: 1.5,
                proc: 2,
                pinned_mhz: 250,
                retries: 3,
            },
            SchedEvent::TierRound {
                t_s: 1.6,
                tier: 2,
                ran: 1,
                skipped: 31,
            },
            SchedEvent::SubbudgetAssigned {
                t_s: 1.6,
                tier: 3,
                child: 4,
                subbudget_w: f64::INFINITY,
            },
            SchedEvent::SubtreeCache {
                t_s: 1.6,
                tier: 1,
                hits: 300,
                misses: 12,
            },
            SchedEvent::WireFault {
                t_s: 1.7,
                node: u32::MAX,
                kind: WireFaultKind::Oversize,
                injected: false,
                frame_len: 2048,
                codec: 2,
            },
            SchedEvent::SnapshotWritten {
                t_s: 1.8,
                epoch: 2,
                budget_w: f64::INFINITY,
                nodes: 4,
            },
            SchedEvent::CoordinatorResumed {
                t_s: 0.0,
                epoch: 3,
                budget_w: 1200.0,
                restored_nodes: 4,
                grace_s: 1.0,
            },
            SchedEvent::EpochFenced {
                t_s: 1.9,
                node: 2,
                peer_epoch: 1,
                local_epoch: 3,
            },
            SchedEvent::ResyncComplete {
                t_s: 2.0,
                wall_s: 0.4,
                fresh_nodes: 3,
                charged_nodes: 1,
            },
        ]
    }

    #[test]
    fn every_variant_serializes_to_parseable_json_with_kind() {
        for ev in all_variants() {
            let line = ev.to_jsonl();
            let v: serde_json::Value = serde_json::from_str(&line)
                .unwrap_or_else(|e| panic!("bad JSON for {ev:?}: {e}\n{line}"));
            assert_eq!(
                v.get("kind").and_then(|k| k.as_str()),
                Some(ev.kind()),
                "{line}"
            );
        }
    }

    #[test]
    fn infinite_budget_encodes_as_null() {
        let ev = SchedEvent::RoundStart {
            round: 0,
            t_s: 0.0,
            trigger: TriggerKind::BudgetChange,
            budget_w: f64::INFINITY,
        };
        let line = ev.to_jsonl();
        assert!(line.contains("\"budget_w\":null"), "{line}");
        let _: serde_json::Value = serde_json::from_str(&line).unwrap();
    }

    #[test]
    fn writer_reuses_buffer_without_clearing() {
        let mut buf = String::new();
        SchedEvent::BudgetViolation {
            t_s: 1.0,
            deadline_s: 0.5,
        }
        .write_jsonl(&mut buf);
        let first = buf.len();
        buf.clear();
        SchedEvent::BudgetViolation {
            t_s: 1.0,
            deadline_s: 0.5,
        }
        .write_jsonl(&mut buf);
        assert_eq!(buf.len(), first);
    }
}
