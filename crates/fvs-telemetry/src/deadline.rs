//! Budget-deadline accounting: the paper's `ΔT` made measurable.
//!
//! When the global budget *drops* (a supply failed, an operator cut the
//! cap), the system has `ΔT` seconds to bring measured power under the
//! new budget before the survivors' overload tolerance expires. The
//! [`BudgetDeadlineTracker`] stamps each drop, counts scheduling rounds
//! and elapsed time until measured power first complies, and flags the
//! episodes that missed the deadline.
//!
//! The tracker is pure bookkeeping — a handful of scalar fields, no
//! allocation — and returns the [`SchedEvent`]s to publish, so the
//! caller decides where (if anywhere) they go.

use crate::event::SchedEvent;

/// Summary of the most recently closed compliance episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplianceRecord {
    /// Scheduling rounds between the drop and first compliance.
    pub rounds: u32,
    /// Elapsed time between the drop and first compliance (s).
    pub wall_s: f64,
    /// Whether compliance arrived within the deadline.
    pub within_deadline: bool,
}

#[derive(Debug, Clone, Copy)]
struct Episode {
    dropped_at_s: f64,
    budget_w: f64,
    rounds: u32,
    violation_emitted: bool,
}

/// A portable image of an open compliance episode, for crash-recovery
/// snapshots. The caller owns the clock: it exports `dropped_at_s` on
/// one timeline and restores it rebased onto another (a resumed
/// coordinator restores `now − age` so the `ΔT` clock keeps running
/// across the restart instead of resetting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenEpisode {
    /// When the budget dropped (s, exporter's clock).
    pub dropped_at_s: f64,
    /// The dropped budget awaiting compliance (W).
    pub budget_w: f64,
    /// Scheduling rounds counted so far.
    pub rounds: u32,
    /// Whether the one-per-episode violation event already fired.
    pub violation_emitted: bool,
}

/// Tracks rounds-to-compliance and wall-time-to-compliance for budget
/// drops against a configurable deadline `ΔT`.
#[derive(Debug, Clone)]
pub struct BudgetDeadlineTracker {
    deadline_s: f64,
    episode: Option<Episode>,
    compliances: u64,
    violations: u64,
    last: Option<ComplianceRecord>,
}

impl BudgetDeadlineTracker {
    /// Tracker with deadline `ΔT = deadline_s`.
    pub fn new(deadline_s: f64) -> Self {
        BudgetDeadlineTracker {
            deadline_s,
            episode: None,
            compliances: 0,
            violations: 0,
            last: None,
        }
    }

    /// The deadline in force (s).
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// Compliance episodes closed so far.
    pub fn compliances(&self) -> u64 {
        self.compliances
    }

    /// Deadline violations so far (episodes whose `ΔT` expired before
    /// measured power complied).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The most recently closed episode.
    pub fn last_compliance(&self) -> Option<ComplianceRecord> {
        self.last
    }

    /// Whether a drop is currently awaiting compliance.
    pub fn episode_open(&self) -> bool {
        self.episode.is_some()
    }

    /// The open episode as a portable image (crash-recovery snapshots),
    /// or `None` when no drop is awaiting compliance.
    pub fn export_episode(&self) -> Option<OpenEpisode> {
        self.episode.map(|ep| OpenEpisode {
            dropped_at_s: ep.dropped_at_s,
            budget_w: ep.budget_w,
            rounds: ep.rounds,
            violation_emitted: ep.violation_emitted,
        })
    }

    /// Reopen an episode exported by [`Self::export_episode`], replacing
    /// any open one. The caller must have rebased `dropped_at_s` onto
    /// its current clock — a resumed coordinator passes `now − age` so
    /// the time already burned before the crash still counts against
    /// `ΔT`.
    pub fn restore_episode(&mut self, ep: OpenEpisode) {
        self.episode = Some(Episode {
            dropped_at_s: ep.dropped_at_s,
            budget_w: ep.budget_w,
            rounds: ep.rounds,
            violation_emitted: ep.violation_emitted,
        });
    }

    /// Inform the tracker of a budget change at `now_s`. A *drop* opens
    /// a compliance episode (replacing any open one — the new, tighter
    /// deadline is what matters) and returns a [`SchedEvent::BudgetDrop`]
    /// to publish; a raise closes any open episode silently (the old
    /// target is moot).
    pub fn on_budget_change(&mut self, now_s: f64, from_w: f64, to_w: f64) -> Option<SchedEvent> {
        if to_w < from_w {
            self.episode = Some(Episode {
                dropped_at_s: now_s,
                budget_w: to_w,
                rounds: 0,
                violation_emitted: false,
            });
            Some(SchedEvent::BudgetDrop {
                t_s: now_s,
                from_w,
                to_w,
                deadline_s: self.deadline_s,
            })
        } else {
            self.episode = None;
            None
        }
    }

    /// Count one scheduling round toward the open episode (no-op
    /// otherwise).
    pub fn on_round(&mut self) {
        if let Some(ep) = &mut self.episode {
            ep.rounds += 1;
        }
    }

    /// Feed one measured-power sample. Returns at most one event:
    /// [`SchedEvent::BudgetViolation`] the first time the deadline
    /// expires with power still over the dropped budget, or
    /// [`SchedEvent::BudgetCompliance`] when measured power first comes
    /// under it (closing the episode).
    pub fn on_power_sample(&mut self, now_s: f64, measured_w: f64) -> Option<SchedEvent> {
        let ep = self.episode.as_mut()?;
        let wall_s = now_s - ep.dropped_at_s;
        if measured_w <= ep.budget_w {
            let within_deadline = wall_s <= self.deadline_s;
            let record = ComplianceRecord {
                rounds: ep.rounds,
                wall_s,
                within_deadline,
            };
            self.compliances += 1;
            if !within_deadline && !ep.violation_emitted {
                // The deadline was missed and no violation fired yet
                // (compliance and expiry landed on the same sample).
                self.violations += 1;
            }
            self.last = Some(record);
            let rounds = ep.rounds;
            self.episode = None;
            return Some(SchedEvent::BudgetCompliance {
                t_s: now_s,
                rounds,
                wall_s,
                within_deadline,
            });
        }
        if wall_s > self.deadline_s && !ep.violation_emitted {
            ep.violation_emitted = true;
            self.violations += 1;
            return Some(SchedEvent::BudgetViolation {
                t_s: now_s,
                deadline_s: self.deadline_s,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_then_prompt_compliance_is_within_deadline() {
        let mut t = BudgetDeadlineTracker::new(1.0);
        let ev = t.on_budget_change(0.5, 560.0, 294.0);
        assert!(matches!(ev, Some(SchedEvent::BudgetDrop { .. })));
        assert!(t.episode_open());
        t.on_round();
        // Still over at the next sample…
        assert_eq!(t.on_power_sample(0.51, 400.0), None);
        t.on_round();
        // …compliant one tick later.
        let ev = t.on_power_sample(0.52, 290.0).unwrap();
        match ev {
            SchedEvent::BudgetCompliance {
                rounds,
                wall_s,
                within_deadline,
                ..
            } => {
                assert_eq!(rounds, 2);
                assert!((wall_s - 0.02).abs() < 1e-12);
                assert!(within_deadline);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.compliances(), 1);
        assert_eq!(t.violations(), 0);
        assert!(!t.episode_open());
    }

    #[test]
    fn impossibly_small_deadline_counts_a_violation() {
        let mut t = BudgetDeadlineTracker::new(1e-6);
        t.on_budget_change(0.5, 560.0, 294.0);
        let ev = t.on_power_sample(0.51, 400.0).unwrap();
        assert!(matches!(ev, SchedEvent::BudgetViolation { .. }));
        assert_eq!(t.violations(), 1);
        // Only one violation per episode.
        assert_eq!(t.on_power_sample(0.52, 400.0), None);
        assert_eq!(t.violations(), 1);
        // Late compliance closes the episode as not-within-deadline.
        let ev = t.on_power_sample(0.53, 290.0).unwrap();
        assert!(matches!(
            ev,
            SchedEvent::BudgetCompliance {
                within_deadline: false,
                ..
            }
        ));
        assert_eq!(t.violations(), 1, "violation already counted");
        assert!(!t.last_compliance().unwrap().within_deadline);
    }

    /// A node dropping out mid-episode makes its *reading* vanish, not
    /// its power. The caller must feed the tracker the conservative
    /// estimate (live readings + the dead node's charge) — this pins the
    /// resulting semantics: the lost reading neither fakes compliance
    /// nor resets the episode clock, and compliance is judged against
    /// the conservative sum.
    #[test]
    fn mid_episode_node_dropout_does_not_fake_compliance() {
        let mut t = BudgetDeadlineTracker::new(1.0);
        // Rack budget 1120 W → 560 W; two 280 W-capable nodes drawing
        // 450 W each at the drop.
        t.on_budget_change(1.0, 1120.0, 560.0);
        t.on_round();
        assert_eq!(t.on_power_sample(1.01, 900.0), None);
        // Node 1 goes silent at t=1.2. Its raw reading is gone — naive
        // accounting would see only the survivor's 450 W and close the
        // episode under the 560 W budget. The coordinator charges the
        // dead node its last-known 450 W instead, so the conservative
        // sum stays at 900 W and the episode stays open.
        t.on_round();
        assert_eq!(t.on_power_sample(1.21, 450.0 + 450.0), None);
        assert!(t.episode_open(), "lost reading must not close the episode");
        // The survivor is rescheduled down to 100 W; conservative sum
        // 550 W complies, still inside ΔT — and the episode clock ran
        // from the drop, not from the dropout.
        t.on_round();
        let ev = t.on_power_sample(1.5, 100.0 + 450.0).unwrap();
        match ev {
            SchedEvent::BudgetCompliance {
                rounds,
                wall_s,
                within_deadline,
                ..
            } => {
                assert_eq!(rounds, 3);
                assert!((wall_s - 0.5).abs() < 1e-12, "clock runs from the drop");
                assert!(within_deadline);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn budget_raise_cancels_the_episode() {
        let mut t = BudgetDeadlineTracker::new(1.0);
        t.on_budget_change(0.5, 560.0, 294.0);
        assert!(t.episode_open());
        assert_eq!(t.on_budget_change(0.6, 294.0, 560.0), None);
        assert!(!t.episode_open());
        assert_eq!(t.on_power_sample(0.7, 400.0), None);
    }

    /// A coordinator crash mid-episode must not reset the `ΔT` clock:
    /// the restored episode carries the age already burned, so a
    /// post-restart compliance is judged against the *original* drop.
    #[test]
    fn exported_episode_survives_a_clock_rebase() {
        let mut t = BudgetDeadlineTracker::new(1.0);
        t.on_budget_change(5.0, 560.0, 294.0);
        t.on_round();
        assert_eq!(t.on_power_sample(5.3, 400.0), None);
        let ep = t.export_episode().expect("open episode");
        assert_eq!(ep.budget_w, 294.0);
        assert_eq!(ep.rounds, 1);
        assert!(!ep.violation_emitted);
        // "Crash": a fresh tracker whose clock restarts at zero. The
        // episode was 0.3 s old at the crash; restore it as now − age.
        let mut resumed = BudgetDeadlineTracker::new(1.0);
        assert_eq!(resumed.export_episode(), None);
        let age_s = 5.3 - ep.dropped_at_s;
        resumed.restore_episode(OpenEpisode {
            dropped_at_s: 0.0 - age_s,
            ..ep
        });
        assert!(resumed.episode_open());
        resumed.on_round();
        let ev = resumed.on_power_sample(0.2, 290.0).unwrap();
        match ev {
            SchedEvent::BudgetCompliance {
                rounds,
                wall_s,
                within_deadline,
                ..
            } => {
                assert_eq!(rounds, 2, "pre-crash rounds still count");
                assert!((wall_s - 0.5).abs() < 1e-12, "clock runs from the drop");
                assert!(within_deadline);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simultaneous_expiry_and_compliance_counts_both() {
        let mut t = BudgetDeadlineTracker::new(0.005);
        t.on_budget_change(0.5, 560.0, 294.0);
        // First sample after the drop is already compliant but late.
        let ev = t.on_power_sample(0.51, 290.0).unwrap();
        assert!(matches!(
            ev,
            SchedEvent::BudgetCompliance {
                within_deadline: false,
                ..
            }
        ));
        assert_eq!(t.compliances(), 1);
        assert_eq!(t.violations(), 1);
    }
}
