//! Lock-light metrics: counters, gauges and fixed-bucket histograms.
//!
//! Updates are plain atomic operations — no locks, no allocation — so
//! instruments can sit directly on the scheduler's hot path. The
//! registry itself takes a mutex only on the *cold* path (registration
//! and snapshotting); handed-out instruments are `Arc`s the caller keeps
//! and updates lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram.
///
/// Bucket `i` counts observations `x <= bounds[i]`; one implicit
/// overflow bucket counts the rest. Bounds are fixed at construction so
/// `observe` is a bounded scan plus two atomic adds — no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, x: f64) {
        let i = self
            .bounds
            .iter()
            .position(|b| x <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation: CAS loop over the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    instrument: Instrument,
}

/// A point-in-time reading of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram `(count, sum)`.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// A named point-in-time reading.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Full (prefixed) metric name.
    pub name: String,
    /// The reading.
    pub value: MetricValue,
}

/// A registry of named instruments.
///
/// Cloning is cheap (`Arc`); clones share the same instruments.
/// Registration is idempotent by `(name, kind)`: asking twice for the
/// same counter returns the same `Arc`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// A view that prefixes every registered name with `prefix.`.
    pub fn scoped(&self, prefix: &str) -> ScopedMetrics {
        ScopedMetrics {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Counter(c) = &e.instrument {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Gauge(g) = &e.instrument {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or fetch) the histogram `name`. The bounds of the first
    /// registration win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Histogram(h) = &e.instrument {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Read every instrument, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect()
    }

    /// Render every instrument as `name value` lines (histograms as
    /// `name_count` / `name_sum`).
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in self.snapshot() {
            match s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", s.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", s.name);
                }
                MetricValue::Histogram { count, sum } => {
                    let _ = writeln!(out, "{}_count {count}", s.name);
                    let _ = writeln!(out, "{}_sum {sum}", s.name);
                }
            }
        }
        out
    }
}

/// A prefixed view over a [`MetricsRegistry`] (per-scheduler scoping).
#[derive(Debug, Clone)]
pub struct ScopedMetrics {
    registry: MetricsRegistry,
    prefix: String,
}

impl ScopedMetrics {
    /// Register (or fetch) the counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&format!("{}.{name}", self.prefix))
    }

    /// Register (or fetch) the gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&format!("{}.{name}", self.prefix))
    }

    /// Register (or fetch) the histogram `prefix.name`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.registry
            .histogram(&format!("{}.{name}", self.prefix), bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_and_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("rounds");
        let b = r.counter("rounds");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("headroom");
        g.set(12.5);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert!((h.mean() - 105.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_names_are_prefixed() {
        let r = MetricsRegistry::new();
        let s = r.scoped("sched");
        s.counter("rounds").inc();
        let snap = r.snapshot();
        assert_eq!(snap[0].name, "sched.rounds");
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        let h = r.histogram("h", &[0.5]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 4000.0).abs() < 1e-9);
    }
}
