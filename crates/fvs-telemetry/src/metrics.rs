//! Lock-light metrics: counters, gauges and fixed-bucket histograms.
//!
//! Updates are plain atomic operations — no locks, no allocation — so
//! instruments can sit directly on the scheduler's hot path. The
//! registry itself takes a mutex only on the *cold* path (registration
//! and snapshotting); handed-out instruments are `Arc`s the caller keeps
//! and updates lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram.
///
/// Bucket `i` counts observations `x <= bounds[i]`; one implicit
/// overflow bucket counts the rest. Bounds are fixed at construction so
/// `observe` is a bounded scan plus two atomic adds — no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Log-spaced upper bounds from `lo` to at least `hi` with
    /// `per_decade` buckets per decade (HDR-style geometric grid). The
    /// relative quantile-estimation error is bounded by the bucket
    /// ratio: `10^(1/per_decade) - 1` (≈ 78% at 4/decade, ≈ 33% at
    /// 8/decade).
    pub fn log_bounds(lo: f64, hi: f64, per_decade: u32) -> Vec<f64> {
        assert!(lo > 0.0 && hi > lo && per_decade > 0, "bad log bounds");
        let ratio = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = Vec::new();
        let mut b = lo;
        while b < hi * (1.0 + 1e-12) {
            bounds.push(b);
            b *= ratio;
        }
        bounds.push(b);
        bounds
    }

    /// The default latency grid: 1 µs … 10 s, 4 buckets per decade
    /// (29 buckets + overflow). Covers everything from a cached
    /// single-machine pass to a cross-rack fan-out round.
    pub fn latency_bounds() -> Vec<f64> {
        Self::log_bounds(1e-6, 10.0, 4)
    }

    /// Histogram on the default latency grid ([`Self::latency_bounds`]).
    pub fn latency() -> Self {
        Self::new(&Self::latency_bounds())
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, x: f64) {
        // Binary search: bucket i counts x <= bounds[i]; NaN goes to
        // the overflow bucket (matches the old linear-scan behavior).
        let i = if x.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|b| *b < x)
        };
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation: CAS loop over the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket holding the target rank. Returns `0.0` when
    /// empty; ranks landing in the overflow bucket clamp to the last
    /// bound. On a log grid the relative error is bounded by the
    /// bucket ratio (see [`Self::log_bounds`]).
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        quantile_from_buckets(&self.bounds, &counts, q)
    }
}

/// Quantile estimation over exported bucket counts — the same math
/// [`Histogram::quantile`] uses, callable on a [`MetricValue`] snapshot.
pub fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // Target rank in 1..=total.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            if i >= bounds.len() {
                // Overflow bucket: no upper edge to interpolate to.
                return bounds.last().copied().unwrap_or(f64::INFINITY);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let upper = bounds[i];
            let frac = (rank - seen) as f64 / c as f64;
            if frac >= 1.0 {
                return upper;
            }
            return lower + (upper - lower) * frac;
        }
        seen += c;
    }
    bounds.last().copied().unwrap_or(f64::INFINITY)
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    instrument: Instrument,
}

/// A point-in-time reading of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram reading: totals plus the full bucket layout, so a
    /// snapshot can be rendered (and quantile-estimated) without
    /// holding the instrument.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Configured upper bounds.
        bounds: Vec<f64>,
        /// Raw per-bucket counts (`bounds.len() + 1`; last = overflow).
        buckets: Vec<u64>,
    },
}

/// A named point-in-time reading.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Full (prefixed) metric name.
    pub name: String,
    /// The reading.
    pub value: MetricValue,
}

/// A registry of named instruments.
///
/// Cloning is cheap (`Arc`); clones share the same instruments.
/// Registration is idempotent by `(name, kind)`: asking twice for the
/// same counter returns the same `Arc`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// A view that prefixes every registered name with `prefix.`.
    pub fn scoped(&self, prefix: &str) -> ScopedMetrics {
        ScopedMetrics {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Counter(c) = &e.instrument {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Gauge(g) = &e.instrument {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or fetch) the histogram `name`. The bounds of the first
    /// registration win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Histogram(h) = &e.instrument {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        entries.push(Entry {
            name: name.to_string(),
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Read every instrument, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                    },
                },
            })
            .collect()
    }

    /// Render every instrument in Prometheus-style text exposition:
    /// counters and gauges as `name value`; histograms as cumulative
    /// `name_bucket{le="..."}` lines (ending with `le="+Inf"`),
    /// `name_count`, `name_sum`, and `name{quantile="..."}` estimates
    /// for p50/p90/p99/p999.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in self.snapshot() {
            match s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", s.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", s.name);
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                } => {
                    let mut cumulative = 0u64;
                    for (b, c) in bounds.iter().zip(buckets.iter()) {
                        cumulative += c;
                        let _ = writeln!(out, "{}_bucket{{le=\"{b:e}\"}} {cumulative}", s.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {count}", s.name);
                    let _ = writeln!(out, "{}_count {count}", s.name);
                    let _ = writeln!(out, "{}_sum {sum}", s.name);
                    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
                    {
                        let v = quantile_from_buckets(&bounds, &buckets, q);
                        let _ = writeln!(out, "{}{{quantile=\"{label}\"}} {v:e}", s.name);
                    }
                }
            }
        }
        out
    }
}

/// A prefixed view over a [`MetricsRegistry`] (per-scheduler scoping).
#[derive(Debug, Clone)]
pub struct ScopedMetrics {
    registry: MetricsRegistry,
    prefix: String,
}

impl ScopedMetrics {
    /// Register (or fetch) the counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&format!("{}.{name}", self.prefix))
    }

    /// Register (or fetch) the gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&format!("{}.{name}", self.prefix))
    }

    /// Register (or fetch) the histogram `prefix.name`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.registry
            .histogram(&format!("{}.{name}", self.prefix), bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_and_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("rounds");
        let b = r.counter("rounds");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("headroom");
        g.set(12.5);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert!((h.mean() - 105.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_bounds_cover_range_geometrically() {
        let b = Histogram::log_bounds(1e-6, 10.0, 4);
        assert!(b.first().copied().unwrap() <= 1e-6 + 1e-18);
        assert!(b.last().copied().unwrap() >= 10.0);
        for w in b.windows(2) {
            let ratio = w[1] / w[0];
            assert!((ratio - 10f64.powf(0.25)).abs() < 1e-9, "ratio {ratio}");
        }
        assert_eq!(Histogram::latency_bounds().len(), 30);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // 100 observations uniformly in (0, 1]: everything in bucket 0.
        for i in 1..=100 {
            h.observe(i as f64 / 100.0);
        }
        // p50 of a full first bucket interpolates to ~0.5.
        assert!((h.quantile(0.5) - 0.5).abs() < 0.02, "{}", h.quantile(0.5));
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-9);
        // Add a heavy tail: 10 observations in (4, 8].
        for _ in 0..10 {
            h.observe(6.0);
        }
        let p99 = h.quantile(0.99);
        assert!((4.0..=8.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.observe(100.0); // overflow bucket
        assert_eq!(h.quantile(0.99), 2.0, "overflow clamps to last bound");
        h.observe(f64::NAN); // NaN lands in overflow, count still moves
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn observe_binary_search_matches_bucket_semantics() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(1.0); // boundary: x <= bounds[0]
        h.observe(10.0);
        h.observe(10.1);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn scoped_names_are_prefixed() {
        let r = MetricsRegistry::new();
        let s = r.scoped("sched");
        s.counter("rounds").inc();
        let snap = r.snapshot();
        assert_eq!(snap[0].name, "sched.rounds");
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        let h = r.histogram("h", &[0.5]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 4000.0).abs() < 1e-9);
    }
}
