//! The [`Telemetry`] handle and its pluggable sinks.
//!
//! A `Telemetry` is either **disabled** — a `None` inner, so `emit` is a
//! branch and nothing else (the fast path the counting-allocator proofs
//! rely on) — or carries one sink:
//!
//! - **Memory**: a preallocated ring buffer of [`SchedEvent`]s. Events
//!   are `Copy`, the buffer never grows, so a steady-state `emit`
//!   performs zero heap allocations; when full, the oldest events are
//!   overwritten (and counted as dropped).
//! - **Jsonl**: buffered line-per-event JSON to a file, formatting into
//!   a reused `String`.
//! - **Summary**: per-kind counts and round aggregates, rendered as a
//!   short human-readable report.

use crate::event::SchedEvent;
use crate::metrics::MetricsRegistry;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Ring buffer of events: fixed capacity, overwrite-oldest.
#[derive(Debug)]
struct Ring {
    buf: Vec<SchedEvent>,
    head: usize,
    cap: usize,
}

impl Ring {
    fn with_capacity(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap.max(1)),
            head: 0,
            cap: cap.max(1),
        }
    }

    #[inline]
    fn push(&mut self, ev: SchedEvent) -> bool {
        if self.buf.len() < self.cap {
            // Within the preallocated capacity: no growth, no allocation.
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    fn events(&self) -> Vec<SchedEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Running aggregates of the summary sink.
#[derive(Debug, Default, Clone)]
struct SummaryState {
    rounds: u64,
    demotions: u64,
    full_hits: u64,
    budget_drops: u64,
    compliances: u64,
    violations: u64,
    clamps: u64,
    max_wall_ns: u64,
    total_wall_ns: u64,
    last_headroom_w: f64,
    infeasible_rounds: u64,
    faults_injected: u64,
    quarantined: u64,
    actuation_retries: u64,
    nodes_declared_dead: u64,
    failsafe_pins: u64,
}

impl SummaryState {
    fn record(&mut self, ev: &SchedEvent) {
        match *ev {
            SchedEvent::RoundEnd {
                feasible,
                demotions,
                headroom_w,
                wall_ns,
                ..
            } => {
                self.rounds += 1;
                self.demotions += u64::from(demotions);
                self.max_wall_ns = self.max_wall_ns.max(wall_ns);
                self.total_wall_ns += wall_ns;
                self.last_headroom_w = headroom_w;
                if !feasible {
                    self.infeasible_rounds += 1;
                }
            }
            SchedEvent::CacheOutcome { full_hit: true, .. } => self.full_hits += 1,
            SchedEvent::BudgetDrop { .. } => self.budget_drops += 1,
            SchedEvent::BudgetCompliance { .. } => self.compliances += 1,
            SchedEvent::BudgetViolation { .. } => self.violations += 1,
            SchedEvent::FeedbackClamp { .. } => self.clamps += 1,
            SchedEvent::FaultInjected { .. } => self.faults_injected += 1,
            SchedEvent::SampleQuarantined { .. } => self.quarantined += 1,
            SchedEvent::ActuationRetry { .. } => self.actuation_retries += 1,
            SchedEvent::NodeDeclaredDead { .. } => self.nodes_declared_dead += 1,
            SchedEvent::FailsafePin { .. } => self.failsafe_pins += 1,
            _ => {}
        }
    }

    fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "telemetry summary:");
        let _ = writeln!(
            s,
            "  rounds: {} ({} full cache hits, {} infeasible)",
            self.rounds, self.full_hits, self.infeasible_rounds
        );
        let _ = writeln!(s, "  demotions: {}", self.demotions);
        let avg_ns = self.total_wall_ns.checked_div(self.rounds).unwrap_or(0);
        let _ = writeln!(
            s,
            "  round wall time: avg {avg_ns} ns, max {} ns",
            self.max_wall_ns
        );
        let _ = writeln!(
            s,
            "  budget: {} drops, {} compliances, {} violations, last headroom {:.1} W",
            self.budget_drops, self.compliances, self.violations, self.last_headroom_w
        );
        let _ = writeln!(s, "  feedback clamps: {}", self.clamps);
        if self.faults_injected + self.quarantined + self.actuation_retries + self.failsafe_pins > 0
            || self.nodes_declared_dead > 0
        {
            let _ = writeln!(
                s,
                "  faults: {} injected, {} quarantined, {} retries, {} failsafe pins, {} dead nodes",
                self.faults_injected,
                self.quarantined,
                self.actuation_retries,
                self.failsafe_pins,
                self.nodes_declared_dead
            );
        }
        s
    }
}

#[derive(Debug)]
enum Sink {
    Memory(Ring),
    Jsonl {
        out: BufWriter<File>,
        line: String,
    },
    Summary(SummaryState),
    /// Tee: forward every event to each child handle (events are
    /// `Copy`). Lets one pipeline feed e.g. a JSONL file for offline
    /// analysis *and* a memory ring the `/journal` endpoint tails.
    Fanout(Vec<Telemetry>),
}

#[derive(Debug)]
struct TelemetryInner {
    sink: Mutex<Sink>,
    registry: MetricsRegistry,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

/// A cloneable handle to one telemetry pipeline (journal sink + metrics
/// registry), or the disabled no-op.
///
/// The default (and [`Telemetry::disabled`]) handle carries nothing:
/// `emit` tests an `Option` and returns — zero work, zero allocation —
/// so instrumented code paths keep their zero-alloc steady-state
/// guarantees without any feature gating.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    fn with_sink(sink: Sink) -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                sink: Mutex::new(sink),
                registry: MetricsRegistry::new(),
                emitted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// In-memory capture with a preallocated ring of `capacity` events.
    /// Pushing into the ring never allocates; once full, the oldest
    /// events are overwritten (counted by [`events_dropped`]).
    ///
    /// [`events_dropped`]: Telemetry::events_dropped
    pub fn memory(capacity: usize) -> Self {
        Self::with_sink(Sink::Memory(Ring::with_capacity(capacity)))
    }

    /// Line-per-event JSON written (buffered) to `path`.
    pub fn jsonl<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::with_sink(Sink::Jsonl {
            out: BufWriter::new(file),
            line: String::with_capacity(256),
        }))
    }

    /// Human-readable aggregate summary (render with
    /// [`summary_text`](Telemetry::summary_text)).
    pub fn summary() -> Self {
        Self::with_sink(Sink::Summary(SummaryState::default()))
    }

    /// Tee every event to each of `children` (disabled children are
    /// skipped for free; events are `Copy`). The fanout handle carries
    /// its own metrics registry; [`events`](Telemetry::events) and
    /// [`summary_text`](Telemetry::summary_text) delegate to the first
    /// child that can answer.
    pub fn fanout(children: Vec<Telemetry>) -> Self {
        Self::with_sink(Sink::Fanout(children))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry backing this handle (None when disabled).
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Record one event. No-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, ev: SchedEvent) {
        let Some(inner) = &self.inner else { return };
        inner.emitted.fetch_add(1, Ordering::Relaxed);
        let mut sink = inner.sink.lock().expect("telemetry sink poisoned");
        match &mut *sink {
            Sink::Memory(ring) => {
                if ring.push(ev) {
                    inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Sink::Jsonl { out, line } => {
                line.clear();
                ev.write_jsonl(line);
                line.push('\n');
                if out.write_all(line.as_bytes()).is_err() {
                    inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Sink::Summary(state) => state.record(&ev),
            Sink::Fanout(children) => {
                for child in children.iter() {
                    child.emit(ev);
                }
            }
        }
    }

    /// Events emitted through this handle.
    pub fn events_emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.emitted.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Events lost (ring overwrites, write errors).
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of the captured events, oldest first (memory sink only;
    /// empty otherwise).
    pub fn events(&self) -> Vec<SchedEvent> {
        match &self.inner {
            Some(inner) => match &*inner.sink.lock().expect("telemetry sink poisoned") {
                Sink::Memory(ring) => ring.events(),
                Sink::Fanout(children) => children
                    .iter()
                    .map(|c| c.events())
                    .find(|e| !e.is_empty())
                    .unwrap_or_default(),
                _ => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// The rendered summary (summary sink only).
    pub fn summary_text(&self) -> Option<String> {
        match &self.inner {
            Some(inner) => match &*inner.sink.lock().expect("telemetry sink poisoned") {
                Sink::Summary(state) => Some(state.render()),
                Sink::Fanout(children) => children.iter().find_map(|c| c.summary_text()),
                _ => None,
            },
            None => None,
        }
    }

    /// Flush buffered output (JSONL sinks, through fanouts; no-op
    /// otherwise).
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            match &mut *inner.sink.lock().expect("telemetry sink poisoned") {
                Sink::Jsonl { out, .. } => out.flush()?,
                Sink::Fanout(children) => {
                    for child in children.iter() {
                        child.flush()?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TriggerKind;

    fn round_end(round: u64) -> SchedEvent {
        SchedEvent::RoundEnd {
            round,
            feasible: true,
            demotions: 1,
            predicted_power_w: 280.0,
            budget_w: 294.0,
            headroom_w: 14.0,
            wall_ns: 1000,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.emit(round_end(0));
        assert!(!t.enabled());
        assert_eq!(t.events_emitted(), 0);
        assert!(t.events().is_empty());
        assert!(t.registry().is_none());
    }

    #[test]
    fn memory_ring_preserves_order_and_overwrites_oldest() {
        let t = Telemetry::memory(3);
        for i in 0..5 {
            t.emit(round_end(i));
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        let rounds: Vec<u64> = events
            .iter()
            .map(|e| match e {
                SchedEvent::RoundEnd { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4]);
        assert_eq!(t.events_emitted(), 5);
        assert_eq!(t.events_dropped(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let path = std::env::temp_dir().join("fvsst-telemetry-sink-test.jsonl");
        let t = Telemetry::jsonl(&path).unwrap();
        t.emit(SchedEvent::RoundStart {
            round: 0,
            t_s: 0.0,
            trigger: TriggerKind::Timer,
            budget_w: 294.0,
        });
        t.emit(round_end(0));
        t.flush().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert!(v.get("kind").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_sink_aggregates() {
        let t = Telemetry::summary();
        t.emit(round_end(0));
        t.emit(round_end(1));
        t.emit(SchedEvent::BudgetViolation {
            t_s: 1.0,
            deadline_s: 0.5,
        });
        let text = t.summary_text().unwrap();
        assert!(text.contains("rounds: 2"), "{text}");
        assert!(text.contains("1 violations"), "{text}");
    }

    #[test]
    fn fanout_tees_to_every_child() {
        let ring = Telemetry::memory(8);
        let summary = Telemetry::summary();
        let t = Telemetry::fanout(vec![ring.clone(), summary.clone(), Telemetry::disabled()]);
        t.emit(round_end(0));
        t.emit(round_end(1));
        assert_eq!(ring.events().len(), 2);
        assert!(summary.summary_text().unwrap().contains("rounds: 2"));
        // The fanout handle answers through its children.
        assert_eq!(t.events().len(), 2);
        assert!(t.summary_text().unwrap().contains("rounds: 2"));
        t.flush().unwrap();
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::memory(8);
        let t2 = t.clone();
        t2.emit(round_end(0));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events_emitted(), 1);
    }
}
