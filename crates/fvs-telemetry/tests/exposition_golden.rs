//! Golden-file test for the Prometheus-style text exposition format.
//!
//! The `/metrics` endpoint and the coordinator status line both consume
//! `MetricsRegistry::render_text`; this pins the exact wire format —
//! cumulative `_bucket{le="..."}` lines, `_count`/`_sum`, and
//! `{quantile="..."}` estimates — against `tests/golden/exposition.txt`.
//! Observations are dyadic (exact in binary) so the rendered sum is
//! bit-stable across platforms.

use fvs_telemetry::MetricsRegistry;

#[test]
fn render_text_matches_golden_exposition() {
    let r = MetricsRegistry::new();
    let rounds = r.counter("sched.rounds");
    rounds.add(3);
    r.gauge("cluster.headroom_w").set(12.5);
    let h = r.histogram("sched.round_wall_s", &[1e-3, 1e-2, 1e-1]);
    // One per bucket edge case: first bucket, two mid, one third, one
    // overflow. All values are powers of two — exactly representable.
    h.observe(0.0009765625); // 2^-10, bucket le=1e-3
    h.observe(0.0078125); // 2^-7, bucket le=1e-2
    h.observe(0.0078125);
    h.observe(0.0625); // 2^-4, bucket le=1e-1
    h.observe(2.0); // overflow

    let got = r.render_text();
    let want = include_str!("golden/exposition.txt");
    assert_eq!(got, want, "exposition drifted from golden file:\n{got}");
}
