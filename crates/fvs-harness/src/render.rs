//! Plain-text table and series rendering for experiment output.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple aligned-column text table.
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TableBuilder {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the header row.
    pub fn header<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn row<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                if i + 1 < row.len() {
                    out.extend(std::iter::repeat_n(' ', pad + 2));
                }
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            fmt_row(&self.header, &mut out);
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Render as CSV (no title).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                self.header
                    .iter()
                    .map(|c| esc(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A named (x, y) series — one line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label.
    pub name: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at the largest x ≤ `x`, if any.
    pub fn value_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .rfind(|(px, _)| *px <= x)
            .map(|(_, y)| *y)
    }

    /// Render several series side by side keyed on x (series must share
    /// x grids; missing cells print empty).
    pub fn render_table(title: &str, series: &[Series]) -> String {
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut t = TableBuilder::new(title)
            .header(std::iter::once("x".to_string()).chain(series.iter().map(|s| s.name.clone())));
        for x in xs {
            let mut row = vec![format!("{x:.4}")];
            for s in series {
                let cell = s
                    .points
                    .iter()
                    .find(|(px, _)| (*px - x).abs() < 1e-12)
                    .map(|(_, y)| format!("{y:.4}"))
                    .unwrap_or_default();
                row.push(cell);
            }
            t.row(row);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TableBuilder::new("demo").header(["col", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header, rule, 2 rows, title line.
        assert_eq!(lines.len(), 5);
        // Columns align: "value" starts at the same offset in all rows.
        let off = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(off));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TableBuilder::new("x").header(["a", "b"]);
        t.row(["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn series_lookup_and_render() {
        let mut s = Series::new("perf");
        s.push(250.0, 0.5);
        s.push(1000.0, 1.0);
        assert_eq!(s.value_at(500.0), Some(0.5));
        assert_eq!(s.value_at(1000.0), Some(1.0));
        assert_eq!(s.value_at(100.0), None);
        let out = Series::render_table("fig", &[s]);
        assert!(out.contains("perf"));
        assert!(out.contains("250.0000"));
    }
}
