//! `fvsst-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! fvsst-exp <experiment>... [--fast] [--seed N] [--json DIR] [--telemetry DIR] [--jobs N] [--faults PLAN]
//! fvsst-exp all [--fast]
//! fvsst-exp list
//! ```
//!
//! Experiments run in parallel (one rayon task each; `--jobs N` caps the
//! worker count, `--jobs 1` forces sequential execution). Reports are
//! printed in the order the experiments were requested, regardless of
//! completion order, each with its wall time; a total harness wall time
//! closes the run. `--json DIR` additionally writes
//! `<DIR>/<experiment>.json` with the structured result, and
//! `--telemetry DIR` writes `<DIR>/<experiment>.telemetry.jsonl`
//! scheduling traces for the instrumented experiments (fig9, cluster,
//! chaos). `--faults PLAN` sets the fault plan for the chaos experiment
//! (`none`, `chaos`, or `counters=R,actuation=R,loss=R,dup=R,late=R:S,`
//! `drop=F@T,node=I@DOWN:UP`); injectors are seeded from `--seed`, so a
//! chaos run replays from its command line. Every artifact written is
//! listed on stdout when the run succeeds.
//!
//! Experiments: table1 fig1 table2 fig4 fig5 fig6 fig7 table3 fig8 fig9
//! example5 ablation predictors migration cluster chaos.

use fvs_harness::experiments::{run_by_name, ALL_EXPERIMENTS};
use fvs_harness::runs::RunSettings;
use fvs_telemetry::RoundTimer;
use rayon::prelude::*;
use std::process::ExitCode;

enum Outcome {
    /// Rendered report + wall seconds.
    Report(String, f64),
    Unknown,
    Empty,
    JsonError(String),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = RunSettings::full();
    let mut targets: Vec<String> = Vec::new();
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => settings.fast = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(dir.into()),
                    None => {
                        eprintln!("--json requires a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => settings.telemetry_dir = Some(dir.clone()),
                    None => {
                        eprintln!("--telemetry requires a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(seed) => settings.seed = seed,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--faults" => {
                i += 1;
                match args.get(i) {
                    // Validate eagerly so a typo fails the run instead of
                    // silently degrading to the chaos preset mid-flight.
                    Some(spec) => match fvs_faults::FaultPlan::parse(spec) {
                        Ok(_) => settings.faults = Some(spec.clone()),
                        Err(e) => {
                            eprintln!("bad --faults spec: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!("--faults requires a plan spec (try 'chaos' or 'none')");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs requires an integer >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" => {
                for e in ALL_EXPERIMENTS {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => targets.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!(
            "usage: fvsst-exp <experiment>... [--fast] [--seed N] [--json DIR] [--telemetry DIR] [--jobs N] [--faults PLAN]\n       fvsst-exp all | list\nexperiments: {}",
            ALL_EXPERIMENTS.join(" ")
        );
        return ExitCode::FAILURE;
    }
    if let Some(n) = jobs {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global();
    }
    // Create the output directories once, up front, instead of racing
    // per-experiment create_dir_all calls.
    for dir in json_dir
        .iter()
        .cloned()
        .chain(settings.telemetry_dir.iter().map(std::path::PathBuf::from))
    {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let total_timer = RoundTimer::start();
    // One rayon task per experiment; collect preserves request order, so
    // the rendered output is deterministic however the tasks interleave.
    let outcomes: Vec<Outcome> = targets
        .par_iter()
        .map(|t| {
            let timer = RoundTimer::start();
            let outcome = match &json_dir {
                Some(dir) => match fvs_harness::export::run_and_write_json(t, &settings, dir) {
                    Ok(rendered) => Some(rendered),
                    // An unknown id is a validation error; everything
                    // else (serialization, filesystem) is a JSON failure.
                    Err(e) if e.category() == "validation" => None,
                    Err(e) => return Outcome::JsonError(e.to_string()),
                },
                None => run_by_name(t, &settings),
            };
            match outcome {
                Some(report) if report.trim().is_empty() => Outcome::Empty,
                Some(report) => Outcome::Report(report, timer.elapsed_s()),
                None => Outcome::Unknown,
            }
        })
        .collect();
    let total_s = total_timer.elapsed_s();

    let mut failed = false;
    for (t, outcome) in targets.iter().zip(&outcomes) {
        match outcome {
            Outcome::Report(report, secs) => {
                println!("{report}");
                println!("[{t}: {secs:.2}s]");
                // List the artifacts this experiment actually produced,
                // so scripted callers don't have to reconstruct paths.
                if let Some(dir) = &json_dir {
                    let json = dir.join(format!("{t}.json"));
                    if json.is_file() {
                        println!("[{t}: wrote {}]", json.display());
                    }
                }
                if let Some(trace) = settings.telemetry_path(t) {
                    if trace.is_file() {
                        println!("[{t}: wrote {}]", trace.display());
                    }
                }
                println!();
            }
            Outcome::Unknown => {
                eprintln!("unknown experiment '{t}' (try: fvsst-exp list)");
                failed = true;
            }
            Outcome::Empty => {
                eprintln!("experiment '{t}' produced an empty report");
                failed = true;
            }
            Outcome::JsonError(e) => {
                eprintln!("failed to write JSON for '{t}': {e}");
                failed = true;
            }
        }
    }
    println!("[{} experiment(s) in {total_s:.2}s wall]", targets.len());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
