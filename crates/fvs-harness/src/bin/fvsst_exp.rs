//! `fvsst-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! fvsst-exp <experiment>... [--fast] [--seed N] [--json DIR]
//! fvsst-exp all [--fast]
//! fvsst-exp list
//! ```
//!
//! `--json DIR` additionally writes `<DIR>/<experiment>.json` with the
//! structured result.
//!
//! Experiments: table1 fig1 table2 fig4 fig5 fig6 fig7 table3 fig8 fig9
//! example5 ablation.

use fvs_harness::experiments::{run_by_name, ALL_EXPERIMENTS};
use fvs_harness::runs::RunSettings;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = RunSettings::full();
    let mut targets: Vec<String> = Vec::new();
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => settings.fast = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(dir.into()),
                    None => {
                        eprintln!("--json requires a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(seed) => settings.seed = seed,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" => {
                for e in ALL_EXPERIMENTS {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => targets.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!(
            "usage: fvsst-exp <experiment>... [--fast] [--seed N]\n       fvsst-exp all | list\nexperiments: {}",
            ALL_EXPERIMENTS.join(" ")
        );
        return ExitCode::FAILURE;
    }
    for t in targets {
        let outcome = match &json_dir {
            Some(dir) => match fvs_harness::export::run_and_write_json(&t, &settings, dir) {
                Ok(rendered) => rendered,
                Err(e) => {
                    eprintln!("failed to write JSON for '{t}': {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => run_by_name(&t, &settings),
        };
        match outcome {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{t}' (try: fvsst-exp list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
