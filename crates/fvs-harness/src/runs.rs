//! Shared run helpers used by several experiments.

use fvs_model::FreqMhz;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::{MachineBuilder, ResidencyHistogram};
use fvs_telemetry::Telemetry;
use fvs_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Global experiment settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSettings {
    /// Shrink instruction budgets for quick runs (benches, CI smoke).
    pub fast: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Directory for per-experiment telemetry traces
    /// (`<dir>/<experiment>.telemetry.jsonl`); `None` disables telemetry
    /// entirely. Stored as a `String` because the vendored serde has no
    /// `PathBuf` impl.
    pub telemetry_dir: Option<String>,
    /// Fault-plan spec for the chaos experiment (`--faults`, the
    /// [`fvs_faults::FaultPlan::parse`] grammar); `None` uses the chaos
    /// preset.
    pub faults: Option<String>,
}

impl RunSettings {
    /// Full-fidelity settings.
    pub fn full() -> Self {
        RunSettings {
            fast: false,
            seed: 0xF05,
            telemetry_dir: None,
            faults: None,
        }
    }

    /// Reduced-work settings for benches and smoke tests.
    pub fn fast() -> Self {
        RunSettings {
            fast: true,
            seed: 0xF05,
            telemetry_dir: None,
            faults: None,
        }
    }

    /// The fault plan for chaos runs: parsed from `--faults` when given,
    /// the chaos preset otherwise. Injectors built from it must be
    /// seeded with [`seed`](RunSettings::seed) so a chaos run replays
    /// from its command line.
    pub fn fault_plan(&self) -> Result<fvs_faults::FaultPlan, fvs_faults::PlanParseError> {
        match &self.faults {
            Some(spec) => fvs_faults::FaultPlan::parse(spec),
            None => Ok(fvs_faults::FaultPlan::chaos()),
        }
    }

    /// Scale an instruction budget by the fidelity mode.
    pub fn instructions(&self, full: f64) -> f64 {
        if self.fast {
            full / 10.0
        } else {
            full
        }
    }

    /// Where `experiment`'s telemetry trace lands, if enabled.
    pub fn telemetry_path(&self, experiment: &str) -> Option<std::path::PathBuf> {
        self.telemetry_dir
            .as_ref()
            .map(|d| std::path::Path::new(d).join(format!("{experiment}.telemetry.jsonl")))
    }

    /// A telemetry handle for `experiment`: a JSONL sink under
    /// `telemetry_dir` when tracing is on, the zero-cost disabled handle
    /// otherwise. A sink that cannot be opened degrades to disabled with
    /// a note on stderr — a missing trace should not fail the science.
    pub fn telemetry_for(&self, experiment: &str) -> Telemetry {
        match self.telemetry_path(experiment) {
            Some(path) => Telemetry::jsonl(&path).unwrap_or_else(|e| {
                eprintln!(
                    "telemetry disabled for {experiment}: {}: {e}",
                    path.display()
                );
                Telemetry::disabled()
            }),
            None => Telemetry::disabled(),
        }
    }
}

/// Outcome of one capped single-benchmark run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CappedRun {
    /// Budget applied (W).
    pub budget_w: f64,
    /// Wall-clock (simulated) completion time of the workload (s).
    pub completion_s: f64,
    /// Energy normalised against a full-power (140 W/core) system
    /// running for the same duration.
    pub norm_energy: f64,
    /// Raw processor energy over the run (J), for normalisations against
    /// a *different* run's duration (paper Table 3 divides by the
    /// full-budget run's 140 W × T).
    pub energy_j: f64,
    /// Requested-frequency residency over the run.
    pub residency: ResidencyHistogram,
    /// Seconds the aggregate power exceeded the budget.
    pub violation_s: f64,
}

/// Run `workload` alone on a single-core P630 under fvsst with the given
/// budget; returns completion time, normalised energy and residency.
///
/// This is the configuration of the paper's sections 8.3/8.4: "the
/// system configured to use only a single processor", budget levels 140,
/// 75 and 35 W.
pub fn run_capped_app(
    workload: WorkloadSpec,
    budget_w: f64,
    settings: &RunSettings,
    max_s: f64,
) -> CappedRun {
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, workload)
        .seed(settings.seed)
        .build();
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(budget_w));
    let mut sim = ScheduledSimulation::new(machine, config).without_trace();
    let report = sim.run_to_completion(max_s);
    let completion_s = report.completed_at_s[0].unwrap_or(report.duration_s);
    // Energy accrued up to completion (the meter runs for the whole sim;
    // with run_to_completion the sim stops at completion + ≤1 tick).
    let norm_energy = report.core_energy[0].normalised_against(140.0);
    CappedRun {
        budget_w,
        completion_s,
        norm_energy,
        energy_j: report.core_energy[0].joules(),
        // Effective == requested under the instant-DVFS actuator, so the
        // machine's residency is the "time at each frequency" of Fig. 8.
        residency: report.residency[0].clone(),
        violation_s: report.violation_s,
    }
}

/// Completion time of `workload` on a single core pinned at `f` with no
/// management at all — the reference for performance normalisation.
pub fn run_reference(
    workload: WorkloadSpec,
    f: FreqMhz,
    settings: &RunSettings,
    max_s: f64,
) -> f64 {
    let mut machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, workload)
        .seed(settings.seed)
        .initial_frequency(f)
        .build();
    let tick = 0.001;
    let mut t = 0.0;
    while !machine.core(0).is_finished() && t < max_s {
        machine.step(tick);
        t += tick;
    }
    machine.core(0).stats().completed_at_s.unwrap_or(max_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_workloads::AppBenchmark;

    #[test]
    fn capped_run_completes_and_tracks_energy() {
        let s = RunSettings::fast();
        let w = AppBenchmark::Mcf.workload(s.instructions(2.0e8));
        let run = run_capped_app(w, 140.0, &s, 60.0);
        assert!(run.completion_s > 0.0);
        assert!(run.norm_energy > 0.0 && run.norm_energy < 1.0);
        assert!(run.residency.total() > 0.0);
    }

    #[test]
    fn reference_run_is_frequency_sensitive() {
        let s = RunSettings::fast();
        let w = |_| AppBenchmark::Gzip.workload(s.instructions(2.0e8));
        let fast = run_reference(w(()), FreqMhz(1000), &s, 60.0);
        let slow = run_reference(w(()), FreqMhz(500), &s, 60.0);
        assert!(slow > fast * 1.5);
    }
}
