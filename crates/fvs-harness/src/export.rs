//! Structured (JSON) export of experiment results.
//!
//! Every experiment result type is `Serialize`, so downstream analysis
//! (plotting the figures, regression-tracking the tables) can consume
//! machine-readable output instead of scraping the rendered text:
//!
//! ```sh
//! fvsst-exp table3 --json out/
//! ```
//!
//! writes `out/table3.json` alongside the text report on stdout.

use crate::experiments::{
    ablations, chaos, cluster_scale, example5, fig1, fig4, fig5, fig6, fig7, fig8, fig9, migration,
    predictors, table1, table2, table3,
};
use crate::runs::RunSettings;
use serde::Serialize;
use std::io;
use std::path::Path;

/// A rendered report plus its JSON form.
pub struct ExportedResult {
    /// Human-readable report (same as the non-JSON path prints).
    pub rendered: String,
    /// JSON document of the result struct.
    pub json: String,
}

fn pack<T: Serialize>(rendered: String, value: &T) -> serde_json::Result<ExportedResult> {
    Ok(ExportedResult {
        rendered,
        json: serde_json::to_string_pretty(value)?,
    })
}

/// Run one experiment by id, returning both renderings. `None` for an
/// unknown id.
pub fn run_exported(
    name: &str,
    settings: &RunSettings,
) -> Option<serde_json::Result<ExportedResult>> {
    Some(match name {
        "table1" => {
            let r = table1::run();
            pack(r.render(), &r)
        }
        "fig1" => {
            let r = fig1::run(settings);
            pack(r.render(), &r)
        }
        "table2" => {
            let r = table2::run(settings);
            pack(r.render(), &r)
        }
        "fig4" => {
            let r = fig4::run(settings);
            pack(r.render(), &r)
        }
        "fig5" => {
            let r = fig5::run(settings);
            pack(r.render(), &r)
        }
        "fig6" => {
            let r = fig6::run(settings);
            pack(r.render(), &r)
        }
        "fig7" => {
            let r = fig7::run(settings);
            pack(r.render(), &r)
        }
        "table3" => {
            let r = table3::run(settings);
            pack(r.render(), &r)
        }
        "fig8" => {
            let r = fig8::run(settings);
            pack(r.render(), &r)
        }
        "fig9" => {
            let r = fig9::run(settings);
            pack(r.render(), &r)
        }
        "example5" => {
            let r = example5::run();
            pack(r.render(), &r)
        }
        "ablation" => {
            let r = ablations::run(settings);
            pack(r.render(), &r)
        }
        "predictors" => {
            let r = predictors::run(settings);
            pack(r.render(), &r)
        }
        "migration" => {
            let r = migration::run(settings);
            pack(r.render(), &r)
        }
        "cluster" => {
            let r = cluster_scale::run(settings);
            pack(r.render(), &r)
        }
        "chaos" => {
            let r = chaos::run(settings);
            pack(r.render(), &r)
        }
        _ => return None,
    })
}

/// Run an experiment and write `<dir>/<name>.json`; returns the rendered
/// text for stdout.
pub fn run_and_write_json(
    name: &str,
    settings: &RunSettings,
    dir: &Path,
) -> io::Result<Option<String>> {
    let Some(result) = run_exported(name, settings) else {
        return Ok(None);
    };
    let result = result.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.json")), &result.json)?;
    Ok(Some(result.rendered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_exports_valid_json() {
        let settings = RunSettings::fast();
        // Keep the cheap ones in the unit test; the expensive ones are
        // covered by their own experiment tests and the integration run.
        for name in ["table1", "example5"] {
            let r = run_exported(name, &settings)
                .expect("known id")
                .expect("serializes");
            let parsed: serde_json::Value = serde_json::from_str(&r.json).unwrap();
            assert!(parsed.is_object() || parsed.is_array());
            assert!(!r.rendered.is_empty());
        }
        assert!(run_exported("nope", &settings).is_none());
    }

    #[test]
    fn json_files_land_on_disk() {
        let dir = std::env::temp_dir().join("fvsst-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rendered = run_and_write_json("table1", &RunSettings::fast(), &dir)
            .unwrap()
            .expect("known id");
        assert!(rendered.contains("Table 1"));
        let json = std::fs::read_to_string(dir.join("table1.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
