//! Structured (JSON) export of experiment results.
//!
//! Every experiment result type is `Serialize`, so downstream analysis
//! (plotting the figures, regression-tracking the tables) can consume
//! machine-readable output instead of scraping the rendered text:
//!
//! ```sh
//! fvsst-exp table3 --json out/
//! ```
//!
//! writes `out/table3.json` alongside the text report on stdout.

use crate::experiments::{
    ablations, chaos, cluster_scale, example5, fig1, fig4, fig5, fig6, fig7, fig8, fig9, migration,
    predictors, table1, table2, table3,
};
use crate::runs::RunSettings;
use fvs_net::FvsError;
use serde::Serialize;
use std::path::Path;

/// A rendered report plus its JSON form.
#[derive(Debug)]
pub struct ExportedResult {
    /// Human-readable report (same as the non-JSON path prints).
    pub rendered: String,
    /// JSON document of the result struct.
    pub json: String,
}

fn pack<T: Serialize>(rendered: String, value: &T) -> Result<ExportedResult, FvsError> {
    Ok(ExportedResult {
        rendered,
        json: serde_json::to_string_pretty(value)?,
    })
}

/// Run one experiment by id, returning both renderings.
///
/// An unknown id is a [`FvsError::Validation`]; a serialization failure
/// surfaces as [`FvsError::Wire`].
pub fn run_exported(name: &str, settings: &RunSettings) -> Result<ExportedResult, FvsError> {
    match name {
        "table1" => {
            let r = table1::run();
            pack(r.render(), &r)
        }
        "fig1" => {
            let r = fig1::run(settings);
            pack(r.render(), &r)
        }
        "table2" => {
            let r = table2::run(settings);
            pack(r.render(), &r)
        }
        "fig4" => {
            let r = fig4::run(settings);
            pack(r.render(), &r)
        }
        "fig5" => {
            let r = fig5::run(settings);
            pack(r.render(), &r)
        }
        "fig6" => {
            let r = fig6::run(settings);
            pack(r.render(), &r)
        }
        "fig7" => {
            let r = fig7::run(settings);
            pack(r.render(), &r)
        }
        "table3" => {
            let r = table3::run(settings);
            pack(r.render(), &r)
        }
        "fig8" => {
            let r = fig8::run(settings);
            pack(r.render(), &r)
        }
        "fig9" => {
            let r = fig9::run(settings);
            pack(r.render(), &r)
        }
        "example5" => {
            let r = example5::run();
            pack(r.render(), &r)
        }
        "ablation" => {
            let r = ablations::run(settings);
            pack(r.render(), &r)
        }
        "predictors" => {
            let r = predictors::run(settings);
            pack(r.render(), &r)
        }
        "migration" => {
            let r = migration::run(settings);
            pack(r.render(), &r)
        }
        "cluster" => {
            let r = cluster_scale::run(settings);
            pack(r.render(), &r)
        }
        "chaos" => {
            let r = chaos::run(settings);
            pack(r.render(), &r)
        }
        _ => Err(FvsError::validation(format!("unknown experiment '{name}'"))),
    }
}

/// Run an experiment and write `<dir>/<name>.json`; returns the rendered
/// text for stdout. Filesystem failures surface as [`FvsError::Io`].
pub fn run_and_write_json(
    name: &str,
    settings: &RunSettings,
    dir: &Path,
) -> Result<String, FvsError> {
    let result = run_exported(name, settings)?;
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.json")), &result.json)?;
    Ok(result.rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_exports_valid_json() {
        let settings = RunSettings::fast();
        // Keep the cheap ones in the unit test; the expensive ones are
        // covered by their own experiment tests and the integration run.
        for name in ["table1", "example5"] {
            let r = run_exported(name, &settings).expect("known id serializes");
            let parsed: serde_json::Value = serde_json::from_str(&r.json).unwrap();
            assert!(parsed.is_object() || parsed.is_array());
            assert!(!r.rendered.is_empty());
        }
        let err = run_exported("nope", &settings).unwrap_err();
        assert_eq!(err.category(), "validation");
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn json_files_land_on_disk() {
        let dir = std::env::temp_dir().join("fvsst-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rendered = run_and_write_json("table1", &RunSettings::fast(), &dir).unwrap();
        assert!(rendered.contains("Table 1"));
        let json = std::fs::read_to_string(dir.join("table1.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
