//! Frequency scheduling vs work scheduling (the paper's first claimed
//! advantage).
//!
//! The paper's introduction argues for scheduling *frequencies to
//! processors* instead of *work to processors*: moving work costs
//! migration overhead and is "difficult or impossible" in clusters. This
//! experiment builds the comparator the paper argues against — a
//! Kumar-et-al.-style work scheduler over a fixed heterogeneous
//! frequency ladder — and measures both sides at the same power budget:
//!
//! - the **ladder** is chosen greedily to maximise total MHz under the
//!   budget (the natural static design point);
//! - each period the work scheduler ranks jobs by measured memory
//!   intensity and swaps them so the most CPU-bound job runs on the
//!   fastest core, paying a configurable migration penalty per swap
//!   (cache refill + bookkeeping);
//! - fvsst leaves the work alone and moves the frequencies instead.
//!
//! Measured outcome (fast mode): fvsst ≈ 0.97 mean progress vs ≈ 0.79
//! for work scheduling *even with free migration* — the static ladder
//! must overprovision frequency for whatever job might land on each
//! core, while fvsst reclaims the watts its saturated jobs don't need
//! and spends them on the CPU-bound one. Migration penalties only widen
//! the gap. This is the quantified form of the paper's introduction
//! argument.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_model::{Estimator, FreqMhz, FrequencySet, MemoryLatencies};
use fvs_power::{BudgetSchedule, FreqPowerTable};
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::{Machine, MachineBuilder};

use serde::{Deserialize, Serialize};

/// Migration penalties studied (seconds per swap, per core).
pub const PENALTIES: [f64; 3] = [0.0, 0.005, 0.050];

/// Result of the comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MigrationResult {
    /// Budget used (W).
    pub budget_w: f64,
    /// fvsst's mean per-core progress (no migration needed).
    pub fvsst_progress: f64,
    /// `(penalty_s, mean progress)` for the work scheduler.
    pub work_scheduling: Vec<(f64, f64)>,
    /// The static ladder the work scheduler ran on (MHz, descending).
    pub ladder_mhz: Vec<u32>,
}

/// Greedy max-total-MHz ladder under `budget_w` for `n` cores: start at
/// `f_min` everywhere, repeatedly take the cheapest next step in W/MHz.
pub fn greedy_ladder(
    set: &FrequencySet,
    table: &FreqPowerTable,
    n: usize,
    budget_w: f64,
) -> Vec<FreqMhz> {
    let mut ladder = vec![set.min(); n];
    let power = |fs: &[FreqMhz]| -> f64 { fs.iter().map(|f| table.power_interpolated(*f)).sum() };
    loop {
        let mut best: Option<(usize, FreqMhz, f64)> = None;
        for (i, f) in ladder.iter().enumerate() {
            let Some(up) = set.step_up(*f) else { continue };
            let dw = table.power_interpolated(up) - table.power_interpolated(*f);
            let dmhz = f64::from(up.0 - f.0);
            let cost = dw / dmhz;
            if best.map(|(.., c)| cost < c).unwrap_or(true) {
                best = Some((i, up, cost));
            }
        }
        match best {
            Some((i, up, _)) => {
                let old = ladder[i];
                ladder[i] = up;
                if power(&ladder) > budget_w {
                    ladder[i] = old;
                    break;
                }
            }
            None => break,
        }
    }
    // Descending, so index 0 is the fastest core.
    ladder.sort_by(|a, b| b.cmp(a));
    ladder
}

/// Phase-shifting workloads: each job alternates between a CPU-ish and a
/// memory-ish phase with per-job mixes, so the intensity *ranking*
/// changes over time and the work scheduler has to keep migrating —
/// which is exactly when migration cost matters. A static mix would let
/// it sort once and never pay again.
fn diverse_machine(settings: &RunSettings) -> Machine {
    use fvs_workloads::SyntheticConfig;
    let phased = |a: f64, b: f64| {
        SyntheticConfig::two_phase(a, 4.0e8, b, 1.5e8)
            .body_only()
            .looping()
            .build()
    };
    MachineBuilder::p630()
        .workload(0, phased(100.0, 15.0))
        .workload(1, phased(65.0, 30.0))
        .workload(2, phased(30.0, 65.0))
        .workload(3, phased(10.0, 90.0))
        .seed(settings.seed)
        .build()
}

/// Run the work scheduler: fixed ladder, periodic intensity-ranked
/// swaps.
fn run_work_scheduling(
    settings: &RunSettings,
    budget_w: f64,
    dur: f64,
    penalty_s: f64,
) -> Vec<f64> {
    let mut machine = diverse_machine(settings);
    let set = machine.frequency_set();
    let table = machine.config().power_table.clone();
    let ladder = greedy_ladder(&set, &table, machine.num_cores(), budget_w);
    // Fixed frequencies: core i runs ladder[i] forever.
    for (i, f) in ladder.iter().enumerate() {
        machine.set_frequency(i, *f);
    }
    let estimator = Estimator::new(MemoryLatencies::P630);
    let n = machine.num_cores();
    let tick = 0.01;
    let period = 10u64;
    let mut models = vec![None; n];
    let ticks = (dur / tick).round() as u64;
    for t in 0..ticks {
        machine.step(tick);
        let samples = machine.sample_all();
        for (i, s) in samples.iter().enumerate() {
            if let Ok(m) = estimator.estimate(s, machine.effective_frequency(i)) {
                models[i] = Some(m);
            }
        }
        if (t + 1) % period == 0 {
            // Rank jobs: most CPU-bound (lowest saturation M) first; the
            // ladder is descending, so selection-sort jobs onto cores.
            for target in 0..n {
                let best = (target..n)
                    .min_by(|&a, &b| {
                        let ma = models[a].map(|m| m.mem_time_per_instr).unwrap_or(0.0);
                        let mb = models[b].map(|m| m.mem_time_per_instr).unwrap_or(0.0);
                        ma.total_cmp(&mb)
                    })
                    .unwrap();
                if best != target {
                    machine.swap_workloads(target, best, penalty_s);
                    models.swap(target, best);
                }
            }
        }
    }
    (0..n)
        .map(|i| machine.core(i).stats().body_instructions)
        .collect()
}

/// Run the comparison.
pub fn run(settings: &RunSettings) -> MigrationResult {
    let budget_w = 250.0;
    let dur = if settings.fast { 2.0 } else { 6.0 };

    // Progress denominators: unconstrained full-speed run.
    let mut reference = diverse_machine(settings);
    reference.run_for(dur, 0.01);
    let full: Vec<f64> = (0..4)
        .map(|i| reference.core(i).stats().body_instructions)
        .collect();
    let progress = |done: &[f64]| -> f64 {
        done.iter()
            .zip(&full)
            .map(|(d, f)| (d / f).min(1.0))
            .sum::<f64>()
            / full.len() as f64
    };

    // fvsst.
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(budget_w));
    let mut sim = ScheduledSimulation::new(diverse_machine(settings), config).without_trace();
    let report = sim.run_for(dur);
    let fvsst_progress = progress(&report.body_instructions);

    // Work scheduling at each penalty.
    let work_scheduling = PENALTIES
        .iter()
        .map(|&p| {
            let done = run_work_scheduling(settings, budget_w, dur, p);
            (p, progress(&done))
        })
        .collect();

    let set = FrequencySet::p630();
    let table = FreqPowerTable::p630_table1();
    MigrationResult {
        budget_w,
        fvsst_progress,
        work_scheduling,
        ladder_mhz: greedy_ladder(&set, &table, 4, budget_w)
            .iter()
            .map(|f| f.0)
            .collect(),
    }
}

impl MigrationResult {
    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(format!(
            "Frequency vs work scheduling @{:.0} W (ladder {:?} MHz)",
            self.budget_w, self.ladder_mhz
        ))
        .header(["policy", "migration penalty", "mean progress"]);
        t.row([
            "fvsst".to_string(),
            "—".to_string(),
            format!("{:.3}", self.fvsst_progress),
        ]);
        for (p, prog) in &self.work_scheduling {
            t.row([
                "work-scheduling".to_string(),
                format!("{:.0} ms/swap", p * 1e3),
                format!("{prog:.3}"),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_ladder_fits_budget_and_is_maximal() {
        let set = FrequencySet::p630();
        let table = FreqPowerTable::p630_table1();
        let ladder = greedy_ladder(&set, &table, 4, 250.0);
        let power: f64 = ladder.iter().map(|f| table.power_at(*f).unwrap()).sum();
        assert!(power <= 250.0);
        // Maximal: no single core can step up within the budget.
        for (i, f) in ladder.iter().enumerate() {
            if let Some(up) = set.step_up(*f) {
                let bumped: f64 = ladder
                    .iter()
                    .enumerate()
                    .map(|(j, g)| table.power_at(if i == j { up } else { *g }).unwrap())
                    .sum();
                assert!(bumped > 250.0, "core {i} could still step up");
            }
        }
        // Descending order.
        assert!(ladder.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn frequency_scheduling_beats_work_scheduling_at_equal_budget() {
        let r = run(&RunSettings::fast());
        let at = |p: f64| {
            r.work_scheduling
                .iter()
                .find(|(q, _)| (q - p).abs() < 1e-12)
                .unwrap()
                .1
        };
        // The headline: even with FREE migration, a static MHz-maximal
        // ladder cannot match adaptive frequencies — the ladder burns
        // watts on saturated jobs that fvsst would clock down, starving
        // the CPU-bound job of the freed budget.
        assert!(
            r.fvsst_progress > at(0.0) + 0.05,
            "fvsst {} vs free-migration work scheduling {}",
            r.fvsst_progress,
            at(0.0)
        );
        // Migration penalties never help and compound the gap.
        assert!(at(0.005) <= at(0.0) + 0.005);
        assert!(at(0.050) <= at(0.0) + 0.005);
        assert!(r.fvsst_progress > at(0.050) + 0.05);
    }
}
