//! The section-5 worked example, end to end.
//!
//! Four processors, the 0.6–1.0 GHz frequency table, a 294 W budget
//! after a supply failure. At `T0` the ε-constrained vector is
//! [1.0, 0.7, 0.8, 0.8] GHz (374 W — over budget), and pass 2 demotes to
//! a 289 W assignment. Between `T0` and `T1` processor 0 becomes more
//! memory-intensive; at `T1` the ε-vector [0.6, 0.7, 0.8, 0.8] GHz fits
//! at 282 W and nobody is demoted.
//!
//! Note on the paper's arithmetic: it prints the post-budget vector as
//! [0.6, 0.6, 0.7, 0.7] GHz but gives its power as [109, 48, 66, 66] W —
//! and 109 W is unambiguously 900 MHz in its own Table 1. We reproduce
//! the consistent reading ([0.9, 0.6, 0.7, 0.7] GHz, total 289 W).

use crate::render::TableBuilder;
use fvs_model::{CpiModel, FreqMhz};
use fvs_power::{FreqPowerTable, VoltageTable};
use fvs_sched::{DemotionOrder, FvsstAlgorithm, ProcInput, ScheduleDecision, SchedulingMode};
use serde::{Deserialize, Serialize};

/// Result of the worked example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Example5Result {
    /// Decision at `T0` (processor 0 CPU-bound).
    pub at_t0: ScheduleDecision,
    /// Decision at `T1` (processor 0 now memory-intensive).
    pub at_t1: ScheduleDecision,
    /// The budget used.
    pub budget_w: f64,
}

/// β targeting a desired frequency `f_hat` (fraction of 1 GHz) at
/// ε = 5 %: from `f̂ > (1−ε)/(1+ε·β)`, nudged to sit strictly between
/// table steps.
fn beta_for(f_hat: f64) -> f64 {
    (0.95 / (f_hat - 0.02) - 1.0) / 0.05
}

fn model_beta(beta: f64) -> CpiModel {
    CpiModel::from_components(1.0, beta * 1.0e-9)
}

/// Run the example.
pub fn run() -> Example5Result {
    let table = FreqPowerTable::section5_example();
    let alg = FvsstAlgorithm {
        freq_set: table.frequency_set(),
        power_table: table,
        voltage_table: VoltageTable::p630(),
        epsilon: 0.05,
        mode: SchedulingMode::DiscreteEpsilon,
        idle_detection: true,
        demotion_order: DemotionOrder::LeastPredictedLoss,
    };
    let budget_w = 294.0;
    let proc = |beta: f64| ProcInput {
        model: Some(model_beta(beta)),
        idle: false,
        current: FreqMhz(1000),
    };
    // T0: processor 0 CPU-bound, 1 wants 0.7 GHz, 2 and 3 want 0.8 GHz.
    let at_t0 = alg.schedule(
        &[
            proc(0.0),
            proc(beta_for(0.7)),
            proc(beta_for(0.8)),
            proc(beta_for(0.8)),
        ],
        budget_w,
    );
    // T1: processor 0's aggregate work became memory-intensive enough to
    // want 0.6 GHz.
    let at_t1 = alg.schedule(
        &[
            proc(beta_for(0.6)),
            proc(beta_for(0.7)),
            proc(beta_for(0.8)),
            proc(beta_for(0.8)),
        ],
        budget_w,
    );
    Example5Result {
        at_t0,
        at_t1,
        budget_w,
    }
}

impl Example5Result {
    /// Render both scheduling instants.
    pub fn render(&self) -> String {
        let fmt = |d: &ScheduleDecision| {
            let freqs: Vec<String> = d
                .freqs
                .iter()
                .map(|f| format!("{:.1}", f.0 as f64 / 1000.0))
                .collect();
            let desired: Vec<String> = d
                .desired
                .iter()
                .map(|f| format!("{:.1}", f.0 as f64 / 1000.0))
                .collect();
            (freqs.join(", "), desired.join(", "))
        };
        let mut t = TableBuilder::new("Section 5 worked example (294 W budget)").header([
            "instant",
            "ε-vector (GHz)",
            "final (GHz)",
            "power (W)",
            "demotions",
        ]);
        let (f0, d0) = fmt(&self.at_t0);
        t.row([
            "T0".to_string(),
            d0,
            f0,
            format!("{:.0}", self.at_t0.predicted_power_w),
            format!("{}", self.at_t0.demotions),
        ]);
        let (f1, d1) = fmt(&self.at_t1);
        t.row([
            "T1".to_string(),
            d1,
            f1,
            format!("{:.0}", self.at_t1.predicted_power_w),
            format!("{}", self.at_t1.demotions),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t0_matches_paper() {
        let r = run();
        assert_eq!(
            r.at_t0.desired,
            vec![FreqMhz(1000), FreqMhz(700), FreqMhz(800), FreqMhz(800)]
        );
        // 374 W desired > 294 W: demotion happened and landed ≤ budget.
        assert!(r.at_t0.demotions > 0);
        assert!(r.at_t0.predicted_power_w <= 294.0);
        // The consistent reading of the paper's example: 289 W total
        // from [0.9, 0.6, 0.7, 0.7] GHz.
        assert_eq!(
            r.at_t0.freqs,
            vec![FreqMhz(900), FreqMhz(600), FreqMhz(700), FreqMhz(700)],
            "final vector"
        );
        assert!((r.at_t0.predicted_power_w - 289.0).abs() < 1e-9);
    }

    #[test]
    fn t1_matches_paper() {
        let r = run();
        assert_eq!(
            r.at_t1.desired,
            vec![FreqMhz(600), FreqMhz(700), FreqMhz(800), FreqMhz(800)]
        );
        // 48+66+84+84 = 282 W ≤ 294 W: everyone gets their ε-frequency.
        assert_eq!(r.at_t1.freqs, r.at_t1.desired);
        assert!((r.at_t1.predicted_power_w - 282.0).abs() < 1e-9);
        assert_eq!(r.at_t1.demotions, 0);
    }
}
