//! Figure 6: performance impact of power limits.
//!
//! Single processor; the synthetic benchmark's two phase types (100 %
//! CPU intensity and 20 % intensity, i.e. memory-intensive) are run to
//! completion under a sweep of power limits. Performance is normalised
//! to the full-power run. The paper's shape: the memory-intensive phase
//! shows no degradation across the studied limits; the CPU-intensive
//! phase degrades slightly less than one-to-one with frequency.

use crate::render::Series;
use crate::runs::{run_capped_app, RunSettings};
use fvs_workloads::SyntheticConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Power limits swept (W) — the schedulable power grid of Table 1.
pub const LIMITS: [f64; 8] = [140.0, 123.0, 109.0, 95.0, 84.0, 75.0, 48.0, 35.0];

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// `(limit W, normalised perf)` for the CPU-intensive phase.
    pub cpu_phase: Series,
    /// `(limit W, normalised perf)` for the memory-intensive phase.
    pub mem_phase: Series,
}

fn normalised_perf(intensity: f64, settings: &RunSettings) -> Series {
    let instr = settings.instructions(2.0e9);
    let make = || {
        SyntheticConfig::single(intensity, instr)
            .body_only()
            .build()
    };
    let runs: Vec<(f64, f64)> = LIMITS
        .par_iter()
        .map(|&limit| {
            let r = run_capped_app(make(), limit, settings, 600.0);
            (limit, r.completion_s)
        })
        .collect();
    let t_full = runs
        .iter()
        .find(|(l, _)| *l == 140.0)
        .map(|(_, t)| *t)
        .expect("full-power point present");
    let mut s = Series::new(format!("c={intensity:.0}"));
    for (limit, t) in runs {
        s.push(limit, t_full / t);
    }
    s
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig6Result {
    Fig6Result {
        cpu_phase: normalised_perf(100.0, settings),
        mem_phase: normalised_perf(20.0, settings),
    }
}

impl Fig6Result {
    /// Render both series.
    pub fn render(&self) -> String {
        Series::render_table(
            "Figure 6: normalised performance vs power limit (W)",
            &[self.cpu_phase.clone(), self.mem_phase.clone()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_phase_free_cpu_phase_pays() {
        let r = run(&RunSettings::fast());
        // Memory-intensive: essentially no degradation down to 35 W.
        let mem35 = r.mem_phase.value_at(35.0).unwrap();
        assert!(mem35 > 0.93, "mem @35 W: {mem35}");
        // CPU-intensive at 35 W (500 MHz): a bit above the 0.50 clock
        // ratio ("slightly less than one-to-one").
        let cpu35 = r.cpu_phase.value_at(35.0).unwrap();
        assert!((0.50..0.70).contains(&cpu35), "cpu @35 W: {cpu35}");
        // And the ordering holds everywhere.
        for (limit, cpu) in &r.cpu_phase.points {
            let mem = r.mem_phase.value_at(*limit).unwrap();
            assert!(mem >= cpu - 0.03, "limit {limit}: mem {mem} cpu {cpu}");
        }
    }
}
