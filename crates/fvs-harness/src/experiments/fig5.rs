//! Figure 5: fvsst response to phase behaviour.
//!
//! A two-phase looping synthetic benchmark (CPU-intensive ↔
//! memory-intensive) runs under fvsst; the experiment emits the
//! time-series of observed IPC, scheduled frequency and core power. The
//! paper's claim: with T = 100 ms and phases longer than that, frequency
//! tracks the IPC phase structure, and power tracks frequency.

use crate::render::Series;
use crate::runs::RunSettings;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::MachineBuilder;
use fvs_workloads::SyntheticConfig;
use serde::{Deserialize, Serialize};

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// `(t, observed IPC)`.
    pub ipc: Series,
    /// `(t, scheduled MHz)`.
    pub freq: Series,
    /// `(t, core power W)`.
    pub power: Series,
    /// Mean scheduled frequency during CPU-intensive phases (MHz).
    pub cpu_phase_mean_mhz: f64,
    /// Mean scheduled frequency during memory-intensive phases (MHz).
    pub mem_phase_mean_mhz: f64,
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig5Result {
    // Phase lengths ≈ 0.5 s at 1 GHz — well above T = 100 ms.
    let cpu_len = 6.0e8;
    let mem_len = 1.0e8; // memory phase runs slower per instruction
    let spec = SyntheticConfig::two_phase(95.0, cpu_len, 10.0, mem_len)
        .body_only()
        .looping()
        .build();
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, spec)
        .seed(settings.seed)
        .build();
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(f64::INFINITY));
    let mut sim = ScheduledSimulation::new(machine, config);
    let dur = if settings.fast { 2.0 } else { 6.0 };
    sim.run_for(dur);

    let mut ipc = Series::new("ipc");
    let mut freq = Series::new("mhz");
    let mut power = Series::new("watts");
    let mut cpu_sum = 0.0;
    let mut cpu_n = 0.0;
    let mut mem_sum = 0.0;
    let mut mem_n = 0.0;
    for s in sim.trace().for_core(0) {
        ipc.push(s.t_s, s.observed_ipc);
        freq.push(s.t_s, f64::from(s.requested_mhz));
        power.push(s.t_s, s.power_w);
        // Phase labels come from the workload spec ("phase0-c95" etc.).
        if s.phase.contains("c95") {
            cpu_sum += f64::from(s.requested_mhz);
            cpu_n += 1.0;
        } else if s.phase.contains("c10") {
            mem_sum += f64::from(s.requested_mhz);
            mem_n += 1.0;
        }
    }
    Fig5Result {
        ipc,
        freq,
        power,
        cpu_phase_mean_mhz: if cpu_n > 0.0 { cpu_sum / cpu_n } else { 0.0 },
        mem_phase_mean_mhz: if mem_n > 0.0 { mem_sum / mem_n } else { 0.0 },
    }
}

impl Fig5Result {
    /// Render the three series (downsampled) plus the phase means.
    pub fn render(&self) -> String {
        let ds = |s: &Series| Series {
            name: s.name.clone(),
            points: s.points.iter().copied().step_by(5).collect(),
        };
        format!(
            "{}\nmean frequency: CPU-intensive phases {:.0} MHz, memory-intensive phases {:.0} MHz\n",
            Series::render_table(
                "Figure 5: fvsst response to phase behaviour (downsampled 5x)",
                &[ds(&self.ipc), ds(&self.freq), ds(&self.power)],
            ),
            self.cpu_phase_mean_mhz,
            self.mem_phase_mean_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_tracks_phases() {
        let r = run(&RunSettings::fast());
        assert!(
            r.cpu_phase_mean_mhz > r.mem_phase_mean_mhz + 150.0,
            "cpu {} vs mem {}",
            r.cpu_phase_mean_mhz,
            r.mem_phase_mean_mhz
        );
        // Power tracks frequency: correlation of the two series must be
        // strongly positive.
        let xs: Vec<f64> = r.freq.points.iter().map(|(_, y)| *y).collect();
        let ys: Vec<f64> = r.power.points.iter().map(|(_, y)| *y).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
        assert!(corr > 0.9, "freq/power correlation {corr}");
    }
}
