//! Figure 4: performance impact (overhead) of running fvsst.
//!
//! The paper's metric bundles "the overhead of fvsst and the performance
//! lost due to mispredictions" — it does *not* count the ε-intended
//! slowdown (the scheduler giving up ≤ε of performance on purpose is the
//! feature, not overhead). The reference run is therefore the
//! ground-truth **oracle** at the same ε with a free daemon: the gap
//! between oracle and fvsst is exactly daemon CPU time + prediction
//! error. A bare run pinned at `f_max` is also reported for context.

use crate::render::TableBuilder;
use crate::runs::{run_reference, RunSettings};
use fvs_baselines::Oracle;
use fvs_model::FreqMhz;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::MachineBuilder;
use fvs_workloads::SyntheticConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Intensities studied.
pub const INTENSITIES: [f64; 4] = [100.0, 75.0, 50.0, 25.0];

/// One row of the overhead study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// CPU intensity of the benchmark.
    pub intensity: f64,
    /// Completion time pinned at `f_max`, unmanaged (s).
    pub bare_s: f64,
    /// Completion time under the zero-overhead ground-truth oracle (s).
    pub oracle_s: f64,
    /// Completion time under the real fvsst daemon (s).
    pub fvsst_s: f64,
    /// The paper's Figure 4 metric: overhead + misprediction loss
    /// (fvsst vs oracle).
    pub degradation: f64,
    /// Total cost vs a bare `f_max` run (includes the ε-intended loss).
    pub total_vs_bare: f64,
}

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One row per intensity.
    pub rows: Vec<Fig4Row>,
}

fn completion_under_fvsst(intensity: f64, instr: f64, settings: &RunSettings) -> f64 {
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(
            0,
            SyntheticConfig::single(intensity, instr)
                .body_only()
                .build(),
        )
        .seed(settings.seed ^ intensity.to_bits())
        .build();
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(f64::INFINITY));
    let mut sim = ScheduledSimulation::new(machine, config).without_trace();
    let report = sim.run_to_completion(600.0);
    report.completed_at_s[0].unwrap_or(report.duration_s)
}

fn completion_under_oracle(intensity: f64, instr: f64, settings: &RunSettings) -> f64 {
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(
            0,
            SyntheticConfig::single(intensity, instr)
                .body_only()
                .build(),
        )
        .seed(settings.seed ^ intensity.to_bits())
        .build();
    let mut sim = ScheduledSimulation::with_policy(
        machine,
        Oracle::p630(),
        BudgetSchedule::constant(f64::INFINITY),
        0.01,
    )
    .without_trace();
    let report = sim.run_to_completion(600.0);
    report.completed_at_s[0].unwrap_or(report.duration_s)
}

fn run_one(intensity: f64, settings: &RunSettings) -> Fig4Row {
    let instr = settings.instructions(3.0e9);
    let bare_s = run_reference(
        SyntheticConfig::single(intensity, instr)
            .body_only()
            .build(),
        FreqMhz(1000),
        settings,
        600.0,
    );
    let oracle_s = completion_under_oracle(intensity, instr, settings);
    let fvsst_s = completion_under_fvsst(intensity, instr, settings);
    Fig4Row {
        intensity,
        bare_s,
        oracle_s,
        fvsst_s,
        degradation: (fvsst_s - oracle_s) / oracle_s,
        total_vs_bare: (fvsst_s - bare_s) / bare_s,
    }
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig4Result {
    let rows = INTENSITIES
        .par_iter()
        .map(|&c| run_one(c, settings))
        .collect();
    Fig4Result { rows }
}

impl Fig4Result {
    /// Render the table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(
            "Figure 4: fvsst overhead (vs oracle = overhead + misprediction; vs bare adds the intended ε loss)",
        )
        .header([
            "CPU intensity",
            "bare (s)",
            "oracle (s)",
            "fvsst (s)",
            "overhead+mispred",
            "total vs bare",
        ]);
        for r in &self.rows {
            t.row([
                format!("{:.0}", r.intensity),
                format!("{:.3}", r.bare_s),
                format!("{:.3}", r.oracle_s),
                format!("{:.3}", r.fvsst_s),
                format!("{:.2}%", r.degradation * 100.0),
                format!("{:.2}%", r.total_vs_bare * 100.0),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small() {
        let r = run(&RunSettings::fast());
        for row in &r.rows {
            // The paper's claim: overhead + misprediction ≤ 3%. Allow a
            // point of slack for fast mode's short runs.
            assert!(
                row.degradation < 0.04,
                "intensity {}: overhead+mispred {}",
                row.intensity,
                row.degradation
            );
            // Sanity: fvsst is never dramatically *faster* than the
            // oracle (that would mean the oracle reference is broken).
            assert!(row.degradation > -0.02);
            // Total vs bare also includes the intended ε loss: ≤ ε + 4%.
            assert!(
                row.total_vs_bare < 0.09,
                "intensity {}: total {}",
                row.intensity,
                row.total_vs_bare
            );
        }
    }
}
