//! One module per paper table/figure, plus the ablation suite.
//!
//! | id        | paper artifact                                   |
//! |-----------|--------------------------------------------------|
//! | `table1`  | Table 1 — frequency/power table + model fit      |
//! | `fig1`    | Figure 1 — performance saturation                |
//! | `table2`  | Table 2 — predictor IPC deviation                |
//! | `fig4`    | Figure 4 — fvsst overhead on throughput          |
//! | `fig5`    | Figure 5 — phase tracking time series            |
//! | `fig6`    | Figure 6 — performance vs power limit            |
//! | `fig7`    | Figure 7 — residency under power constraints     |
//! | `table3`  | Table 3 — app performance & energy under budgets |
//! | `fig8`    | Figure 8 — % time at each frequency per app      |
//! | `fig9`    | Figures 9/10 — actual vs desired frequency (gap) |
//! | `example5`| Section 5 worked example                         |
//! | `ablation`| baselines / cascade / idle / actuator / demotion |
//! | `predictors` | footnote-1 predictor-variant study |
//! | `migration` | frequency vs work scheduling comparator |
//! | `cluster` | budget response vs cluster size and latency |
//! | `chaos`   | fault injection: budget held under corruption |

pub mod ablations;
pub mod chaos;
pub mod cluster_scale;
pub mod example5;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod migration;
pub mod predictors;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::runs::RunSettings;

/// Experiment ids accepted by the `fvsst-exp` binary, in paper order.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "table1",
    "fig1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table3",
    "fig8",
    "fig9",
    "example5",
    "ablation",
    "predictors",
    "migration",
    "cluster",
    "chaos",
];

/// Run one experiment by id and return its rendered report.
pub fn run_by_name(name: &str, settings: &RunSettings) -> Option<String> {
    Some(match name {
        "table1" => table1::run().render(),
        "fig1" => fig1::run(settings).render(),
        "table2" => table2::run(settings).render(),
        "fig4" => fig4::run(settings).render(),
        "fig5" => fig5::run(settings).render(),
        "fig6" => fig6::run(settings).render(),
        "fig7" => fig7::run(settings).render(),
        "table3" => table3::run(settings).render(),
        "fig8" => fig8::run(settings).render(),
        "fig9" => fig9::run(settings).render(),
        "example5" => example5::run().render(),
        "ablation" => ablations::run(settings).render(),
        "predictors" => predictors::run(settings).render(),
        "migration" => migration::run(settings).render(),
        "cluster" => cluster_scale::run(settings).render(),
        "chaos" => chaos::run(settings).render(),
        _ => return None,
    })
}
