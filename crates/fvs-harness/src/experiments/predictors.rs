//! Predictor-variant study (paper footnote 1).
//!
//! The production predictor assumes constant, correctly-measured memory
//! latencies; the paper admits this "is a source of error" and sketches
//! two alternatives — two-frequency calibration and best/worst-case
//! latency bounds. This experiment quantifies the trade under **latency
//! miscalibration**: the machine's true latencies are the nominal ones
//! scaled by `k` (unknown to the scheduler), and each scheme picks an
//! ε-frequency from the same observed windows.
//!
//! The error is asymmetric. When the true latency is *lower* than
//! believed (`k < 1`), the point estimator over-attributes cycles to the
//! memory term, believes in saturation that isn't there, under-clocks,
//! and **busts ε**. When it is *higher* (`k > 1`), the estimator is
//! conservative and **wastes power**. Two-point calibration never
//! consults latencies and matches the oracle either way; the bounded
//! scheme stays ε-safe whenever the truth lies inside its envelope, at
//! some power cost.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_model::{
    calibrate_two_point, BoundedCpiModel, CpiModel, Estimator, FreqMhz, FrequencySet,
    LatencyBounds, MemoryLatencies, Observation, PerfLossTable,
};
use fvs_power::FreqPowerTable;
use fvs_sim::{MachineBuilder, MachineConfig, NoiseModel};
use fvs_workloads::SyntheticConfig;
use serde::{Deserialize, Serialize};

/// Latency miscalibration factors studied (true latency = nominal × k).
pub const MISCALIBRATION: [f64; 5] = [0.7, 0.85, 1.0, 1.25, 1.5];

/// CPU intensity of the probe workload (moderately memory-bound, so the
/// ε-frequency sits mid-table where miscalibration moves it).
const INTENSITY: f64 = 70.0;

/// One row of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorRow {
    /// Latency scale factor applied to the machine.
    pub latency_scale: f64,
    /// ε-frequency from the constant-latency point estimator (MHz).
    pub point_mhz: u32,
    /// ε-frequency from two-point calibration (MHz).
    pub two_point_mhz: u32,
    /// Conservative ε-frequency from the bounded estimator (MHz).
    pub bounded_mhz: u32,
    /// The ground-truth ε-frequency (MHz).
    pub oracle_mhz: u32,
    /// True performance loss of each pick (vs f_max), `(point, bounded)`.
    pub true_loss: (f64, f64),
    /// Table power of the point and oracle picks (W) — the waste when
    /// the point estimator is conservative.
    pub power_w: (f64, f64),
}

/// Result of the predictor study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorsResult {
    /// One row per miscalibration factor.
    pub rows: Vec<PredictorRow>,
    /// ε used.
    pub epsilon: f64,
}

fn scaled_latencies(k: f64) -> MemoryLatencies {
    let n = MemoryLatencies::P630;
    MemoryLatencies {
        l1_cycles: n.l1_cycles,
        l2_s: n.l2_s * k,
        l3_s: n.l3_s * k,
        mem_s: n.mem_s * k,
    }
}

fn run_one(k: f64, settings: &RunSettings) -> PredictorRow {
    let epsilon = 0.048;
    let set = FrequencySet::p630();
    let f_max = set.max();
    let power_table = FreqPowerTable::p630_table1();
    // The machine's true latencies are scaled; every scheme below still
    // believes the nominal P630 numbers (or an envelope around them).
    let mut config = MachineConfig::p630();
    config.latencies = scaled_latencies(k);
    config.noise = NoiseModel::NONE; // isolate the calibration error
    let window = |f: FreqMhz| {
        let mut m = MachineBuilder::p630()
            .cores(1)
            .config(config.clone())
            .workload(
                0,
                SyntheticConfig::single(INTENSITY, 1.0e15)
                    .body_only()
                    .looping()
                    .build(),
            )
            .seed(settings.seed)
            .initial_frequency(f)
            .build();
        m.run_for(0.1, 0.01);
        m.sample(0)
    };
    let at_max = window(f_max);
    let at_low = window(FreqMhz(600));

    // Scheme 1: constant-latency point estimator (nominal latencies).
    let point_model = Estimator::new(MemoryLatencies::P630)
        .estimate(&at_max, f_max)
        .expect("informative window");
    let point_pick = PerfLossTable::build(&point_model, &set).epsilon_constrained(epsilon);

    // Scheme 2: two-point calibration (latency-free).
    let two_point_model = calibrate_two_point(
        &Observation::new(f_max, at_max),
        &Observation::new(FreqMhz(600), at_low),
    )
    .expect("consistent observations");
    let two_point_pick = PerfLossTable::build(&two_point_model, &set).epsilon_constrained(epsilon);

    // Scheme 3: bounded estimator whose envelope covers the studied
    // miscalibration range, conservative pick.
    let bounds = LatencyBounds::new(scaled_latencies(0.7), scaled_latencies(1.5));
    let bounded = BoundedCpiModel::estimate(&at_max, f_max, &bounds, 0.05).unwrap();
    let bounded_pick = bounded.conservative_epsilon_frequency(&set, epsilon);

    // Ground truth.
    let truth = CpiModel::from_profile(
        &fvs_workloads::intensity_profile(INTENSITY),
        &config.latencies,
    );
    let oracle_pick = PerfLossTable::build(&truth, &set).epsilon_constrained(epsilon);
    let true_loss = |f: FreqMhz| fvs_model::perf_loss(&truth, f_max, f);

    PredictorRow {
        latency_scale: k,
        point_mhz: point_pick.0,
        two_point_mhz: two_point_pick.0,
        bounded_mhz: bounded_pick.0,
        oracle_mhz: oracle_pick.0,
        true_loss: (true_loss(point_pick), true_loss(bounded_pick)),
        power_w: (
            power_table.power_interpolated(point_pick),
            power_table.power_interpolated(oracle_pick),
        ),
    }
}

/// Run the study.
pub fn run(settings: &RunSettings) -> PredictorsResult {
    PredictorsResult {
        rows: MISCALIBRATION
            .iter()
            .map(|&k| run_one(k, settings))
            .collect(),
        epsilon: 0.048,
    }
}

impl PredictorsResult {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut t =
            TableBuilder::new("Predictor variants under latency miscalibration (footnote 1)")
                .header([
                    "true latency ×",
                    "point",
                    "two-point",
                    "bounded",
                    "oracle",
                    "point true loss",
                    "bounded true loss",
                    "point W / oracle W",
                ]);
        for r in &self.rows {
            t.row([
                format!("{:.2}", r.latency_scale),
                format!("{} MHz", r.point_mhz),
                format!("{} MHz", r.two_point_mhz),
                format!("{} MHz", r.bounded_mhz),
                format!("{} MHz", r.oracle_mhz),
                format!("{:.3}", r.true_loss.0),
                format!("{:.3}", r.true_loss.1),
                format!("{:.0} / {:.0}", r.power_w.0, r.power_w.1),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_is_immune_to_miscalibration() {
        let r = run(&RunSettings::fast());
        for row in &r.rows {
            assert_eq!(
                row.two_point_mhz, row.oracle_mhz,
                "two-point must match the oracle at ×{}",
                row.latency_scale
            );
        }
    }

    #[test]
    fn bounded_is_epsilon_safe_inside_its_envelope() {
        let r = run(&RunSettings::fast());
        for row in &r.rows {
            assert!(
                row.true_loss.1 < r.epsilon + 1e-9,
                "×{}: bounded pick truly lost {}",
                row.latency_scale,
                row.true_loss.1
            );
            // Conservative: never below the oracle pick.
            assert!(row.bounded_mhz >= row.oracle_mhz);
        }
    }

    #[test]
    fn point_estimator_error_is_asymmetric() {
        let r = run(&RunSettings::fast());
        let at = |k: f64| {
            r.rows
                .iter()
                .find(|row| (row.latency_scale - k).abs() < 1e-9)
                .unwrap()
        };
        // Exact calibration: matches the oracle, within ε.
        let exact = at(1.0);
        assert_eq!(exact.point_mhz, exact.oracle_mhz);
        assert!(exact.true_loss.0 < r.epsilon);
        // True latency lower than believed: under-clocks and busts ε.
        let fast_mem = at(0.7);
        assert!(fast_mem.point_mhz < fast_mem.oracle_mhz);
        assert!(
            fast_mem.true_loss.0 > r.epsilon,
            "expected ε bust, got {}",
            fast_mem.true_loss.0
        );
        // True latency higher than believed: conservative, wastes power.
        let slow_mem = at(1.5);
        assert!(slow_mem.point_mhz > slow_mem.oracle_mhz);
        assert!(slow_mem.true_loss.0 < r.epsilon);
        assert!(slow_mem.power_w.0 > slow_mem.power_w.1);
    }
}
