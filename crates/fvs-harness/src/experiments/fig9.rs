//! Figures 9 and 10: actual vs desired frequency for `gap` at a 75 W
//! limit (750 MHz cap), with a magnified time slice.
//!
//! The desired (ε-constrained) frequency regularly exceeds the cap —
//! gap wants 950–1000 MHz — so the actual frequency rides the 750 MHz
//! ceiling, except where a memory-ish phase briefly wants less.

use crate::render::Series;
use crate::runs::RunSettings;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::MachineBuilder;
use fvs_workloads::AppBenchmark;
use serde::{Deserialize, Serialize};

/// Result of the Figure 9/10 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// `(t, actual MHz)`.
    pub actual: Series,
    /// `(t, desired MHz)`.
    pub desired: Series,
    /// The Figure 10 magnification window `(from_s, to_s)`.
    pub zoom: (f64, f64),
    /// Fraction of samples where desired exceeded the cap.
    pub desired_above_cap: f64,
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig9Result {
    let instr = settings.instructions(1.5e9);
    let mut spec = AppBenchmark::Gap.workload(instr);
    spec.loop_body = true; // keep running for a stable trace
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, spec)
        .seed(settings.seed)
        .build();
    let config = SchedulerConfig::p630()
        .with_budget(BudgetSchedule::constant(75.0))
        .with_telemetry(settings.telemetry_for("fig9"));
    let mut sim = ScheduledSimulation::new(machine, config);
    let dur = if settings.fast { 2.0 } else { 8.0 };
    sim.run_for(dur);

    let mut actual = Series::new("actual");
    let mut desired = Series::new("desired");
    let mut above = 0usize;
    let mut total = 0usize;
    for s in sim.trace().for_core(0) {
        actual.push(s.t_s, f64::from(s.requested_mhz));
        desired.push(s.t_s, f64::from(s.desired_mhz));
        total += 1;
        if s.desired_mhz > 750 {
            above += 1;
        }
    }
    Fig9Result {
        actual,
        desired,
        zoom: (dur * 0.25, dur * 0.375),
        desired_above_cap: above as f64 / total.max(1) as f64,
    }
}

impl Fig9Result {
    /// Render the full trace (downsampled) and the zoom window (full
    /// resolution — Figure 10).
    pub fn render(&self) -> String {
        let ds = |s: &Series, step: usize| Series {
            name: s.name.clone(),
            points: s.points.iter().copied().step_by(step).collect(),
        };
        let window = |s: &Series| Series {
            name: format!("{} (zoom)", s.name),
            points: s
                .points
                .iter()
                .copied()
                .filter(|(t, _)| *t >= self.zoom.0 && *t < self.zoom.1)
                .collect(),
        };
        format!(
            "{}\n{}\ndesired exceeded the 750 MHz cap in {:.0}% of samples\n",
            Series::render_table(
                "Figure 9: gap at 75 W — actual vs desired MHz (downsampled 10x)",
                &[ds(&self.actual, 10), ds(&self.desired, 10)],
            ),
            Series::render_table(
                "Figure 10: magnified slice",
                &[window(&self.actual), window(&self.desired)],
            ),
            self.desired_above_cap * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_rides_the_cap_while_desired_exceeds_it() {
        let r = run(&RunSettings::fast());
        // Actual never exceeds the 750 MHz cap (after the first decision).
        let above_cap = r
            .actual
            .points
            .iter()
            .skip(12)
            .filter(|(_, f)| *f > 750.0)
            .count();
        assert_eq!(above_cap, 0, "actual exceeded the cap");
        // Desired exceeds the cap most of the time (gap is CPU-bound).
        assert!(
            r.desired_above_cap > 0.5,
            "desired above cap {:.2}",
            r.desired_above_cap
        );
        // Zoom window is inside the run.
        assert!(r.zoom.0 < r.zoom.1);
        assert!(r
            .actual
            .points
            .iter()
            .any(|(t, _)| *t >= r.zoom.0 && *t < r.zoom.1));
    }
}
