//! Cluster-scale behaviour: does the algorithm's budget response
//! survive node count and network latency?
//!
//! The paper asserts its results "apply to server clusters as well as
//! SMP systems" and leaves the cluster prototype as future work. This
//! experiment runs the global coordinator over three-tier clusters of
//! increasing size and increasing node↔coordinator latency, measuring:
//!
//! - **response time** from a deep global budget cut to compliance,
//! - **violation time** across the whole run,
//! - **frequency diversity** across tiers (the §4.2 stability claim),
//! - bytes-on-the-wire proxy: scheduling rounds executed.
//!
//! Expected shape: response time is dominated by the dispatch tick and
//! two one-way latencies, *not* by cluster size — the computation is
//! O(total cores × frequencies) and the messaging is one summary and
//! one command per node per period.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_cluster::{ClusterConfig, ClusterSim};
use fvs_power::{BudgetEvent, BudgetSchedule};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Cluster sizes studied (nodes; 4 cores each).
pub const SIZES: [usize; 3] = [4, 16, 48];

/// One-way latencies studied (s).
pub const LATENCIES: [f64; 3] = [0.002, 0.020, 0.100];

/// One cell of the scaling study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// One-way message latency (s).
    pub latency_s: f64,
    /// Time from the budget cut to compliance (s), if reached.
    pub response_s: Option<f64>,
    /// Total seconds over budget.
    pub violation_s: f64,
    /// Final power as a fraction of the cut budget.
    pub budget_utilisation: f64,
    /// Spread between the fastest and slowest node mean frequency (MHz)
    /// — tier diversity.
    pub diversity_mhz: f64,
}

/// Result of the scaling study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterScaleResult {
    /// One cell per (size, latency) pair.
    pub cells: Vec<ScaleCell>,
}

fn run_one(nodes: usize, latency_s: f64, settings: &RunSettings) -> ScaleCell {
    let unconstrained_w = nodes as f64 * 4.0 * 140.0;
    // Cut to 40% of flat-out — deep enough that every tier participates.
    let cut_w = unconstrained_w * 0.4;
    let mut config =
        ClusterConfig::rack()
            .with_latency_s(latency_s)
            .with_budget(BudgetSchedule::with_events(
                f64::INFINITY,
                vec![BudgetEvent {
                    at_s: 1.5,
                    budget_w: cut_w,
                }],
            ));
    // Trace one representative cell; every cell writing to the same
    // JSONL file would interleave the parallel runs.
    if nodes == SIZES[0] && latency_s == LATENCIES[0] {
        config = config.with_telemetry(settings.telemetry_for("cluster"));
    }
    let dur = if settings.fast { 3.0 } else { 6.0 };
    let mut sim = ClusterSim::three_tier(nodes, settings.seed ^ nodes as u64, config);
    let report = sim.run_for(dur);
    let mean_mhz: Vec<f64> = report.node_mean_mhz.clone();
    let diversity = mean_mhz.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - mean_mhz.iter().cloned().fold(f64::INFINITY, f64::min);
    ScaleCell {
        nodes,
        latency_s,
        response_s: report.response_s,
        violation_s: report.violation_s,
        budget_utilisation: report.final_power_w / cut_w,
        diversity_mhz: diversity,
    }
}

/// Run the study (each cell is an independent simulation).
pub fn run(settings: &RunSettings) -> ClusterScaleResult {
    let jobs: Vec<(usize, f64)> = SIZES
        .iter()
        .flat_map(|&n| LATENCIES.iter().map(move |&l| (n, l)))
        .collect();
    let cells = jobs
        .par_iter()
        .map(|&(n, l)| run_one(n, l, settings))
        .collect();
    ClusterScaleResult { cells }
}

impl ClusterScaleResult {
    /// Cell lookup.
    pub fn cell(&self, nodes: usize, latency_s: f64) -> Option<&ScaleCell> {
        self.cells
            .iter()
            .find(|c| c.nodes == nodes && (c.latency_s - latency_s).abs() < 1e-12)
    }

    /// Render the study.
    pub fn render(&self) -> String {
        let mut t =
            TableBuilder::new("Cluster scaling: budget-cut response vs size and network latency")
                .header([
                    "nodes",
                    "latency",
                    "response (s)",
                    "violation (s)",
                    "budget use",
                    "diversity (MHz)",
                ]);
        for c in &self.cells {
            t.row([
                format!("{}", c.nodes),
                format!("{:.0} ms", c.latency_s * 1e3),
                c.response_s
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
                format!("{:.2}", c.violation_s),
                format!("{:.2}", c.budget_utilisation),
                format!("{:.0}", c.diversity_mhz),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_scales_with_latency_not_size() {
        let r = run(&RunSettings::fast());
        for c in &r.cells {
            let resp = c.response_s.expect("compliance reached");
            // Response bounded by dispatch tick + summary & command
            // latencies + one scheduling period, independent of size.
            let bound = 0.01 + 2.0 * c.latency_s + 0.1 + 0.05;
            assert!(
                resp <= bound,
                "{} nodes @{}s latency: response {resp} > bound {bound}",
                c.nodes,
                c.latency_s
            );
            // And the budget ends up respected and well-utilised.
            assert!(c.budget_utilisation <= 1.0 + 1e-9);
            assert!(
                c.budget_utilisation > 0.5,
                "under-utilised: {}",
                c.budget_utilisation
            );
        }
        // Same latency, different sizes: response within a couple of
        // ticks of each other.
        let small = r.cell(SIZES[0], LATENCIES[0]).unwrap().response_s.unwrap();
        let large = r.cell(SIZES[2], LATENCIES[0]).unwrap().response_s.unwrap();
        assert!(
            (small - large).abs() <= 0.05,
            "size-dependent response: {small} vs {large}"
        );
        // Higher latency → slower response at fixed size.
        let fast_net = r.cell(SIZES[1], LATENCIES[0]).unwrap().response_s.unwrap();
        let slow_net = r.cell(SIZES[1], LATENCIES[2]).unwrap().response_s.unwrap();
        assert!(slow_net > fast_net);
    }

    #[test]
    fn tier_diversity_persists_at_every_scale() {
        let r = run(&RunSettings::fast());
        for c in &r.cells {
            assert!(
                c.diversity_mhz > 200.0,
                "{} nodes: diversity only {} MHz",
                c.nodes,
                c.diversity_mhz
            );
        }
    }
}
