//! Chaos: fault injection + graceful degradation, end to end.
//!
//! The paper's hard requirement is that `P_max` is honored within ΔT
//! even under a supply failure; this experiment checks it holds when
//! nothing else works either. Two cells, one fault plan, one seed:
//!
//! - **machine** — a 4-core P630 under fvsst with corrupted counter
//!   samples, flaky actuation, and the plan's scripted budget drop. The
//!   degradation ladder (quarantine → verify-retry → fail-safe pin)
//!   must keep the schedule NaN-free and end compliant.
//! - **cluster** — a 4-node rack with lost/duplicated/late/corrupted
//!   uplink summaries, a node outage, and the same budget drop. The
//!   coordinator's heartbeat tracking must charge the silent node
//!   conservatively so the global cap holds on the survivors.
//!
//! The plan comes from `--faults` (the [`FaultPlan::parse`] grammar) and
//! the injectors are seeded from `--seed`, so a chaos run replays
//! byte-for-byte from its command line.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_cluster::{ClusterConfig, ClusterSim};
use fvs_faults::{FaultInjector, FaultPlan};
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::MachineBuilder;
use fvs_telemetry::Telemetry;
use fvs_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// One chaos cell: a run under the fault plan plus its degradation
/// bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Which layer the cell exercises (`machine` / `cluster`).
    pub name: String,
    /// Budget in force at the end of the run (W).
    pub budget_w: f64,
    /// Aggregate power at the end of the run (W).
    pub final_power_w: f64,
    /// Seconds over budget across the whole run (includes the allowed
    /// response window after each drop).
    pub violation_s: f64,
    /// Faults the injector actually fired.
    pub faults_injected: u64,
    /// Samples / summaries quarantined by validation.
    pub quarantined: u64,
    /// Actuation verify-retry attempts.
    pub actuation_retries: u64,
    /// Processors pinned at the fail-safe minimum.
    pub failsafe_pins: u64,
    /// Nodes presumed dead at the end of the run (cluster cell).
    pub dead_nodes: u64,
    /// Power the coordinator reserved for silent nodes at the end (W).
    pub reserved_w: f64,
    /// `final_power_w <= budget_w`: the invariant the experiment exists
    /// to check.
    pub compliant: bool,
}

/// Result of the chaos experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Seed the injectors ran with.
    pub seed: u64,
    /// The fault-plan spec (`chaos` when none was given).
    pub plan: String,
    /// Machine and cluster cells.
    pub cells: Vec<ChaosCell>,
}

fn run_machine(plan: &FaultPlan, settings: &RunSettings, telemetry: Telemetry) -> ChaosCell {
    let mut b = MachineBuilder::p630().seed(settings.seed);
    for (i, c) in [100.0, 60.0, 30.0, 10.0].iter().enumerate() {
        b = b.workload(i, WorkloadSpec::synthetic(*c, 1.0e13).looping());
    }
    // A one-retry budget keeps the ladder's bottom rung (fail-safe
    // pinning) reachable within the run: quarantine deliberately keeps
    // the schedule stable under corrupted counters, so frequency
    // transitions — the only place actuation faults bite — are rare,
    // and K consecutive faulted re-issues of the same transition is
    // rate^K rare on top of that.
    let config = SchedulerConfig::p630()
        .with_budget(BudgetSchedule::constant(560.0))
        .with_max_actuation_retries(1)
        .with_telemetry(telemetry.clone());
    let mut sim = ScheduledSimulation::new(b.build(), config)
        .without_trace()
        .with_faults(FaultInjector::new(plan.clone(), settings.seed), telemetry);
    let dur = if settings.fast { 3.0 } else { 6.0 };
    let report = sim.run_for(dur);
    let budget_w = sim.budget_w();
    let sched = sim.policy();
    ChaosCell {
        name: "machine".to_string(),
        budget_w,
        final_power_w: report.final_power_w,
        violation_s: report.violation_s,
        faults_injected: sim.faults_injected(),
        quarantined: sched.quarantined_samples(),
        actuation_retries: sched.actuation_retries(),
        failsafe_pins: sched.failsafe_pins() as u64,
        dead_nodes: 0,
        reserved_w: 0.0,
        compliant: report.final_power_w <= budget_w + 1e-9,
    }
}

fn run_cluster(plan: &FaultPlan, settings: &RunSettings, telemetry: Telemetry) -> ChaosCell {
    // 4 nodes × 4 cores; finite so the plan's drop fraction bites.
    let config = ClusterConfig::rack()
        .with_telemetry(telemetry)
        .with_budget(BudgetSchedule::constant(1600.0));
    let mut sim = ClusterSim::three_tier(4, settings.seed, config).with_faults(FaultInjector::new(
        plan.clone(),
        settings.seed.wrapping_add(1),
    ));
    let dur = if settings.fast { 3.5 } else { 7.0 };
    let report = sim.run_for(dur);
    let budget_w = plan
        .budget_drops
        .iter()
        .rfind(|d| d.at_s <= dur)
        .map_or(1600.0, |d| 1600.0 * d.factor);
    ChaosCell {
        name: "cluster".to_string(),
        budget_w,
        final_power_w: report.final_power_w,
        violation_s: report.violation_s,
        faults_injected: report.faults_injected,
        quarantined: 0,
        actuation_retries: 0,
        failsafe_pins: 0,
        dead_nodes: sim.coordinator().dead_nodes() as u64,
        reserved_w: report.reserved_w,
        compliant: report.final_power_w <= budget_w + 1e-9,
    }
}

/// Run both chaos cells under the settings' fault plan. An unparseable
/// `--faults` spec falls back to the chaos preset with a note on stderr
/// (the experiment must still produce its report).
pub fn run(settings: &RunSettings) -> ChaosResult {
    let plan = settings.fault_plan().unwrap_or_else(|e| {
        eprintln!("bad --faults spec ({e}); using the chaos preset");
        FaultPlan::chaos()
    });
    let telemetry = settings.telemetry_for("chaos");
    let cells = vec![
        run_machine(&plan, settings, telemetry.clone()),
        run_cluster(&plan, settings, telemetry),
    ];
    ChaosResult {
        seed: settings.seed,
        plan: settings
            .faults
            .clone()
            .unwrap_or_else(|| "chaos".to_string()),
        cells,
    }
}

impl ChaosResult {
    /// Render the chaos report.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(format!(
            "Chaos: budget held under plan `{}` (seed {})",
            self.plan, self.seed
        ))
        .header([
            "cell",
            "budget (W)",
            "final (W)",
            "violation (s)",
            "faults",
            "quarantined",
            "retries",
            "pins",
            "dead",
            "reserved (W)",
            "compliant",
        ]);
        for c in &self.cells {
            t.row([
                c.name.clone(),
                format!("{:.0}", c.budget_w),
                format!("{:.1}", c.final_power_w),
                format!("{:.2}", c.violation_s),
                format!("{}", c.faults_injected),
                format!("{}", c.quarantined),
                format!("{}", c.actuation_retries),
                format!("{}", c.failsafe_pins),
                format!("{}", c.dead_nodes),
                format!("{:.0}", c.reserved_w),
                if c.compliant { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_telemetry::SchedEvent;

    #[test]
    fn chaos_cells_end_compliant_and_fault_rich() {
        let r = run(&RunSettings::fast());
        assert_eq!(r.cells.len(), 2);
        for c in &r.cells {
            assert!(c.compliant, "{} ended over budget", c.name);
            assert!(c.faults_injected > 0, "{} injected nothing", c.name);
            assert!(c.final_power_w.is_finite());
        }
        // The machine cell exercised the full degradation ladder.
        let m = &r.cells[0];
        assert!(m.quarantined > 0, "no samples quarantined");
        assert!(m.actuation_retries > 0, "no actuation retries");
    }

    /// The CI chaos-smoke contract: with the default seed and preset,
    /// the telemetry journal must contain every fault event kind — a
    /// run that silently stops exercising one degradation rung should
    /// fail here, not in a downstream grep.
    #[test]
    fn default_seed_emits_every_fault_event_kind() {
        let telemetry = Telemetry::memory(200_000);
        let settings = RunSettings::fast();
        let plan = FaultPlan::chaos();
        run_machine(&plan, &settings, telemetry.clone());
        run_cluster(&plan, &settings, telemetry.clone());
        let events = telemetry.events();
        for kind in [
            "fault_injected",
            "sample_quarantined",
            "actuation_retry",
            "node_declared_dead",
            "failsafe_pin",
        ] {
            assert!(
                events.iter().any(|e| e.kind() == kind),
                "no {kind} event in {} journal entries",
                events.len()
            );
        }
        // And the journal's fault domains span counters, actuation and
        // the cluster uplink.
        let domains: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::FaultInjected { domain, .. } => Some(domain.as_str()),
                _ => None,
            })
            .collect();
        for d in ["counter", "actuation", "cluster"] {
            assert!(domains.contains(&d), "no {d}-domain fault fired");
        }
    }
}
