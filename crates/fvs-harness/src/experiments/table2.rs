//! Table 2: predictor accuracy.
//!
//! The synthetic benchmark runs on CPU 3 at each CPU intensity while
//! CPUs 0–2 run the hot idle loop (the paper's prototype had no idle
//! detection, so all four processors are predicted). The metric is the
//! mean |predicted − observed| IPC per scheduling window; the starred
//! column excludes windows overlapping the benchmark's initialization
//! and termination phases.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::MachineBuilder;
use fvs_workloads::SyntheticConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// CPU intensities studied, as in the paper.
pub const INTENSITIES: [f64; 4] = [100.0, 75.0, 50.0, 25.0];

/// One row: intensity plus per-CPU deviations and the steady-state CPU3
/// figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark CPU intensity.
    pub intensity: f64,
    /// Mean |ΔIPC| for CPU0..CPU3 (all windows).
    pub cpu_dev: [f64; 4],
    /// Mean |ΔIPC| for CPU3 excluding init/exit windows (`CPU3*`).
    pub cpu3_steady: f64,
}

/// Result of the Table 2 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per intensity.
    pub rows: Vec<Table2Row>,
}

fn run_one(intensity: f64, settings: &RunSettings) -> Table2Row {
    let instr = settings.instructions(3.0e9);
    let mut spec_cfg = SyntheticConfig::single(intensity, instr);
    // Init/exit phases proportional to the body so fast mode keeps the
    // paper's relative phase structure.
    spec_cfg.init_instructions = instr * 0.05;
    spec_cfg.exit_instructions = instr * 0.02;
    let spec = spec_cfg.build();
    let machine = MachineBuilder::p630()
        .workload(3, spec)
        .seed(settings.seed ^ intensity.to_bits())
        .build();
    // Match the prototype: no idle detection, unconstrained budget.
    let config = SchedulerConfig::p630()
        .with_idle_detection(false)
        .with_budget(BudgetSchedule::constant(f64::INFINITY));
    let mut sim = ScheduledSimulation::new(machine, config).without_trace();
    sim.run_to_completion(120.0);
    let s = sim.policy();
    Table2Row {
        intensity,
        cpu_dev: [
            s.error_stats(0).mean_abs(),
            s.error_stats(1).mean_abs(),
            s.error_stats(2).mean_abs(),
            s.error_stats(3).mean_abs(),
        ],
        cpu3_steady: s.steady_error_stats(3).mean_abs(),
    }
}

/// Run the experiment (one independent simulation per intensity).
pub fn run(settings: &RunSettings) -> Table2Result {
    let rows = INTENSITIES
        .par_iter()
        .map(|&c| run_one(c, settings))
        .collect();
    Table2Result { rows }
}

impl Table2Result {
    /// Render the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new("Table 2: predictor error (mean |ΔIPC| per window)")
            .header(["CPU intensity", "CPU0", "CPU1", "CPU2", "CPU3", "CPU3*"]);
        for r in &self.rows {
            t.row([
                format!("{:.0}", r.intensity),
                format!("{:.3}", r.cpu_dev[0]),
                format!("{:.3}", r.cpu_dev[1]),
                format!("{:.3}", r.cpu_dev[2]),
                format!("{:.3}", r.cpu_dev[3]),
                format!("{:.3}", r.cpu3_steady),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_error_is_small_in_steady_state() {
        let r = run(&RunSettings::fast());
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            // Paper Table 2: steady-state deviations of 0.008–0.038 IPC;
            // idle-loop CPUs are near-perfectly predictable too. Allow a
            // loose ceiling — the shape claim is "small, ≪ observed IPC".
            for d in row.cpu_dev.iter().take(3) {
                assert!(*d < 0.08, "idle cpu dev {d}");
            }
            assert!(row.cpu3_steady < 0.08, "steady dev {}", row.cpu3_steady);
            assert!(row.cpu_dev[3] < 0.30, "all-windows dev {}", row.cpu_dev[3]);
        }
    }
}
