//! Figure 7: scheduled frequencies under power constraints.
//!
//! A two-phase synthetic benchmark (100 % and 75 % CPU intensity) under
//! budgets of 140, 75 and 35 W on a single processor. At full power both
//! phases get their ε-constrained frequencies; at 75 W (750 MHz cap) the
//! high-intensity phases saturate at the cap; at 35 W (500 MHz) both
//! phases pin to the constrained frequency.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_model::FreqMhz;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::{MachineBuilder, ResidencyHistogram};
use fvs_workloads::SyntheticConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Budgets studied (W).
pub const BUDGETS: [f64; 3] = [140.0, 75.0, 35.0];

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Per budget: requested-frequency residency.
    pub residency: Vec<(f64, ResidencyHistogram)>,
}

fn run_one(budget: f64, settings: &RunSettings) -> (f64, ResidencyHistogram) {
    let instr = settings.instructions(8.0e8);
    let spec = SyntheticConfig::two_phase(100.0, instr, 75.0, instr)
        .body_only()
        .looping()
        .build();
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, spec)
        .seed(settings.seed)
        .build();
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(budget));
    let mut sim = ScheduledSimulation::new(machine, config).without_trace();
    let dur = if settings.fast { 2.0 } else { 6.0 };
    let report = sim.run_for(dur);
    (budget, report.residency[0].clone())
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig7Result {
    let residency = BUDGETS.par_iter().map(|&b| run_one(b, settings)).collect();
    Fig7Result { residency }
}

impl Fig7Result {
    /// Render residency percentages per budget.
    pub fn render(&self) -> String {
        let mut t =
            TableBuilder::new("Figure 7: % time at each frequency, 100%/75% phases under budgets")
                .header(
                    std::iter::once("MHz".to_string())
                        .chain(self.residency.iter().map(|(b, _)| format!("{b:.0} W"))),
                );
        let freqs: Vec<u32> = (5..=20).map(|k| k * 50).collect();
        for f in freqs {
            let mut row = vec![format!("{f}")];
            for (_, h) in &self.residency {
                row.push(format!("{:.1}%", h.fraction_at(FreqMhz(f)) * 100.0));
            }
            t.row(row);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_pin_high_intensity_phases() {
        let r = run(&RunSettings::fast());
        let h140 = &r.residency[0].1;
        let h75 = &r.residency[1].1;
        let h35 = &r.residency[2].1;
        // Unconstrained: substantial time at or above 900 MHz (the
        // CPU-intensive phase's desire).
        assert!(
            h140.fraction_at_or_above(FreqMhz(900)) > 0.4,
            "@140 W high-freq share {}",
            h140.fraction_at_or_above(FreqMhz(900))
        );
        // 75 W: nothing above 750 MHz bar the single bootstrap tick.
        assert!(h75.fraction_at_or_above(FreqMhz(800)) < 0.02);
        assert!(h75.fraction_at(FreqMhz(750)) > 0.5, "pinned at the cap");
        // 35 W: nothing above 500 MHz, both phases at the cap.
        assert!(h35.fraction_at_or_above(FreqMhz(550)) < 0.02);
        assert!(h35.fraction_at(FreqMhz(500)) > 0.8);
    }
}
