//! Figure 1: performance saturation.
//!
//! Normalised throughput versus frequency for synthetic workloads of
//! varying CPU intensity. Computed two ways: analytically from the CPI
//! model, and measured by actually running the simulator at each fixed
//! frequency — agreement between the two validates the substrate.

use crate::render::Series;
use crate::runs::RunSettings;
use fvs_model::{CpiModel, FreqMhz, FrequencySet, MemoryLatencies};
use fvs_sim::MachineBuilder;
use fvs_workloads::{intensity_profile, SyntheticConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Intensities plotted (100 = CPU-bound … 10 = heavily memory-bound).
pub const INTENSITIES: [f64; 5] = [100.0, 75.0, 50.0, 25.0, 10.0];

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Analytic normalised-throughput series, one per intensity.
    pub analytic: Vec<Series>,
    /// Simulated normalised-throughput series, one per intensity.
    pub simulated: Vec<Series>,
}

/// Measured throughput (instructions/s) of an intensity at a fixed
/// frequency.
fn simulate_throughput(intensity: f64, f: FreqMhz, settings: &RunSettings) -> f64 {
    let spec = SyntheticConfig::single(intensity, 1.0e12)
        .body_only()
        .looping()
        .build();
    let mut machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, spec)
        .seed(settings.seed)
        .initial_frequency(f)
        .build();
    let dur = if settings.fast { 0.05 } else { 0.2 };
    machine.run_for(dur, 0.01);
    machine.core(0).stats().body_instructions / dur
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig1Result {
    let set = FrequencySet::p630();
    let lat = MemoryLatencies::P630;
    let analytic = INTENSITIES
        .iter()
        .map(|&c| {
            let m = CpiModel::from_profile(&intensity_profile(c), &lat);
            let p_max = m.perf_at(set.max());
            let mut s = Series::new(format!("analytic c={c:.0}"));
            for f in set.iter() {
                s.push(f64::from(f.0), m.perf_at(f) / p_max);
            }
            s
        })
        .collect();
    // Each (intensity, frequency) point is an independent simulation:
    // fan out with rayon.
    let simulated = INTENSITIES
        .par_iter()
        .map(|&c| {
            let p_max = simulate_throughput(c, set.max(), settings);
            let mut s = Series::new(format!("simulated c={c:.0}"));
            for f in set.iter() {
                s.push(f64::from(f.0), simulate_throughput(c, f, settings) / p_max);
            }
            s
        })
        .collect();
    Fig1Result {
        analytic,
        simulated,
    }
}

impl Fig1Result {
    /// Render both series families.
    pub fn render(&self) -> String {
        let mut all = self.analytic.clone();
        all.extend(self.simulated.iter().cloned());
        Series::render_table(
            "Figure 1: performance saturation (normalised throughput vs MHz)",
            &all,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_shape() {
        let r = run(&RunSettings::fast());
        // CPU-bound: near-linear (value at 250 MHz ≈ 0.25–0.31).
        let cpu = &r.analytic[0];
        let v250 = cpu.value_at(250.0).unwrap();
        assert!((0.2..0.35).contains(&v250), "cpu-bound at 250 MHz: {v250}");
        // Heavily memory-bound: saturates (≥ 0.8 at half clock).
        let mem = &r.analytic[4];
        let v500 = mem.value_at(500.0).unwrap();
        assert!(v500 > 0.8, "mem-bound at 500 MHz: {v500}");
        // Simulation agrees with the analytic curves within a few %.
        for (a, s) in r.analytic.iter().zip(&r.simulated) {
            for ((_, ya), (_, ys)) in a.points.iter().zip(&s.points) {
                assert!((ya - ys).abs() < 0.05, "{} vs {}", ya, ys);
            }
        }
    }
}
