//! Figure 8: percentage of time at each frequency.
//!
//! Each application under frequency caps of 1000 MHz (unconstrained),
//! 750 MHz (75 W) and 500 MHz (35 W). The paper's shape: gzip/gap divide
//! their time between 1000 and 950 MHz and get squashed onto the cap
//! when constrained; mcf/health spend the majority of time near 650 MHz
//! and barely notice the 750 MHz cap.

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_model::FreqMhz;
use fvs_power::BudgetSchedule;
use fvs_sched::{ScheduledSimulation, SchedulerConfig};
use fvs_sim::{MachineBuilder, ResidencyHistogram};
use fvs_workloads::{AppBenchmark, APP_BENCHMARKS};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Budgets studied, expressed as (W, equivalent cap MHz).
pub const LEVELS: [(f64, u32); 3] = [(140.0, 1000), (75.0, 750), (35.0, 500)];

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// `(app, cap MHz, residency)` for every app × level.
    pub cells: Vec<(String, u32, ResidencyHistogram)>,
}

/// Residency of a looping instance of `app` under `budget` over a fixed
/// duration (long enough to cycle through every phase several times).
fn residency_run(app: AppBenchmark, budget: f64, settings: &RunSettings) -> ResidencyHistogram {
    let mut spec = app.workload(2.0e9);
    spec.loop_body = true;
    let machine = MachineBuilder::p630()
        .cores(1)
        .workload(0, spec)
        .seed(settings.seed)
        .build();
    let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(budget));
    let mut sim = ScheduledSimulation::new(machine, config).without_trace();
    let dur = if settings.fast { 3.0 } else { 12.0 };
    let report = sim.run_for(dur);
    report.residency[0].clone()
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Fig8Result {
    let jobs: Vec<(AppBenchmark, (f64, u32))> = APP_BENCHMARKS
        .iter()
        .flat_map(|&a| LEVELS.iter().map(move |&l| (a, l)))
        .collect();
    let cells = jobs
        .par_iter()
        .map(|&(app, (budget, cap))| {
            (
                app.name().to_string(),
                cap,
                residency_run(app, budget, settings),
            )
        })
        .collect();
    Fig8Result { cells }
}

impl Fig8Result {
    /// The residency for one app/cap pair.
    pub fn residency(&self, app: &str, cap: u32) -> Option<&ResidencyHistogram> {
        self.cells
            .iter()
            .find(|(a, c, _)| a == app && *c == cap)
            .map(|(_, _, h)| h)
    }

    /// Render one table per cap level.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (_, cap) in LEVELS {
            let mut t = TableBuilder::new(format!(
                "Figure 8: % time at each frequency (cap {cap} MHz)"
            ))
            .header(
                std::iter::once("MHz".to_string())
                    .chain(APP_BENCHMARKS.iter().map(|a| a.name().to_string())),
            );
            for f in (5..=20).map(|k| k * 50) {
                let mut row = vec![format!("{f}")];
                for a in APP_BENCHMARKS {
                    let cell = self
                        .residency(a.name(), cap)
                        .map(|h| format!("{:.1}%", h.fraction_at(FreqMhz(f)) * 100.0))
                        .unwrap_or_default();
                    row.push(cell);
                }
                t.row(row);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_shape_matches_paper() {
        let r = run(&RunSettings::fast());
        // gzip unconstrained: dominated by 950/1000 MHz.
        let gzip = r.residency("gzip", 1000).unwrap();
        assert!(
            gzip.fraction_at_or_above(FreqMhz(950)) > 0.7,
            "gzip high-freq share {}",
            gzip.fraction_at_or_above(FreqMhz(950))
        );
        // gzip at 750 cap: squashed onto the cap (allowing the one
        // bootstrap tick at f_max).
        let gzip750 = r.residency("gzip", 750).unwrap();
        assert!(gzip750.fraction_at(FreqMhz(750)) > 0.7);
        assert!(gzip750.fraction_at_or_above(FreqMhz(800)) < 0.02);
        // mcf unconstrained: majority of time at ≈650 MHz.
        let mcf = r.residency("mcf", 1000).unwrap();
        assert!(
            mcf.fraction_at(FreqMhz(650)) > 0.4,
            "mcf at 650: {}",
            mcf.fraction_at(FreqMhz(650))
        );
        // mcf at 750: nearly unchanged mode.
        let mcf750 = r.residency("mcf", 750).unwrap();
        assert_eq!(mcf750.mode(), Some(FreqMhz(650)));
        // health at 500: pinned at/below the cap.
        let health500 = r.residency("health", 500).unwrap();
        assert!(health500.fraction_at_or_above(FreqMhz(550)) < 0.02);
    }
}
