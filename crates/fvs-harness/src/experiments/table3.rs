//! Table 3: performance and energy of gzip, gap, mcf and health under
//! power constraints.
//!
//! Each application model runs alone on a single processor under fvsst
//! at 140 W (unconstrained), 75 W and 35 W. Performance is completion
//! time normalised to an unmanaged full-speed run; energy is normalised
//! to a system drawing full power for the same duration (the paper's
//! metric — 1.0 means "no better than a non-fvsst system").

use crate::render::TableBuilder;
use crate::runs::{run_capped_app, RunSettings};
use fvs_workloads::{AppBenchmark, APP_BENCHMARKS};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Budgets studied (W).
pub const BUDGETS: [f64; 3] = [140.0, 75.0, 35.0];

/// Per-application results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Column {
    /// Application name.
    pub app: String,
    /// Normalised performance at each budget (BUDGETS order).
    pub perf: [f64; 3],
    /// Normalised energy at each budget.
    pub energy: [f64; 3],
}

/// Result of the Table 3 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// One column per application.
    pub columns: Vec<Table3Column>,
}

fn run_app(app: AppBenchmark, settings: &RunSettings) -> Table3Column {
    // Completion times are measured at dispatch-tick (10 ms) granularity,
    // so runs must stay long enough that quantisation is ≪ the effects
    // measured — hence a higher fast-mode floor than other experiments.
    let instr = settings.instructions(2.0e9).max(1.0e9);
    let runs: Vec<_> = BUDGETS
        .par_iter()
        .map(|&b| run_capped_app(app.workload(instr), b, settings, 600.0))
        .collect();
    // Performance is normalised against the *unconstrained fvsst* run —
    // the paper's Table 3 has Perf@140W ≡ 1 for every application, so
    // its baseline is the managed full-budget system, not a bare one.
    // Energy is normalised against a non-fvsst system doing the same
    // work: 140 W for the full-budget run's duration. (This is the only
    // reading that reproduces the paper's own arithmetic, e.g. mcf's
    // 0.31 at 35 W = 0.25 / 0.81.)
    let reference_s = runs[0].completion_s;
    let reference_j = 140.0 * reference_s;
    let mut perf = [0.0; 3];
    let mut energy = [0.0; 3];
    for (i, r) in runs.iter().enumerate() {
        perf[i] = reference_s / r.completion_s;
        energy[i] = r.energy_j / reference_j;
    }
    Table3Column {
        app: app.name().to_string(),
        perf,
        energy,
    }
}

/// Run the experiment.
pub fn run(settings: &RunSettings) -> Table3Result {
    let columns = APP_BENCHMARKS
        .par_iter()
        .map(|&a| run_app(a, settings))
        .collect();
    Table3Result { columns }
}

impl Table3Result {
    /// Column for one app by name.
    pub fn column(&self, name: &str) -> Option<&Table3Column> {
        self.columns.iter().find(|c| c.app == name)
    }

    /// Render the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new("Table 3: performance and energy under constraint").header(
            std::iter::once("".to_string()).chain(self.columns.iter().map(|c| c.app.clone())),
        );
        for (i, b) in BUDGETS.iter().enumerate() {
            let mut row = vec![format!("Perf @ {b:.0}W")];
            for c in &self.columns {
                row.push(format!("{:.2}", c.perf[i]));
            }
            t.row(row);
        }
        for (i, b) in BUDGETS.iter().enumerate() {
            let mut row = vec![format!("Energy @ {b:.0}W")];
            for c in &self.columns {
                row.push(format!("{:.2}", c.energy[i]));
            }
            t.row(row);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let r = run(&RunSettings::fast());
        let gzip = r.column("gzip").unwrap();
        let gap = r.column("gap").unwrap();
        let mcf = r.column("mcf").unwrap();
        let health = r.column("health").unwrap();

        // Unconstrained: everyone ≈ full performance (within overhead).
        for c in &r.columns {
            assert!(c.perf[0] > 0.95, "{}: perf@140 {}", c.app, c.perf[0]);
        }
        // CPU apps: noticeable sub-linear loss at 75 W, ≈half at 35 W.
        for c in [gzip, gap] {
            assert!(
                (0.70..0.92).contains(&c.perf[1]),
                "{}: perf@75 {}",
                c.app,
                c.perf[1]
            );
            assert!(
                (0.45..0.70).contains(&c.perf[2]),
                "{}: perf@35 {}",
                c.app,
                c.perf[2]
            );
        }
        // Memory apps: ~no loss at 75 W, significant at 35 W.
        for c in [mcf, health] {
            assert!(c.perf[1] > 0.93, "{}: perf@75 {}", c.app, c.perf[1]);
            assert!(
                (0.70..0.97).contains(&c.perf[2]),
                "{}: perf@35 {}",
                c.app,
                c.perf[2]
            );
            assert!(c.perf[2] < c.perf[1], "{}: 35W must cost more", c.app);
            // The headline energy claim: memory apps burn ≈0.4–0.5 of a
            // non-fvsst system even unconstrained.
            assert!(
                (0.35..0.60).contains(&c.energy[0]),
                "{}: energy@140 {}",
                c.app,
                c.energy[0]
            );
        }
        // CPU apps save little energy unconstrained (>0.8).
        for c in [gzip, gap] {
            assert!(c.energy[0] > 0.80, "{}: energy@140 {}", c.app, c.energy[0]);
        }
        // Energy decreases (weakly) as the budget tightens.
        for c in &r.columns {
            assert!(c.energy[2] <= c.energy[0] + 0.02, "{}", c.app);
        }
        // Memory apps retain more performance than CPU apps at 35 W.
        assert!(mcf.perf[2] > gzip.perf[2] + 0.1);
        assert!(health.perf[2] > gap.perf[2] + 0.1);
    }
}
