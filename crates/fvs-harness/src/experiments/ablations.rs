//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Policy comparison** (the paper's thesis): non-uniform fvsst vs
//!    uniform scaling, node power-down, utilization-driven DVFS, the
//!    ground-truth oracle, and no management — all under the same budget
//!    drop on the same diverse workload.
//! 2. **Cascade scenario** (section 2): who survives the supply failure.
//! 3. **Idle detection** (section 5): hot-idle power with and without.
//! 4. **Actuator** (section 6): true DVFS vs fetch throttling under both
//!    power-accounting assumptions.
//! 5. **Demotion order** (Figure 3 step 2): least-predicted-loss vs
//!    round-robin.
//! 6. **ε sweep**: power/performance trade-off of the loss tolerance.
//! 7. **T/t ratio** (section 5): scheduling period vs responsiveness and
//!    overhead.
//! 8. **Discrete vs continuous `f_ideal`** (section 5 extension).

use crate::render::TableBuilder;
use crate::runs::RunSettings;
use fvs_baselines::{NoDvfs, NodePowerDown, Oracle, UniformScaling, UtilizationDriven};
use fvs_power::{BudgetEvent, BudgetSchedule, SupplyBank};
use fvs_sched::{
    DemotionOrder, Policy, RunReport, ScheduledSimulation, SchedulerConfig, SchedulingMode,
};
use fvs_sim::{Machine, MachineBuilder, ThrottlePowerModel};
use fvs_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Row of the policy-comparison ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Mean per-core progress relative to an unconstrained full-speed
    /// run of the same duration (1.0 = nobody slowed down). Per-core
    /// normalisation keeps memory-bound cores — which retire few raw
    /// instructions — from vanishing out of the metric.
    pub progress: f64,
    /// Seconds over budget.
    pub violation_s: f64,
    /// Time-averaged power (W).
    pub avg_power_w: f64,
}

/// Row of the cascade ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeRow {
    /// Policy name.
    pub policy: String,
    /// Whether the supply bank cascaded, and when.
    pub cascaded_at_s: Option<f64>,
    /// Final aggregate power (W).
    pub final_power_w: f64,
}

/// Result bundle for the whole ablation suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// Policy comparison under a budget drop.
    pub policies: Vec<PolicyRow>,
    /// Cascade survival.
    pub cascade: Vec<CascadeRow>,
    /// (idle detection on, off) average power of an all-idle machine.
    pub idle_power_w: (f64, f64),
    /// (actuator name, avg power, violation seconds).
    pub actuators: Vec<(String, f64, f64)>,
    /// (order name, total throughput) under a tight budget.
    pub demotion: Vec<(String, f64)>,
    /// (ε, avg power, throughput).
    pub epsilon: Vec<(f64, f64, f64)>,
    /// (n = T/t, decisions, frequency switches, violation seconds after
    /// drop, throughput).
    pub period: Vec<(u32, u64, u64, f64, f64)>,
    /// (mode name, avg power, throughput).
    pub modes: Vec<(String, f64, f64)>,
    /// Closed-loop power enforcement on honest (dynamic-only) fetch
    /// throttling: (loop name, final power W, violation seconds).
    pub feedback: Vec<(String, f64, f64)>,
    /// Predictor robustness to workload drift: (drift amplitude, mean
    /// |ΔIPC| on the busiest core, violation seconds @294 W).
    pub drift: Vec<(f64, f64, f64)>,
}

/// The diverse 4-core workload every ablation shares.
fn diverse_machine(settings: &RunSettings) -> Machine {
    MachineBuilder::p630()
        .workload(0, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
        .workload(1, WorkloadSpec::synthetic(60.0, 1.0e13).looping())
        .workload(2, WorkloadSpec::synthetic(30.0, 1.0e13).looping())
        .workload(3, WorkloadSpec::synthetic(5.0, 1.0e13).looping())
        .seed(settings.seed)
        .build()
}

/// Constant tight budget for the steady-state policy comparison. (A
/// *drop* would let policies coast unconstrained for part of the run and
/// blur the comparison; the transient is studied by the cascade and
/// period ablations.)
fn tight_budget() -> BudgetSchedule {
    BudgetSchedule::constant(250.0)
}

fn drop_budget() -> BudgetSchedule {
    BudgetSchedule::with_events(
        560.0,
        vec![BudgetEvent {
            at_s: 1.0,
            budget_w: 294.0,
        }],
    )
}

/// Per-core body instructions of an unconstrained full-speed run — the
/// progress denominator.
fn unconstrained_reference(settings: &RunSettings, dur: f64) -> Vec<f64> {
    let mut machine = diverse_machine(settings);
    machine.run_for(dur, 0.01);
    (0..machine.num_cores())
        .map(|i| machine.core(i).stats().body_instructions)
        .collect()
}

fn progress(report: &RunReport, reference: &[f64]) -> f64 {
    let per_core: f64 = report
        .body_instructions
        .iter()
        .zip(reference)
        .map(|(done, full)| (done / full).min(1.0))
        .sum();
    per_core / reference.len() as f64
}

fn policy_row<P: Policy>(
    name: &str,
    policy: P,
    settings: &RunSettings,
    dur: f64,
    reference: &[f64],
) -> PolicyRow {
    let mut sim =
        ScheduledSimulation::with_policy(diverse_machine(settings), policy, tight_budget(), 0.01)
            .without_trace();
    let report = sim.run_for(dur);
    PolicyRow {
        policy: name.to_string(),
        progress: progress(&report, reference),
        violation_s: report.violation_s,
        avg_power_w: report.avg_power_w,
    }
}

fn run_policies(settings: &RunSettings, dur: f64) -> Vec<PolicyRow> {
    let reference = unconstrained_reference(settings, dur);
    let fvsst = {
        let machine = diverse_machine(settings);
        let config = SchedulerConfig::p630().with_budget(tight_budget());
        let mut sim = ScheduledSimulation::new(machine, config).without_trace();
        let report = sim.run_for(dur);
        PolicyRow {
            policy: "fvsst".to_string(),
            progress: progress(&report, &reference),
            violation_s: report.violation_s,
            avg_power_w: report.avg_power_w,
        }
    };
    vec![
        fvsst,
        policy_row("oracle", Oracle::p630(), settings, dur, &reference),
        policy_row(
            "uniform-scaling",
            UniformScaling::new(),
            settings,
            dur,
            &reference,
        ),
        policy_row(
            "node-powerdown",
            NodePowerDown::new(),
            settings,
            dur,
            &reference,
        ),
        policy_row(
            "utilization-dvfs",
            UtilizationDriven::default(),
            settings,
            dur,
            &reference,
        ),
        policy_row("no-dvfs", NoDvfs::new(), settings, dur, &reference),
    ]
}

fn run_cascade(settings: &RunSettings, dur: f64) -> Vec<CascadeRow> {
    let mut rows = Vec::new();
    // fvsst
    {
        let machine = diverse_machine(settings);
        let config = SchedulerConfig::p630();
        let mut sim = ScheduledSimulation::new(machine, config)
            .with_supply_bank(SupplyBank::p630_scenario(1.0), 186.0)
            .without_trace();
        let report = sim.run_for(dur);
        rows.push(CascadeRow {
            policy: "fvsst".to_string(),
            cascaded_at_s: report.cascaded_at_s,
            final_power_w: report.final_power_w,
        });
    }
    // uniform scaling (also survives — it just hurts more)
    {
        let mut sim = ScheduledSimulation::with_policy(
            diverse_machine(settings),
            UniformScaling::new(),
            BudgetSchedule::constant(f64::INFINITY),
            0.01,
        )
        .with_supply_bank(SupplyBank::p630_scenario(1.0), 186.0)
        .without_trace();
        let report = sim.run_for(dur);
        rows.push(CascadeRow {
            policy: "uniform-scaling".to_string(),
            cascaded_at_s: report.cascaded_at_s,
            final_power_w: report.final_power_w,
        });
    }
    // no management: cascades
    {
        let mut sim = ScheduledSimulation::with_policy(
            diverse_machine(settings),
            NoDvfs::new(),
            BudgetSchedule::constant(f64::INFINITY),
            0.01,
        )
        .with_supply_bank(SupplyBank::p630_scenario(1.0), 186.0)
        .without_trace();
        let report = sim.run_for(dur);
        rows.push(CascadeRow {
            policy: "no-dvfs".to_string(),
            cascaded_at_s: report.cascaded_at_s,
            final_power_w: report.final_power_w,
        });
    }
    rows
}

fn run_idle(settings: &RunSettings, dur: f64) -> (f64, f64) {
    let run = |detect: bool| {
        let machine = MachineBuilder::p630().seed(settings.seed).build();
        let config = SchedulerConfig::p630().with_idle_detection(detect);
        let mut sim = ScheduledSimulation::new(machine, config).without_trace();
        sim.run_for(dur).avg_power_w
    };
    (run(true), run(false))
}

fn run_actuators(settings: &RunSettings, dur: f64) -> Vec<(String, f64, f64)> {
    let build = |kind: u8| -> Machine {
        let mut b = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
            .workload(1, WorkloadSpec::synthetic(10.0, 1.0e13).looping())
            .seed(settings.seed);
        b = match kind {
            0 => b,
            1 => b.throttling(ThrottlePowerModel::AsDvfs),
            _ => b.throttling(ThrottlePowerModel::DynamicOnly),
        };
        b.build()
    };
    ["dvfs", "throttle-as-dvfs", "throttle-dynamic-only"]
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(294.0));
            let mut sim = ScheduledSimulation::new(build(k as u8), config).without_trace();
            let report = sim.run_for(dur);
            (name.to_string(), report.avg_power_w, report.violation_s)
        })
        .collect()
}

fn run_demotion(settings: &RunSettings, dur: f64) -> Vec<(String, f64)> {
    [
        ("least-loss", DemotionOrder::LeastPredictedLoss),
        ("round-robin", DemotionOrder::RoundRobin),
    ]
    .iter()
    .map(|(name, order)| {
        let machine = diverse_machine(settings);
        let mut config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(250.0));
        config.algorithm.demotion_order = *order;
        let mut sim = ScheduledSimulation::new(machine, config).without_trace();
        let report = sim.run_for(dur);
        (
            name.to_string(),
            report.body_instructions.iter().sum::<f64>(),
        )
    })
    .collect()
}

fn run_epsilon(settings: &RunSettings, dur: f64) -> Vec<(f64, f64, f64)> {
    [0.01, 0.02, 0.05, 0.10, 0.20]
        .iter()
        .map(|&eps| {
            let machine = diverse_machine(settings);
            let config = SchedulerConfig::p630()
                .with_epsilon(eps)
                .with_budget(BudgetSchedule::constant(f64::INFINITY));
            let mut sim = ScheduledSimulation::new(machine, config).without_trace();
            let report = sim.run_for(dur);
            (
                eps,
                report.avg_power_w,
                report.body_instructions.iter().sum::<f64>(),
            )
        })
        .collect()
}

fn run_period(settings: &RunSettings, dur: f64) -> Vec<(u32, u64, u64, f64, f64)> {
    [2u32, 5, 10, 20, 50]
        .iter()
        .map(|&n| {
            let machine = diverse_machine(settings);
            let config = SchedulerConfig::p630().with_budget(drop_budget()).with_n(n);
            let mut sim = ScheduledSimulation::new(machine, config).without_trace();
            let report = sim.run_for(dur);
            (
                n,
                report.decisions,
                report.frequency_switches,
                report.violation_s,
                report.body_instructions.iter().sum::<f64>(),
            )
        })
        .collect()
}

fn run_modes(settings: &RunSettings, dur: f64) -> Vec<(String, f64, f64)> {
    [
        ("discrete-epsilon", SchedulingMode::DiscreteEpsilon),
        ("continuous-ideal", SchedulingMode::ContinuousIdeal),
    ]
    .iter()
    .map(|(name, mode)| {
        let machine = diverse_machine(settings);
        let config = SchedulerConfig::p630()
            .with_mode(*mode)
            .with_budget(BudgetSchedule::constant(f64::INFINITY));
        let mut sim = ScheduledSimulation::new(machine, config).without_trace();
        let report = sim.run_for(dur);
        (
            name.to_string(),
            report.avg_power_w,
            report.body_instructions.iter().sum::<f64>(),
        )
    })
    .collect()
}

fn run_feedback(settings: &RunSettings, dur: f64) -> Vec<(String, f64, f64)> {
    use fvs_sched::{FeedbackGuard, FvsstScheduler};
    let build = || {
        MachineBuilder::p630()
            .throttling(ThrottlePowerModel::DynamicOnly)
            .workload(0, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
            .workload(1, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
            .workload(2, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
            .workload(3, WorkloadSpec::synthetic(100.0, 1.0e13).looping())
            .seed(settings.seed)
            .build()
    };
    let budget = BudgetSchedule::constant(294.0);
    let mut rows = Vec::new();
    {
        let config = SchedulerConfig::p630().with_budget(budget.clone());
        let mut sim = ScheduledSimulation::new(build(), config).without_trace();
        let report = sim.run_for(dur);
        rows.push((
            "open-loop".to_string(),
            report.final_power_w,
            report.violation_s,
        ));
    }
    {
        let guard = FeedbackGuard::new(FvsstScheduler::new(4, SchedulerConfig::p630()));
        let mut sim =
            ScheduledSimulation::with_policy(build(), guard, budget, 0.01).without_trace();
        let report = sim.run_for(dur);
        rows.push((
            "feedback".to_string(),
            report.final_power_w,
            report.violation_s,
        ));
    }
    rows
}

fn run_drift(settings: &RunSettings, dur: f64) -> Vec<(f64, f64, f64)> {
    use fvs_workloads::SyntheticConfig;
    [0.0, 0.2, 0.4, 0.6]
        .iter()
        .map(|&amp| {
            let drifting = |intensity: f64| {
                SyntheticConfig::single(intensity, 5.0e7)
                    .body_only()
                    .looping()
                    .build()
                    .with_drift(amp)
            };
            let machine = MachineBuilder::p630()
                .workload(0, drifting(90.0))
                .workload(1, drifting(60.0))
                .workload(2, drifting(35.0))
                .workload(3, drifting(10.0))
                .seed(settings.seed)
                .build();
            let config = SchedulerConfig::p630().with_budget(BudgetSchedule::constant(294.0));
            let mut sim = ScheduledSimulation::new(machine, config).without_trace();
            let report = sim.run_for(dur);
            let err = (0..4)
                .map(|i| sim.policy().error_stats(i).mean_abs())
                .fold(0.0f64, f64::max);
            (amp, err, report.violation_s)
        })
        .collect()
}

/// Run the whole suite.
pub fn run(settings: &RunSettings) -> AblationResult {
    let dur = if settings.fast { 2.0 } else { 5.0 };
    AblationResult {
        policies: run_policies(settings, dur),
        cascade: run_cascade(settings, dur.max(3.0)),
        idle_power_w: run_idle(settings, dur.min(2.0)),
        actuators: run_actuators(settings, dur.min(3.0)),
        demotion: run_demotion(settings, dur.min(3.0)),
        epsilon: run_epsilon(settings, dur.min(3.0)),
        period: run_period(settings, dur),
        modes: run_modes(settings, dur.min(3.0)),
        feedback: run_feedback(settings, dur.max(4.0)),
        drift: run_drift(settings, dur.min(3.0)),
    }
}

impl AblationResult {
    /// Progress of a named policy row.
    pub fn progress_of(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|p| p.policy == policy)
            .map(|p| p.progress)
    }

    /// Render the whole suite.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = TableBuilder::new("Ablation 1: policies under a constant 250 W budget")
            .header(["policy", "mean progress", "violation (s)", "avg power (W)"]);
        for p in &self.policies {
            t.row([
                p.policy.clone(),
                format!("{:.3}", p.progress),
                format!("{:.2}", p.violation_s),
                format!("{:.0}", p.avg_power_w),
            ]);
        }
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 2: supply-failure cascade (section 2)").header([
            "policy",
            "cascaded",
            "final power (W)",
        ]);
        for c in &self.cascade {
            t.row([
                c.policy.clone(),
                c.cascaded_at_s
                    .map(|t| format!("yes @ {t:.2}s"))
                    .unwrap_or_else(|| "no".to_string()),
                format!("{:.0}", c.final_power_w),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());

        out.push_str(&format!(
            "\nAblation 3: all-idle machine average power — idle detection on: {:.0} W, off: {:.0} W\n",
            self.idle_power_w.0, self.idle_power_w.1
        ));

        let mut t = TableBuilder::new("Ablation 4: actuator under a 294 W budget").header([
            "actuator",
            "avg power (W)",
            "violation (s)",
        ]);
        for (name, p, v) in &self.actuators {
            t.row([name.clone(), format!("{p:.0}"), format!("{v:.2}")]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 5: pass-2 demotion order @250 W")
            .header(["order", "throughput (Ginstr)"]);
        for (name, thr) in &self.demotion {
            t.row([name.clone(), format!("{:.2}", thr / 1e9)]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 6: ε sweep (unconstrained)").header([
            "ε",
            "avg power (W)",
            "throughput (Ginstr)",
        ]);
        for (e, p, thr) in &self.epsilon {
            t.row([
                format!("{e:.2}"),
                format!("{p:.0}"),
                format!("{:.2}", thr / 1e9),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 7: scheduling period T = n·t").header([
            "n",
            "decisions",
            "freq switches",
            "violation (s)",
            "throughput (Ginstr)",
        ]);
        for (n, d, sw, v, thr) in &self.period {
            t.row([
                format!("{n}"),
                format!("{d}"),
                format!("{sw}"),
                format!("{v:.2}"),
                format!("{:.2}", thr / 1e9),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 8: discrete ε-scan vs continuous f_ideal")
            .header(["mode", "avg power (W)", "throughput (Ginstr)"]);
        for (name, p, thr) in &self.modes {
            t.row([name.clone(), format!("{p:.0}"), format!("{:.2}", thr / 1e9)]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t =
            TableBuilder::new("Ablation 9: measured-power feedback on honest throttling @294 W")
                .header(["control", "final power (W)", "violation (s)"]);
        for (name, p, v) in &self.feedback {
            t.row([name.clone(), format!("{p:.0}"), format!("{v:.2}")]);
        }
        out.push('\n');
        out.push_str(&t.render());

        let mut t = TableBuilder::new("Ablation 10: predictor robustness to workload drift")
            .header([
                "drift amplitude",
                "worst mean |ΔIPC|",
                "violation (s) @294 W",
            ]);
        for (amp, err, v) in &self.drift {
            t.row([format!("{amp:.1}"), format!("{err:.3}"), format!("{v:.2}")]);
        }
        out.push('\n');
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_suite_shape() {
        let r = run(&RunSettings::fast());

        // 1. fvsst beats uniform scaling and power-down on mean progress
        //    while meeting the budget; no-dvfs violates.
        let fvsst = r.progress_of("fvsst").unwrap();
        let uniform = r.progress_of("uniform-scaling").unwrap();
        let powerdown = r.progress_of("node-powerdown").unwrap();
        assert!(fvsst > uniform, "fvsst {fvsst} vs uniform {uniform}");
        assert!(fvsst > powerdown, "fvsst {fvsst} vs powerdown {powerdown}");
        let no_dvfs = r.policies.iter().find(|p| p.policy == "no-dvfs").unwrap();
        assert!(no_dvfs.violation_s > 0.5);
        let fvsst_row = r.policies.iter().find(|p| p.policy == "fvsst").unwrap();
        assert!(fvsst_row.violation_s < 0.1);
        // Oracle is an upper bound (within noise).
        let oracle = r.progress_of("oracle").unwrap();
        assert!(oracle >= fvsst * 0.97);

        // 2. fvsst survives the cascade; no-dvfs does not.
        let by_name = |n: &str| r.cascade.iter().find(|c| c.policy == n).unwrap();
        assert!(by_name("fvsst").cascaded_at_s.is_none());
        assert!(by_name("no-dvfs").cascaded_at_s.is_some());

        // 3. Idle detection slashes idle power.
        assert!(
            r.idle_power_w.0 < r.idle_power_w.1 * 0.25,
            "idle {:?}",
            r.idle_power_w
        );

        // 4. Dynamic-only throttling saves less power than as-DVFS.
        let p = |name: &str| r.actuators.iter().find(|(n, ..)| n == name).unwrap();
        assert!(p("throttle-dynamic-only").1 > p("throttle-as-dvfs").1);

        // 5. Least-loss demotion is at least as good as round-robin.
        assert!(r.demotion[0].1 >= r.demotion[1].1 * 0.98);

        // 6. Wider ε → lower power.
        let first = r.epsilon.first().unwrap();
        let last = r.epsilon.last().unwrap();
        assert!(last.1 < first.1, "eps power {first:?} vs {last:?}");

        // 7. Larger n → fewer decisions.
        assert!(r.period.first().unwrap().1 > r.period.last().unwrap().1);

        // 8. Both modes land on similar power (within ~15%).
        let (pd, pc) = (r.modes[0].1, r.modes[1].1);
        assert!((pd - pc).abs() / pd < 0.15, "{pd} vs {pc}");

        // 9. Open loop overshoots on honest throttling; feedback ends
        //    compliant.
        let open = r.feedback.iter().find(|(n, ..)| n == "open-loop").unwrap();
        let fb = r.feedback.iter().find(|(n, ..)| n == "feedback").unwrap();
        assert!(open.1 > 294.0, "open loop should overshoot: {}", open.1);
        assert!(fb.1 <= 294.0, "feedback final power {}", fb.1);
        assert!(fb.2 < open.2, "feedback should violate less");

        // 10. Drift raises prediction error but never budget violations.
        let err0 = r.drift.first().unwrap().1;
        let err_max = r.drift.last().unwrap().1;
        assert!(
            err_max > err0,
            "drift must raise error: {err0} vs {err_max}"
        );
        for (amp, _, v) in &r.drift {
            assert!(*v <= 0.05, "drift {amp}: violated {v}s");
        }
    }
}
