//! Experiment harness: regenerates every table and figure of Kotla et
//! al. (2005) on the simulated substrate, plus the ablations DESIGN.md
//! calls out.
//!
//! Each experiment lives in [`experiments`] as a `run(settings) ->
//! XxxResult` function returning structured data, with a `render()`
//! producing the same rows/series the paper prints. The `fvsst-exp`
//! binary dispatches by experiment id (`table1`, `fig6`, `ablation`,
//! `all`, …); the Criterion benches in `crates/bench` wrap the same
//! functions.
//!
//! Large parameter sweeps fan out with rayon — every point is an
//! independent simulation, which is exactly the shape `par_iter` wants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod export;
pub mod render;
pub mod runs;

pub use export::{run_and_write_json, ExportedResult};
pub use render::{Series, TableBuilder};
pub use runs::{run_capped_app, CappedRun, RunSettings};
