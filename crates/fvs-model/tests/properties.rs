//! Property-based tests of the model invariants the scheduler relies on.

use fvs_model::{
    ideal_frequency_hz, perf_loss, CounterDelta, CpiModel, Estimator, FreqMhz, FrequencySet,
    MemoryLatencies, PerfLossTable,
};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = CpiModel> {
    // cpi0 in [0.2, 10] cycles/instr; M in [0, 50 ns]/instr.
    (0.2f64..10.0, 0.0f64..50.0e-9).prop_map(|(cpi0, m)| CpiModel::from_components(cpi0, m))
}

fn arb_freq() -> impl Strategy<Value = FreqMhz> {
    (250u32..=1000).prop_map(FreqMhz)
}

proptest! {
    /// Perf(f) is strictly increasing in f: more clock never hurts in the
    /// model (saturation flattens, never inverts).
    #[test]
    fn perf_monotone_in_frequency(m in arb_model(), a in arb_freq(), b in arb_freq()) {
        prop_assume!(a < b);
        prop_assert!(m.perf_at(a) < m.perf_at(b));
    }

    /// IPC(f) is non-increasing in f (memory stalls cost more cycles at
    /// higher clocks).
    #[test]
    fn ipc_non_increasing_in_frequency(m in arb_model(), a in arb_freq(), b in arb_freq()) {
        prop_assume!(a < b);
        prop_assert!(m.ipc_at(a) >= m.ipc_at(b) - 1e-12);
    }

    /// Perf never exceeds the saturation asymptote 1/M.
    #[test]
    fn perf_below_asymptote(m in arb_model(), f in arb_freq()) {
        prop_assert!(m.perf_at(f) < m.perf_asymptote());
    }

    /// perf_loss(f_max, f) ∈ [0, 1) for f ≤ f_max, and 0 at f_max itself.
    #[test]
    fn perf_loss_bounded(m in arb_model(), f in arb_freq()) {
        let f_max = FreqMhz(1000);
        let loss = perf_loss(&m, f_max, f);
        prop_assert!(loss >= 0.0);
        prop_assert!(loss < 1.0);
    }

    /// CPU-bound bound: loss from f_max to f can never exceed the clock
    /// ratio loss 1 − f/f_max (memory stalls only soften the blow).
    #[test]
    fn loss_never_exceeds_clock_ratio(m in arb_model(), f in arb_freq()) {
        let f_max = FreqMhz(1000);
        let loss = perf_loss(&m, f_max, f);
        let clock_loss = 1.0 - f.ratio_to(f_max);
        prop_assert!(loss <= clock_loss + 1e-12);
    }

    /// The ε-constrained pick from a PerfLossTable is admissible and
    /// minimal within the set.
    #[test]
    fn epsilon_pick_admissible_and_minimal(m in arb_model(), eps in 0.005f64..0.5) {
        let set = FrequencySet::p630();
        let table = PerfLossTable::build(&m, &set);
        let pick = table.epsilon_constrained(eps);
        prop_assert!(table.entry(pick).unwrap().loss_vs_ref < eps);
        if let Some(lower) = set.step_down(pick) {
            prop_assert!(table.entry(lower).unwrap().loss_vs_ref >= eps);
        }
    }

    /// Continuous f_ideal delivers performance within floating-point slack
    /// of the (1 − ε) target, and never exceeds f_max.
    #[test]
    fn ideal_frequency_hits_target(m in arb_model(), eps in 0.0f64..0.5) {
        let f_max = FreqMhz(1000);
        let f_hz = ideal_frequency_hz(&m, f_max, eps);
        prop_assert!(f_hz <= f_max.hz() + 1.0);
        let target = m.perf_at(f_max) * (1.0 - eps);
        let got = m.perf_at_hz(f_hz);
        prop_assert!((got - target).abs() <= target * 1e-9 + 1e-6);
    }

    /// Estimator round-trip: noise-free counters at any frequency recover
    /// the generating model (above the cpi0 floor).
    #[test]
    fn estimator_roundtrip(m in arb_model(), f in arb_freq(),
                           n_l2 in 0.0f64..0.05, n_l3 in 0.0f64..0.02, n_mem in 0.0f64..0.02) {
        prop_assume!(m.cpi0 >= 0.2);
        let lat = MemoryLatencies::P630;
        // Make a model whose M actually derives from the drawn rates so
        // the synthesized counters are self-consistent.
        let mem_time = n_l2 * lat.l2_s + n_l3 * lat.l3_s + n_mem * lat.mem_s;
        let truth = CpiModel::from_components(m.cpi0, mem_time);
        let instr = 1.0e7;
        let delta = CounterDelta {
            instructions: instr,
            cycles: truth.cpi_at(f) * instr,
            l2_accesses: n_l2 * instr,
            l3_accesses: n_l3 * instr,
            mem_accesses: n_mem * instr,
        };
        let est = Estimator::new(lat);
        let fitted = est.estimate(&delta, f).unwrap();
        prop_assert!((fitted.cpi0 - truth.cpi0).abs() < 1e-6);
        prop_assert!((fitted.mem_time_per_instr - truth.mem_time_per_instr).abs() < 1e-15);
        // And the fitted model predicts the same perf at every other freq.
        for g in FrequencySet::p630().iter() {
            let rel = (fitted.perf_at(g) - truth.perf_at(g)).abs() / truth.perf_at(g);
            prop_assert!(rel < 1e-6);
        }
    }

    /// frequency_for_perf_hz inverts perf_at_hz on its valid domain.
    #[test]
    fn frequency_perf_inverse(m in arb_model(), f in arb_freq()) {
        let target = m.perf_at(f);
        let solved = m.frequency_for_perf_hz(target).unwrap();
        prop_assert!((solved - f.hz()).abs() / f.hz() < 1e-9);
    }

    /// FrequencySet navigation is internally consistent.
    #[test]
    fn frequency_set_navigation(idx in 0usize..16) {
        let set = FrequencySet::p630();
        let f = set.as_slice()[idx];
        if let Some(d) = set.step_down(f) {
            prop_assert_eq!(set.step_up(d), Some(f));
        }
        prop_assert_eq!(set.highest_at_most(f), Some(f));
        prop_assert_eq!(set.lowest_at_least(f), Some(f));
        prop_assert_eq!(set.snap_up(f), f);
    }
}
