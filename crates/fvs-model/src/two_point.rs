//! Two-frequency calibration (footnote 1, first alternative).
//!
//! The production predictor assumes constant memory latencies measured
//! once per platform. The paper's footnote describes an alternative from
//! its companion work \[2\]: take counter measurements at **two different
//! frequencies** and solve for the model directly, with no latency
//! constants at all. With `CPI(f) = cpi0 + M·f` and two observations
//! `(f₁, cpi₁)` and `(f₂, cpi₂)`:
//!
//! ```text
//! M    = (cpi₂ − cpi₁) / (f₂ − f₁)
//! cpi0 = cpi₁ − M·f₁
//! ```
//!
//! This sidesteps latency mis-calibration entirely but needs the
//! workload to hold still across both measurement windows — its own
//! source of error that the fixed-latency scheme avoids. Both are
//! provided so the trade can be measured.

use crate::counters::CounterDelta;
use crate::cpi::CpiModel;
use crate::freq::FreqMhz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why two-point calibration failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TwoPointError {
    /// The two observations were taken at the same frequency.
    SameFrequency,
    /// An observation had no retired instructions.
    EmptyObservation,
    /// The solved model was invalid (negative `M` beyond tolerance or
    /// non-positive `cpi0`) — the workload shifted between windows.
    Inconsistent,
    /// An observation's instruction or cycle count was non-finite — a
    /// corrupted counter read. Rejected so a NaN can never propagate
    /// into a `PerfLossTable`.
    NonFinite,
}

impl fmt::Display for TwoPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoPointError::SameFrequency => {
                write!(f, "two-point calibration needs two distinct frequencies")
            }
            TwoPointError::EmptyObservation => {
                write!(f, "an observation window retired no instructions")
            }
            TwoPointError::Inconsistent => write!(
                f,
                "observations are inconsistent with CPI(f) = cpi0 + M*f (workload shifted?)"
            ),
            TwoPointError::NonFinite => write!(
                f,
                "an observation's instruction/cycle counts are non-finite (corrupted counter read)"
            ),
        }
    }
}

impl std::error::Error for TwoPointError {}

/// One measurement: counter deltas taken while running at a known
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The frequency the core ran at.
    pub freq: FreqMhz,
    /// The counters accumulated over the window.
    pub delta: CounterDelta,
}

impl Observation {
    /// Construct from a sample.
    pub fn new(freq: FreqMhz, delta: CounterDelta) -> Self {
        Observation { freq, delta }
    }

    fn cpi(&self) -> Option<f64> {
        if self.delta.instructions > 0.0 {
            Some(self.delta.cycles / self.delta.instructions)
        } else {
            None
        }
    }
}

/// Tolerance for a slightly negative solved `M` (measurement noise on a
/// CPU-bound workload legitimately straddles zero); anything below is
/// rejected as a phase shift.
const NEGATIVE_M_TOLERANCE: f64 = 1.0e-10;

/// Solve `CPI(f) = cpi0 + M·f` from two observations at distinct
/// frequencies.
pub fn calibrate_two_point(a: &Observation, b: &Observation) -> Result<CpiModel, TwoPointError> {
    if a.freq == b.freq {
        return Err(TwoPointError::SameFrequency);
    }
    // Only instructions and cycles feed the fit; a corrupted read there
    // (NaN, ±∞, negative) must fail typed instead of dissolving into the
    // arithmetic below — `NaN < -tol` is false, so without this check a
    // NaN pair would silently solve to `M = 0` and poison the model.
    for obs in [a, b] {
        let d = &obs.delta;
        if !(d.instructions.is_finite()
            && d.cycles.is_finite()
            && d.instructions >= 0.0
            && d.cycles >= 0.0)
        {
            return Err(TwoPointError::NonFinite);
        }
    }
    let (cpi_a, cpi_b) = match (a.cpi(), b.cpi()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Err(TwoPointError::EmptyObservation),
    };
    let m = (cpi_b - cpi_a) / (b.freq.hz() - a.freq.hz());
    if m < -NEGATIVE_M_TOLERANCE {
        return Err(TwoPointError::Inconsistent);
    }
    let m = m.max(0.0);
    let cpi0 = cpi_a - m * a.freq.hz();
    if !(cpi0.is_finite() && cpi0 > 0.0) {
        return Err(TwoPointError::Inconsistent);
    }
    Ok(CpiModel::from_components(cpi0, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::synthesize_delta;

    fn observe(model: &CpiModel, f: FreqMhz) -> Observation {
        Observation::new(f, synthesize_delta(model, 0.0, 0.0, 0.0, 1.0e7, f))
    }

    #[test]
    fn recovers_model_exactly_from_clean_observations() {
        let truth = CpiModel::from_components(1.2, 6.0e-9);
        let a = observe(&truth, FreqMhz(600));
        let b = observe(&truth, FreqMhz(1000));
        let fitted = calibrate_two_point(&a, &b).unwrap();
        assert!((fitted.cpi0 - truth.cpi0).abs() < 1e-9);
        assert!((fitted.mem_time_per_instr - truth.mem_time_per_instr).abs() < 1e-18);
    }

    #[test]
    fn works_without_any_latency_knowledge() {
        // Unlike the Estimator, access counts are never consulted — only
        // instructions and cycles.
        let truth = CpiModel::from_components(0.8, 15.0e-9);
        let mut a = observe(&truth, FreqMhz(500));
        let mut b = observe(&truth, FreqMhz(900));
        // Corrupt the access counters completely: must not matter.
        a.delta.mem_accesses = 1.0e12;
        b.delta.l2_accesses = f64::NAN;
        let fitted = calibrate_two_point(&a, &b).unwrap();
        assert!((fitted.cpi0 - truth.cpi0).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_yields_zero_m() {
        let truth = CpiModel::from_components(0.77, 0.0);
        let a = observe(&truth, FreqMhz(250));
        let b = observe(&truth, FreqMhz(1000));
        let fitted = calibrate_two_point(&a, &b).unwrap();
        assert_eq!(fitted.mem_time_per_instr, 0.0);
        assert!((fitted.cpi0 - 0.77).abs() < 1e-9);
    }

    #[test]
    fn same_frequency_rejected() {
        let truth = CpiModel::from_components(1.0, 1.0e-9);
        let a = observe(&truth, FreqMhz(800));
        let b = observe(&truth, FreqMhz(800));
        assert_eq!(
            calibrate_two_point(&a, &b),
            Err(TwoPointError::SameFrequency)
        );
    }

    #[test]
    fn empty_window_rejected() {
        let truth = CpiModel::from_components(1.0, 1.0e-9);
        let a = observe(&truth, FreqMhz(800));
        let b = Observation::new(FreqMhz(1000), CounterDelta::default());
        assert_eq!(
            calibrate_two_point(&a, &b),
            Err(TwoPointError::EmptyObservation)
        );
    }

    #[test]
    fn phase_shift_detected_as_inconsistent() {
        // Window A: memory-bound at high f. Window B: CPU-bound at low f.
        // Solved M comes out strongly negative → inconsistent.
        let mem = CpiModel::from_components(1.0, 20.0e-9);
        let cpu = CpiModel::from_components(1.0, 0.0);
        let a = observe(&mem, FreqMhz(1000));
        let b = observe(&cpu, FreqMhz(500));
        assert_eq!(
            calibrate_two_point(&a, &b),
            Err(TwoPointError::Inconsistent)
        );
    }

    #[test]
    fn non_finite_instruction_or_cycle_counts_fail_typed() {
        let truth = CpiModel::from_components(1.0, 6.0e-9);
        let clean_a = observe(&truth, FreqMhz(600));
        let clean_b = observe(&truth, FreqMhz(1000));
        for corrupt in [
            |d: &mut CounterDelta| d.cycles = f64::NAN,
            |d: &mut CounterDelta| d.instructions = f64::INFINITY,
            |d: &mut CounterDelta| d.cycles = f64::NEG_INFINITY,
            |d: &mut CounterDelta| d.instructions = -1.0e6,
        ] {
            let mut bad = clean_b;
            corrupt(&mut bad.delta);
            assert_eq!(
                calibrate_two_point(&clean_a, &bad),
                Err(TwoPointError::NonFinite)
            );
            // Order must not matter.
            assert_eq!(
                calibrate_two_point(&bad, &clean_a),
                Err(TwoPointError::NonFinite)
            );
        }
        // And the fitted model from clean data is always finite.
        let fitted = calibrate_two_point(&clean_a, &clean_b).unwrap();
        assert!(fitted.is_valid());
    }

    #[test]
    fn agrees_with_latency_based_estimator_on_clean_data() {
        use crate::counters::Estimator;
        use crate::latency::MemoryLatencies;
        let lat = MemoryLatencies::P630;
        let rates = crate::profile::AccessRates {
            l2_per_instr: 0.01,
            l3_per_instr: 0.002,
            mem_per_instr: 0.008,
        };
        let truth = CpiModel::from_components(1.1, rates.stall_time_per_instr(&lat));
        let mk = |f: FreqMhz| {
            synthesize_delta(
                &truth,
                rates.l2_per_instr,
                rates.l3_per_instr,
                rates.mem_per_instr,
                1.0e7,
                f,
            )
        };
        let two_point = calibrate_two_point(
            &Observation::new(FreqMhz(600), mk(FreqMhz(600))),
            &Observation::new(FreqMhz(1000), mk(FreqMhz(1000))),
        )
        .unwrap();
        let latency_based = Estimator::new(lat)
            .estimate(&mk(FreqMhz(1000)), FreqMhz(1000))
            .unwrap();
        assert!((two_point.cpi0 - latency_based.cpi0).abs() < 1e-6);
        assert!((two_point.mem_time_per_instr - latency_based.mem_time_per_instr).abs() < 1e-15);
    }
}
