//! Performance-counter samples and the estimator that fits a [`CpiModel`]
//! from them.
//!
//! The scheduler never sees ground-truth workload parameters. It sees what
//! the Power4+ counters expose: per-interval counts of retired
//! instructions, elapsed cycles, and accesses to each level of the memory
//! hierarchy. This module defines that data contract and the arithmetic
//! that inverts the CPI equation to recover `(cpi0, M)` from one interval
//! observed at a known frequency.

use crate::cpi::CpiModel;
use crate::freq::FreqMhz;
use crate::latency::MemoryLatencies;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counter deltas accumulated over one sampling interval on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Retired instructions.
    pub instructions: f64,
    /// Elapsed core cycles (at whatever frequency the core ran).
    pub cycles: f64,
    /// L2 accesses.
    pub l2_accesses: f64,
    /// L3 accesses.
    pub l3_accesses: f64,
    /// Main-memory accesses.
    pub mem_accesses: f64,
}

impl CounterDelta {
    /// Element-wise accumulation (for aggregating dispatch intervals `t`
    /// into a scheduling interval `T`).
    pub fn accumulate(&mut self, other: &CounterDelta) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.l2_accesses += other.l2_accesses;
        self.l3_accesses += other.l3_accesses;
        self.mem_accesses += other.mem_accesses;
    }

    /// Observed instructions per cycle over the interval.
    pub fn observed_ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions / self.cycles
        }
    }

    /// True when the interval retired enough work to estimate from.
    pub fn is_informative(&self, min_instructions: f64) -> bool {
        self.instructions >= min_instructions && self.cycles > 0.0
    }

    /// True when every counter is finite and non-negative. Real counter
    /// reads can be corrupted (wraparound, racy multi-register reads);
    /// the estimator refuses such windows rather than scheduling on
    /// them.
    pub fn is_sane(&self) -> bool {
        [
            self.instructions,
            self.cycles,
            self.l2_accesses,
            self.l3_accesses,
            self.mem_accesses,
        ]
        .iter()
        .all(|x| x.is_finite() && *x >= 0.0)
    }
}

/// A sliding accumulation window: collects `n` dispatch-interval deltas
/// (`t` in the paper) and exposes their sum as one scheduling observation
/// (`T = n·t`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CounterWindow {
    sum: CounterDelta,
    samples: u32,
}

impl CounterWindow {
    /// Empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one dispatch-interval delta.
    pub fn push(&mut self, delta: &CounterDelta) {
        self.sum.accumulate(delta);
        self.samples += 1;
    }

    /// Number of accumulated samples.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// The aggregate delta so far.
    pub fn total(&self) -> &CounterDelta {
        &self.sum
    }

    /// Take the aggregate and reset the window for the next period.
    pub fn drain(&mut self) -> CounterDelta {
        let out = self.sum;
        *self = Self::default();
        out
    }
}

/// Why an estimate could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimateError {
    /// Too few instructions retired in the window to trust the counters.
    TooFewInstructions,
    /// The interval's frequency was zero or the cycle count was empty.
    NoCycles,
    /// A counter was non-finite or negative (corrupted read).
    CorruptCounters,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::TooFewInstructions => {
                write!(f, "too few instructions in sampling window")
            }
            EstimateError::NoCycles => write!(f, "no cycles elapsed in sampling window"),
            EstimateError::CorruptCounters => {
                write!(f, "counter window contains non-finite or negative values")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Fits a [`CpiModel`] from a counter delta observed at a known frequency.
///
/// Inversion of the CPI equation: with the platform latencies `T_i`
/// assumed constant (the paper's simplification),
///
/// ```text
/// M    = (N_l2·T_l2 + N_l3·T_l3 + N_mem·T_mem) / instructions
/// cpi0 = cycles/instructions − M · f
/// ```
///
/// `cpi0` is clamped to a small positive floor: measurement noise can push
/// the subtraction negative for extremely memory-bound intervals, and a
/// non-positive `cpi0` would predict super-linear speedup from frequency,
/// which the scheduler must never believe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimator {
    /// Platform latency constants used for the inversion.
    pub latencies: MemoryLatencies,
    /// Minimum instructions per window for an estimate to be attempted.
    pub min_instructions: f64,
    /// Floor applied to the frequency-independent CPI component.
    pub cpi0_floor: f64,
}

impl Estimator {
    /// Estimator with the paper's platform constants and pragmatic
    /// defaults: at least 10k instructions per window, `cpi0 ≥ 0.05`
    /// (an effective IPC ceiling of 20, far above any real core).
    pub fn new(latencies: MemoryLatencies) -> Self {
        Estimator {
            latencies,
            min_instructions: 1.0e4,
            cpi0_floor: 0.05,
        }
    }

    /// Fit a model from `delta` observed while the core ran at `freq`.
    pub fn estimate(&self, delta: &CounterDelta, freq: FreqMhz) -> Result<CpiModel, EstimateError> {
        if !delta.is_sane() {
            return Err(EstimateError::CorruptCounters);
        }
        if delta.cycles <= 0.0 || freq.0 == 0 {
            return Err(EstimateError::NoCycles);
        }
        if !delta.is_informative(self.min_instructions) {
            return Err(EstimateError::TooFewInstructions);
        }
        let instr = delta.instructions;
        let mem_time = (delta.l2_accesses * self.latencies.l2_s
            + delta.l3_accesses * self.latencies.l3_s
            + delta.mem_accesses * self.latencies.mem_s)
            / instr;
        let observed_cpi = delta.cycles / instr;
        let cpi0 = (observed_cpi - mem_time * freq.hz()).max(self.cpi0_floor);
        Ok(CpiModel::from_components(cpi0, mem_time))
    }
}

/// Synthesize the counter delta a *noise-free* machine would report for a
/// workload described by `model` with the given per-instruction access
/// rates, running `instructions` at `freq`. Used by the simulator and by
/// round-trip tests of the estimator.
pub fn synthesize_delta(
    model: &CpiModel,
    rates_l2: f64,
    rates_l3: f64,
    rates_mem: f64,
    instructions: f64,
    freq: FreqMhz,
) -> CounterDelta {
    CounterDelta {
        instructions,
        cycles: model.cpi_at(freq) * instructions,
        l2_accesses: rates_l2 * instructions,
        l3_accesses: rates_l3 * instructions,
        mem_accesses: rates_mem * instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AccessRates, ExecutionProfile};

    fn profile() -> ExecutionProfile {
        ExecutionProfile {
            alpha: 1.5,
            l1_stall_cycles_per_instr: 0.2,
            rates: AccessRates {
                l2_per_instr: 0.012,
                l3_per_instr: 0.003,
                mem_per_instr: 0.006,
            },
        }
    }

    #[test]
    fn estimator_roundtrips_noise_free_counters() {
        let lat = MemoryLatencies::P630;
        let p = profile();
        let truth = CpiModel::from_profile(&p, &lat);
        let est = Estimator::new(lat);
        for f in [FreqMhz(250), FreqMhz(650), FreqMhz(1000)] {
            let delta = synthesize_delta(
                &truth,
                p.rates.l2_per_instr,
                p.rates.l3_per_instr,
                p.rates.mem_per_instr,
                1.0e7,
                f,
            );
            let fitted = est.estimate(&delta, f).unwrap();
            assert!((fitted.cpi0 - truth.cpi0).abs() < 1e-9);
            assert!((fitted.mem_time_per_instr - truth.mem_time_per_instr).abs() < 1e-18);
        }
    }

    #[test]
    fn estimate_rejects_empty_windows() {
        let est = Estimator::new(MemoryLatencies::P630);
        let empty = CounterDelta::default();
        assert_eq!(
            est.estimate(&empty, FreqMhz(1000)),
            Err(EstimateError::NoCycles)
        );
        let tiny = CounterDelta {
            instructions: 10.0,
            cycles: 20.0,
            ..Default::default()
        };
        assert_eq!(
            est.estimate(&tiny, FreqMhz(1000)),
            Err(EstimateError::TooFewInstructions)
        );
        assert_eq!(
            est.estimate(&tiny, FreqMhz(0)),
            Err(EstimateError::NoCycles)
        );
    }

    #[test]
    fn corrupted_counters_rejected() {
        let est = Estimator::new(MemoryLatencies::P630);
        let mut d = CounterDelta {
            instructions: 1.0e6,
            cycles: 2.0e6,
            ..Default::default()
        };
        d.mem_accesses = f64::NAN;
        assert_eq!(
            est.estimate(&d, FreqMhz(1000)),
            Err(EstimateError::CorruptCounters)
        );
        d.mem_accesses = -5.0;
        assert_eq!(
            est.estimate(&d, FreqMhz(1000)),
            Err(EstimateError::CorruptCounters)
        );
        d.mem_accesses = f64::INFINITY;
        assert_eq!(
            est.estimate(&d, FreqMhz(1000)),
            Err(EstimateError::CorruptCounters)
        );
    }

    #[test]
    fn cpi0_floor_prevents_superlinear_models() {
        let lat = MemoryLatencies::P630;
        let est = Estimator::new(lat);
        // Corrupted counters: cycles far lower than the memory stalls imply.
        let delta = CounterDelta {
            instructions: 1.0e6,
            cycles: 1.0e6, // CPI 1.0
            l2_accesses: 0.0,
            l3_accesses: 0.0,
            mem_accesses: 1.0e5, // implies 39.3 cycles/instr of stalls at 1 GHz
        };
        let m = est.estimate(&delta, FreqMhz(1000)).unwrap();
        assert!(m.cpi0 >= est.cpi0_floor);
        assert!(m.is_valid());
    }

    #[test]
    fn window_accumulates_and_drains() {
        let mut w = CounterWindow::new();
        let d = CounterDelta {
            instructions: 100.0,
            cycles: 200.0,
            l2_accesses: 3.0,
            l3_accesses: 2.0,
            mem_accesses: 1.0,
        };
        for _ in 0..10 {
            w.push(&d);
        }
        assert_eq!(w.samples(), 10);
        let total = w.drain();
        assert_eq!(total.instructions, 1000.0);
        assert_eq!(total.mem_accesses, 10.0);
        assert_eq!(w.samples(), 0);
        assert_eq!(w.total().instructions, 0.0);
    }

    #[test]
    fn observed_ipc() {
        let d = CounterDelta {
            instructions: 300.0,
            cycles: 600.0,
            ..Default::default()
        };
        assert!((d.observed_ipc() - 0.5).abs() < 1e-12);
        assert_eq!(CounterDelta::default().observed_ipc(), 0.0);
    }
}
