//! Analytic performance model for frequency/voltage scheduling.
//!
//! This crate implements the prediction machinery of Kotla et al.,
//! *Scheduling Processor Voltage and Frequency in Server and Cluster
//! Systems* (2005), section 4: the decomposition of cycles-per-instruction
//! into a frequency-independent component and a frequency-dependent
//! memory-stall component, the `PerfLoss` metric that compares workload
//! performance across frequency settings, the continuous `f_ideal`
//! closed form of section 5, and the estimator that recovers model
//! parameters from hardware performance-counter deltas.
//!
//! The model is deliberately simple — it is the one the paper's `fvsst`
//! prototype ships. For a workload executing on a core at frequency `f`
//! (in Hz):
//!
//! ```text
//! CPI(f) = cpi0 + M · f
//! ```
//!
//! where `cpi0` (cycles/instruction) collects the perfect-machine term
//! `1/α` plus L1-cache stalls — everything that scales with the clock —
//! and `M` (seconds/instruction) is the total *time* per instruction spent
//! waiting on the L2, L3 and memory, which does **not** scale with the
//! clock. From `CPI(f)` follow `IPC(f) = 1/CPI(f)`, the throughput
//! `Perf(f) = IPC(f) · f` in instructions per second, and the saturation
//! behaviour that the whole scheduling approach exploits: as `f → ∞`,
//! `Perf(f) → 1/M`, so memory-bound work stops benefiting from frequency.
//!
//! # Quick example
//!
//! ```
//! use fvs_model::{CpiModel, FreqMhz, MemoryLatencies, AccessRates};
//!
//! let lat = MemoryLatencies::P630;
//! // A memory-hungry profile: 1 memory access per 100 instructions.
//! let rates = AccessRates { l2_per_instr: 0.01, l3_per_instr: 0.004, mem_per_instr: 0.01 };
//! let model = CpiModel::from_components(0.9, rates.stall_time_per_instr(&lat));
//!
//! let fast = model.perf_at(FreqMhz(1000));
//! let slow = model.perf_at(FreqMhz(650));
//! // Memory-bound work saturates: 65% of the clock keeps >85% of the speed.
//! assert!(slow / fast > 0.85);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod counters;
pub mod cpi;
pub mod freq;
pub mod ideal;
pub mod latency;
pub mod perfloss;
pub mod profile;
pub mod two_point;

pub use bounds::{BoundedCpiModel, LatencyBounds};
pub use counters::{CounterDelta, CounterWindow, EstimateError, Estimator};
pub use cpi::CpiModel;
pub use freq::{FreqMhz, FrequencySet, FrequencySetError};
pub use ideal::{ideal_frequency, ideal_frequency_hz};
pub use latency::MemoryLatencies;
pub use perfloss::{perf_loss, perf_loss_between, PerfLossTable};
pub use profile::{AccessRates, ExecutionProfile};
pub use two_point::{calibrate_two_point, Observation, TwoPointError};

/// Convenience alias: instructions per second.
pub type Ips = f64;
