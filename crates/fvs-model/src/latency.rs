//! Memory-hierarchy latency constants.

use serde::{Deserialize, Serialize};

/// Measured access latencies for each level of the memory hierarchy.
///
/// The paper's scheduling implementation treats these as constants (a
/// stated simplification and source of error — see its footnote 1). The L1
/// latency is expressed in **cycles** because L1 accesses are pipelined
/// with the core and scale with the clock; the L2/L3/memory latencies are
/// expressed in **seconds** because those structures run on their own
/// clocks and do not speed up when the core does. That split is exactly
/// what gives the CPI equation its frequency-dependent term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryLatencies {
    /// L1 access latency in core cycles (frequency-independent when
    /// expressed in cycles).
    pub l1_cycles: f64,
    /// L2 access latency in seconds.
    pub l2_s: f64,
    /// L3 access latency in seconds.
    pub l3_s: f64,
    /// Main-memory access latency in seconds.
    pub mem_s: f64,
}

impl MemoryLatencies {
    /// The pSeries P630 platform of the paper (section 7.1): 4–5 cycles to
    /// L1, 15 cycles to L2, 113 to L3, and 393 to memory, all measured at
    /// the nominal 1 GHz clock, hence 15 ns / 113 ns / 393 ns.
    pub const P630: MemoryLatencies = MemoryLatencies {
        l1_cycles: 4.5,
        l2_s: 15.0e-9,
        l3_s: 113.0e-9,
        mem_s: 393.0e-9,
    };

    /// A flat-latency hierarchy useful in unit tests: every level costs the
    /// same `t` seconds (and L1 is free).
    pub fn uniform(t: f64) -> Self {
        MemoryLatencies {
            l1_cycles: 0.0,
            l2_s: t,
            l3_s: t,
            mem_s: t,
        }
    }

    /// Latencies expressed in cycles at frequency `f_hz`, for reporting.
    pub fn cycles_at(&self, f_hz: f64) -> (f64, f64, f64, f64) {
        (
            self.l1_cycles,
            self.l2_s * f_hz,
            self.l3_s * f_hz,
            self.mem_s * f_hz,
        )
    }
}

impl Default for MemoryLatencies {
    fn default() -> Self {
        MemoryLatencies::P630
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p630_latencies_match_paper_at_1ghz() {
        let (l1, l2, l3, mem) = MemoryLatencies::P630.cycles_at(1.0e9);
        assert!((l1 - 4.5).abs() < 1e-9);
        assert!((l2 - 15.0).abs() < 1e-9);
        assert!((l3 - 113.0).abs() < 1e-9);
        assert!((mem - 393.0).abs() < 1e-9);
    }

    #[test]
    fn latencies_halve_in_cycles_at_half_clock() {
        let (_, l2, l3, mem) = MemoryLatencies::P630.cycles_at(0.5e9);
        assert!((l2 - 7.5).abs() < 1e-9);
        assert!((l3 - 56.5).abs() < 1e-9);
        assert!((mem - 196.5).abs() < 1e-9);
    }
}
