//! Best/worst-case latency bounds (footnote 1, second alternative).
//!
//! Constant latencies are a simplification: a real L3 or memory access
//! takes anywhere from the unloaded latency to a queue-lengthened worst
//! case. The paper's footnote cites an approach \[17\] that carries *both*
//! bounds through the prediction, yielding a performance **interval** at
//! each frequency instead of a point. A scheduler using intervals can be
//! deliberately conservative: only pick a lower frequency when even the
//! pessimistic prediction keeps the loss within ε.

use crate::counters::{CounterDelta, EstimateError};
use crate::cpi::CpiModel;
use crate::freq::{FreqMhz, FrequencySet};
use crate::latency::MemoryLatencies;
use serde::{Deserialize, Serialize};

/// A pair of latency tables bounding the platform's true behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBounds {
    /// Unloaded (best-case) latencies.
    pub best: MemoryLatencies,
    /// Fully-queued (worst-case) latencies.
    pub worst: MemoryLatencies,
}

impl LatencyBounds {
    /// P630 bounds: the measured nominal latencies as best case and a
    /// 1.5× queueing factor on the off-core levels as worst case
    /// (representative of bank-conflict/queueing spread on Power4-class
    /// memory systems).
    pub fn p630() -> Self {
        let best = MemoryLatencies::P630;
        LatencyBounds {
            best,
            worst: MemoryLatencies {
                l1_cycles: best.l1_cycles,
                l2_s: best.l2_s * 1.5,
                l3_s: best.l3_s * 1.5,
                mem_s: best.mem_s * 1.5,
            },
        }
    }

    /// Custom bounds; `worst` must dominate `best` level-wise.
    pub fn new(best: MemoryLatencies, worst: MemoryLatencies) -> Self {
        debug_assert!(worst.l2_s >= best.l2_s);
        debug_assert!(worst.l3_s >= best.l3_s);
        debug_assert!(worst.mem_s >= best.mem_s);
        LatencyBounds { best, worst }
    }
}

/// A CPI model carrying optimistic and pessimistic variants.
///
/// The *optimistic* member assumes every counted access paid the
/// best-case latency: it attributes the largest possible share of the
/// observed cycles to the frequency-independent component, so it
/// predicts the **most** benefit from frequency (an upper performance
/// bound at high f, and the *least* saturation). The *pessimistic*
/// member is the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedCpiModel {
    /// Model under best-case latencies (maximal `cpi0`, minimal `M`).
    pub optimistic: CpiModel,
    /// Model under worst-case latencies (minimal `cpi0`, maximal `M`).
    pub pessimistic: CpiModel,
}

impl BoundedCpiModel {
    /// Fit both variants from one counter window observed at `freq`.
    pub fn estimate(
        delta: &CounterDelta,
        freq: FreqMhz,
        bounds: &LatencyBounds,
        cpi0_floor: f64,
    ) -> Result<Self, EstimateError> {
        if delta.cycles <= 0.0 || freq.0 == 0 {
            return Err(EstimateError::NoCycles);
        }
        if delta.instructions <= 0.0 {
            return Err(EstimateError::TooFewInstructions);
        }
        let instr = delta.instructions;
        let observed_cpi = delta.cycles / instr;
        let fit = |lat: &MemoryLatencies| -> CpiModel {
            let mem_time = (delta.l2_accesses * lat.l2_s
                + delta.l3_accesses * lat.l3_s
                + delta.mem_accesses * lat.mem_s)
                / instr;
            // A latency assumption may attribute more stall time than the
            // observed cycles can contain (the worst-case table applied
            // to a workload that actually saw best-case latencies).
            // Clamp M so the model remains consistent with the
            // observation: CPI(f_measured) must equal the observed CPI.
            let max_mem_time = (observed_cpi - cpi0_floor).max(0.0) / freq.hz();
            let mem_time = mem_time.min(max_mem_time);
            let cpi0 = (observed_cpi - mem_time * freq.hz()).max(cpi0_floor);
            CpiModel::from_components(cpi0, mem_time)
        };
        Ok(BoundedCpiModel {
            optimistic: fit(&bounds.best),
            pessimistic: fit(&bounds.worst),
        })
    }

    /// Predicted performance interval `(min, max)` in instructions/s at
    /// `f`. The interval is formed by evaluating both variants; which
    /// one is lower depends on `f` relative to the measurement point, so
    /// both orders are handled.
    pub fn perf_interval(&self, f: FreqMhz) -> (f64, f64) {
        let a = self.optimistic.perf_at(f);
        let b = self.pessimistic.perf_at(f);
        (a.min(b), a.max(b))
    }

    /// Worst-case (largest) predicted loss vs `f_ref` at `f`: the value
    /// a conservative scheduler compares with ε.
    pub fn worst_case_loss(&self, f_ref: FreqMhz, f: FreqMhz) -> f64 {
        let loss_opt = crate::perfloss::perf_loss(&self.optimistic, f_ref, f);
        let loss_pes = crate::perfloss::perf_loss(&self.pessimistic, f_ref, f);
        loss_opt.max(loss_pes)
    }

    /// The conservative ε-constrained frequency: the lowest setting
    /// whose *worst-case* loss stays under ε. Never below the point
    /// model's pick built from the same counters with best-case
    /// latencies.
    pub fn conservative_epsilon_frequency(&self, set: &FrequencySet, epsilon: f64) -> FreqMhz {
        let f_ref = set.max();
        set.iter()
            .find(|f| self.worst_case_loss(f_ref, *f) < epsilon)
            .unwrap_or(f_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::synthesize_delta;
    use crate::perfloss::PerfLossTable;

    fn window(mem_rate: f64, f: FreqMhz) -> CounterDelta {
        let lat = MemoryLatencies::P630;
        let truth = CpiModel::from_components(1.0, mem_rate * lat.mem_s);
        synthesize_delta(&truth, 0.0, 0.0, mem_rate, 1.0e7, f)
    }

    #[test]
    fn interval_brackets_truth_when_latency_is_in_bounds() {
        let bounds = LatencyBounds::p630();
        // Ground truth uses 1.2× latencies — inside [1.0, 1.5]×.
        let true_lat = MemoryLatencies {
            l1_cycles: 4.5,
            l2_s: 15.0e-9 * 1.2,
            l3_s: 113.0e-9 * 1.2,
            mem_s: 393.0e-9 * 1.2,
        };
        let truth = CpiModel::from_components(1.0, 0.01 * true_lat.mem_s);
        let delta = synthesize_delta(&truth, 0.0, 0.0, 0.01, 1.0e7, FreqMhz(1000));
        let b = BoundedCpiModel::estimate(&delta, FreqMhz(1000), &bounds, 0.05).unwrap();
        for f in FrequencySet::p630().iter() {
            let (lo, hi) = b.perf_interval(f);
            let p = truth.perf_at(f);
            assert!(
                lo <= p * 1.000001 && p <= hi * 1.000001,
                "{f}: {lo} ≤ {p} ≤ {hi}"
            );
        }
    }

    #[test]
    fn interval_collapses_at_measurement_frequency() {
        let bounds = LatencyBounds::p630();
        let delta = window(0.01, FreqMhz(800));
        let b = BoundedCpiModel::estimate(&delta, FreqMhz(800), &bounds, 0.05).unwrap();
        // Both variants reproduce the observed CPI at the measurement
        // frequency by construction.
        let (lo, hi) = b.perf_interval(FreqMhz(800));
        assert!(
            (hi - lo) / hi < 1e-9,
            "interval should collapse: {lo}..{hi}"
        );
    }

    #[test]
    fn conservative_pick_is_at_least_the_point_pick() {
        let bounds = LatencyBounds::p630();
        let set = FrequencySet::p630();
        for mem_rate in [0.002, 0.01, 0.05, 0.12] {
            let delta = window(mem_rate, FreqMhz(1000));
            let b = BoundedCpiModel::estimate(&delta, FreqMhz(1000), &bounds, 0.05).unwrap();
            let conservative = b.conservative_epsilon_frequency(&set, 0.048);
            // Point model with best-case (nominal) latencies.
            let point = crate::counters::Estimator::new(bounds.best)
                .estimate(&delta, FreqMhz(1000))
                .unwrap();
            let point_pick = PerfLossTable::build(&point, &set).epsilon_constrained(0.048);
            assert!(
                conservative >= point_pick,
                "mem_rate {mem_rate}: conservative {conservative} < point {point_pick}"
            );
        }
    }

    #[test]
    fn cpu_bound_interval_is_degenerate() {
        let bounds = LatencyBounds::p630();
        let delta = window(0.0, FreqMhz(1000));
        let b = BoundedCpiModel::estimate(&delta, FreqMhz(1000), &bounds, 0.05).unwrap();
        for f in [FreqMhz(250), FreqMhz(650), FreqMhz(1000)] {
            let (lo, hi) = b.perf_interval(f);
            assert!((hi - lo).abs() < 1e-6, "no memory → no uncertainty");
        }
    }

    #[test]
    fn estimate_guards_empty_input() {
        let bounds = LatencyBounds::p630();
        assert!(
            BoundedCpiModel::estimate(&CounterDelta::default(), FreqMhz(1000), &bounds, 0.05)
                .is_err()
        );
    }
}
