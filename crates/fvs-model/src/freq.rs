//! Frequency newtypes and the discrete frequency set the scheduler picks from.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor core frequency in megahertz.
///
/// The paper's platform exposes a small fixed set of settings
/// (250 MHz … 1000 MHz in 50 MHz steps, paper Table 1); a `u32` in MHz
/// represents every setting exactly and keeps comparisons exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FreqMhz(pub u32);

impl FreqMhz {
    /// Frequency in hertz, for use in the time-domain CPI equation.
    #[inline]
    pub fn hz(self) -> f64 {
        f64::from(self.0) * 1.0e6
    }

    /// Clock period in seconds.
    #[inline]
    pub fn period_s(self) -> f64 {
        1.0 / self.hz()
    }

    /// Fraction of `other`'s clock rate that this frequency represents.
    #[inline]
    pub fn ratio_to(self, other: FreqMhz) -> f64 {
        f64::from(self.0) / f64::from(other.0)
    }
}

impl fmt::Display for FreqMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// Errors constructing a [`FrequencySet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrequencySetError {
    /// The set contained no frequencies.
    Empty,
    /// A frequency of 0 MHz was supplied.
    ZeroFrequency,
}

impl fmt::Display for FrequencySetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrequencySetError::Empty => write!(f, "frequency set must not be empty"),
            FrequencySetError::ZeroFrequency => write!(f, "frequency of 0 MHz is not schedulable"),
        }
    }
}

impl std::error::Error for FrequencySetError {}

/// The ordered, deduplicated set of frequencies available for scheduling.
///
/// Mirrors `F = f_0, f_1, …, f_max` from the paper's Figure 3: ascending
/// order, with `min()` the deepest power-saving setting and `max()` the
/// nominal full-speed setting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencySet {
    freqs: Vec<FreqMhz>,
}

impl FrequencySet {
    /// Build a set from arbitrary frequencies; sorts and deduplicates.
    pub fn new(mut freqs: Vec<FreqMhz>) -> Result<Self, FrequencySetError> {
        if freqs.iter().any(|f| f.0 == 0) {
            return Err(FrequencySetError::ZeroFrequency);
        }
        freqs.sort_unstable();
        freqs.dedup();
        if freqs.is_empty() {
            return Err(FrequencySetError::Empty);
        }
        Ok(FrequencySet { freqs })
    }

    /// The 16-step 250–1000 MHz set of the paper's P630 platform (Table 1).
    pub fn p630() -> Self {
        FrequencySet {
            freqs: (5..=20).map(|k| FreqMhz(k * 50)).collect(),
        }
    }

    /// The 5-step 0.6–1.0 GHz set used in the paper's section 5 worked
    /// example.
    pub fn example_section5() -> Self {
        FrequencySet {
            freqs: vec![
                FreqMhz(600),
                FreqMhz(700),
                FreqMhz(800),
                FreqMhz(900),
                FreqMhz(1000),
            ],
        }
    }

    /// Lowest available frequency.
    #[inline]
    pub fn min(&self) -> FreqMhz {
        self.freqs[0]
    }

    /// Highest (nominal) frequency, `f_max` in the paper.
    #[inline]
    pub fn max(&self) -> FreqMhz {
        *self.freqs.last().expect("non-empty by construction")
    }

    /// Number of settings.
    #[inline]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the set is empty. Always false for a constructed set; kept
    /// for API completeness with clippy's `len_without_is_empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Ascending iterator over the settings.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = FreqMhz> + '_ {
        self.freqs.iter().copied()
    }

    /// Ascending slice of the settings.
    #[inline]
    pub fn as_slice(&self) -> &[FreqMhz] {
        &self.freqs
    }

    /// True if `f` is one of the schedulable settings.
    pub fn contains(&self, f: FreqMhz) -> bool {
        self.freqs.binary_search(&f).is_ok()
    }

    /// Position of `f` in the ascending set, or `None` if `f` is not a
    /// member. Lets schedulers work in index space (one step down is
    /// `index − 1`) instead of repeated frequency searches.
    #[inline]
    pub fn index_of(&self, f: FreqMhz) -> Option<usize> {
        self.freqs.binary_search(&f).ok()
    }

    /// The setting at ascending position `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn at(&self, idx: usize) -> FreqMhz {
        self.freqs[idx]
    }

    /// The next setting strictly below `f` (`f_less` in Figure 3 of the
    /// paper), or `None` if `f` is already the minimum or not in the set.
    pub fn step_down(&self, f: FreqMhz) -> Option<FreqMhz> {
        match self.freqs.binary_search(&f) {
            Ok(0) | Err(_) => None,
            Ok(i) => Some(self.freqs[i - 1]),
        }
    }

    /// The next setting strictly above `f`, or `None` at the top or if `f`
    /// is not in the set.
    pub fn step_up(&self, f: FreqMhz) -> Option<FreqMhz> {
        match self.freqs.binary_search(&f) {
            Ok(i) if i + 1 < self.freqs.len() => Some(self.freqs[i + 1]),
            _ => None,
        }
    }

    /// Highest setting `≤ cap`, used to apply a frequency cap derived from
    /// a power budget. Returns `None` when even the minimum exceeds `cap`.
    pub fn highest_at_most(&self, cap: FreqMhz) -> Option<FreqMhz> {
        match self.freqs.binary_search(&cap) {
            Ok(i) => Some(self.freqs[i]),
            Err(0) => None,
            Err(i) => Some(self.freqs[i - 1]),
        }
    }

    /// Lowest setting `≥ floor`, or `None` when every setting is below it.
    pub fn lowest_at_least(&self, floor: FreqMhz) -> Option<FreqMhz> {
        match self.freqs.binary_search(&floor) {
            Ok(i) | Err(i) if i < self.freqs.len() => Some(self.freqs[i]),
            _ => None,
        }
    }

    /// Snap an arbitrary (e.g. continuous `f_ideal`) frequency to the
    /// lowest available setting that is at least as fast, falling back to
    /// the maximum when `f` exceeds every setting.
    pub fn snap_up(&self, f: FreqMhz) -> FreqMhz {
        self.lowest_at_least(f).unwrap_or_else(|| self.max())
    }
}

impl<'a> IntoIterator for &'a FrequencySet {
    type Item = FreqMhz;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, FreqMhz>>;

    fn into_iter(self) -> Self::IntoIter {
        self.freqs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p630_set_matches_table1() {
        let set = FrequencySet::p630();
        assert_eq!(set.len(), 16);
        assert_eq!(set.min(), FreqMhz(250));
        assert_eq!(set.max(), FreqMhz(1000));
        assert!(set.contains(FreqMhz(650)));
        assert!(!set.contains(FreqMhz(675)));
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let set = FrequencySet::new(vec![
            FreqMhz(800),
            FreqMhz(600),
            FreqMhz(800),
            FreqMhz(1000),
        ])
        .unwrap();
        assert_eq!(set.as_slice(), &[FreqMhz(600), FreqMhz(800), FreqMhz(1000)]);
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(FrequencySet::new(vec![]), Err(FrequencySetError::Empty));
    }

    #[test]
    fn zero_frequency_rejected() {
        assert_eq!(
            FrequencySet::new(vec![FreqMhz(0), FreqMhz(100)]),
            Err(FrequencySetError::ZeroFrequency)
        );
    }

    #[test]
    fn index_of_and_at_round_trip() {
        let set = FrequencySet::p630();
        for (i, f) in set.iter().enumerate() {
            assert_eq!(set.index_of(f), Some(i));
            assert_eq!(set.at(i), f);
        }
        assert_eq!(set.index_of(FreqMhz(675)), None);
    }

    #[test]
    fn step_down_walks_table() {
        let set = FrequencySet::p630();
        assert_eq!(set.step_down(FreqMhz(1000)), Some(FreqMhz(950)));
        assert_eq!(set.step_down(FreqMhz(250)), None);
        assert_eq!(set.step_down(FreqMhz(999)), None, "not in set");
    }

    #[test]
    fn step_up_walks_table() {
        let set = FrequencySet::p630();
        assert_eq!(set.step_up(FreqMhz(250)), Some(FreqMhz(300)));
        assert_eq!(set.step_up(FreqMhz(1000)), None);
    }

    #[test]
    fn highest_at_most_handles_gaps_and_bounds() {
        let set = FrequencySet::p630();
        assert_eq!(set.highest_at_most(FreqMhz(760)), Some(FreqMhz(750)));
        assert_eq!(set.highest_at_most(FreqMhz(750)), Some(FreqMhz(750)));
        assert_eq!(set.highest_at_most(FreqMhz(249)), None);
        assert_eq!(set.highest_at_most(FreqMhz(5000)), Some(FreqMhz(1000)));
    }

    #[test]
    fn lowest_at_least_and_snap_up() {
        let set = FrequencySet::p630();
        assert_eq!(set.lowest_at_least(FreqMhz(601)), Some(FreqMhz(650)));
        assert_eq!(set.lowest_at_least(FreqMhz(1001)), None);
        assert_eq!(set.snap_up(FreqMhz(601)), FreqMhz(650));
        assert_eq!(set.snap_up(FreqMhz(1200)), FreqMhz(1000));
        assert_eq!(set.snap_up(FreqMhz(1)), FreqMhz(250));
    }

    #[test]
    fn freq_conversions() {
        let f = FreqMhz(1000);
        assert_eq!(f.hz(), 1.0e9);
        assert!((f.period_s() - 1.0e-9).abs() < 1e-18);
        assert!((FreqMhz(500).ratio_to(f) - 0.5).abs() < 1e-12);
    }
}
