//! The continuous `f_ideal` extension of the paper's section 5.
//!
//! Instead of scanning a discrete frequency table, the scheduler can solve
//! directly for the frequency at which the workload retains a `(1 − ε)`
//! fraction of its full-speed performance. The paper presents the closed
//! form in terms of `α` and raw counter values; here it is expressed in
//! terms of the fitted [`CpiModel`], which is algebraically identical:
//!
//! ```text
//! target  = Perf(f_max) · (1 − ε)
//! f_ideal = target · cpi0 / (1 − target · M)
//! ```
//!
//! For CPU-bound work (`M = 0`) this degenerates to
//! `f_ideal = f_max · (1 − ε)`; for memory-bound work the denominator term
//! captures saturation and `f_ideal` falls far below `f_max`. The paper
//! also short-circuits `f_ideal = f_max` when `IPC > 1` (work is clearly
//! core-limited); that guard is reproduced in
//! [`ideal_frequency`].

use crate::cpi::CpiModel;
use crate::freq::FreqMhz;

/// Continuous ideal frequency in Hz for tolerated loss `epsilon` against
/// reference `f_max`.
///
/// Always within `(0, f_max.hz()]` for `epsilon ∈ [0, 1)` and a valid
/// model; clamped to `f_max` against floating-point excursions.
pub fn ideal_frequency_hz(model: &CpiModel, f_max: FreqMhz, epsilon: f64) -> f64 {
    let target = model.perf_at(f_max) * (1.0 - epsilon);
    match model.frequency_for_perf_hz(target) {
        Some(f) => f.min(f_max.hz()),
        // Unreachable for epsilon >= 0 since target < Perf(f_max) <
        // asymptote, but keep a safe fallback for epsilon < 0 misuse.
        None => f_max.hz(),
    }
}

/// The paper's `f_ideal` rule: if observed IPC at `f_max` exceeds 1 the
/// workload is treated as core-limited and pinned to `f_max`; otherwise
/// the closed form is evaluated and rounded up to the next whole MHz
/// (never exceeding `f_max`).
pub fn ideal_frequency(model: &CpiModel, f_max: FreqMhz, epsilon: f64) -> FreqMhz {
    if model.ipc_at(f_max) > 1.0 {
        return f_max;
    }
    let f_hz = ideal_frequency_hz(model, f_max, epsilon);
    let mhz = (f_hz / 1.0e6).ceil() as u32;
    FreqMhz(mhz.min(f_max.0).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::MemoryLatencies;
    use crate::profile::AccessRates;

    fn mem_model(mem_per_instr: f64) -> CpiModel {
        let rates = AccessRates {
            l2_per_instr: 0.0,
            l3_per_instr: 0.0,
            mem_per_instr,
        };
        CpiModel::from_components(1.0, rates.stall_time_per_instr(&MemoryLatencies::P630))
    }

    #[test]
    fn cpu_bound_ideal_scales_linearly_with_epsilon() {
        let m = CpiModel::from_components(1.2, 0.0);
        let f = ideal_frequency_hz(&m, FreqMhz(1000), 0.05);
        assert!((f - 0.95e9).abs() / 1e9 < 1e-9);
    }

    #[test]
    fn memory_bound_ideal_falls_well_below_max() {
        let m = mem_model(0.02); // heavily memory-bound, IPC(1GHz) ≈ 0.11
                                 // Closed form: target = 0.95·Perf(1 GHz); f = target·cpi0/(1−target·M)
                                 // ≈ 682 MHz for this profile.
        let f = ideal_frequency(&m, FreqMhz(1000), 0.05);
        assert!(f.0 < 700, "ideal was {f}");
        // A larger tolerated loss admits a much lower clock.
        let f20 = ideal_frequency(&m, FreqMhz(1000), 0.20);
        assert!(f20.0 < 350, "ideal at eps=0.2 was {f20}");
    }

    #[test]
    fn perf_at_ideal_matches_target() {
        let m = mem_model(0.01);
        let eps = 0.05;
        let f_hz = ideal_frequency_hz(&m, FreqMhz(1000), eps);
        let p = m.perf_at_hz(f_hz);
        let target = m.perf_at(FreqMhz(1000)) * (1.0 - eps);
        assert!((p - target).abs() / target < 1e-9);
    }

    #[test]
    fn high_ipc_work_pinned_to_fmax() {
        // alpha high, no stalls: IPC(1GHz) = 2 > 1.
        let m = CpiModel::from_components(0.5, 0.0);
        assert_eq!(ideal_frequency(&m, FreqMhz(1000), 0.10), FreqMhz(1000));
    }

    #[test]
    fn zero_epsilon_gives_fmax() {
        let m = mem_model(0.01);
        let f = ideal_frequency_hz(&m, FreqMhz(1000), 0.0);
        assert!((f - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn ideal_never_exceeds_fmax() {
        let m = mem_model(0.001);
        for eps in [0.0, 0.01, 0.05, 0.2, 0.5] {
            let f = ideal_frequency(&m, FreqMhz(1000), eps);
            assert!(f <= FreqMhz(1000));
            assert!(f.0 >= 1);
        }
    }
}
