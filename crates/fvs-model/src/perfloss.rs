//! The `PerfLoss` metric and the per-frequency table the scheduler scans.

use crate::cpi::CpiModel;
use crate::freq::{FreqMhz, FrequencySet};
use serde::{Deserialize, Serialize};

/// Relative performance loss of running at `f` instead of the reference
/// frequency `f_ref` (normally `f_max`):
///
/// ```text
/// perf_loss(f_ref, f) = (Perf(f_ref) − Perf(f)) / Perf(f_ref)
/// ```
///
/// Positive values are losses, negative values gains. This is the
/// `PerfLoss(f_max, f_i)` the scheduler compares against `ε` in the
/// paper's Figure 3. (The paper's prose defines the metric with the
/// opposite sign — "values greater than 0 indicate a performance gain" —
/// but then requires `PerfLoss(f_max, f) < ε`, which only reads sensibly
/// with the loss-positive orientation used here; we keep loss-positive and
/// document the choice.)
#[inline]
pub fn perf_loss(model: &CpiModel, f_ref: FreqMhz, f: FreqMhz) -> f64 {
    let p_ref = model.perf_at(f_ref);
    (p_ref - model.perf_at(f)) / p_ref
}

/// `perf_loss` between two arbitrary frequencies `g → f`, normalised by
/// the performance at `g`.
#[inline]
pub fn perf_loss_between(model: &CpiModel, g: FreqMhz, f: FreqMhz) -> f64 {
    let p_g = model.perf_at(g);
    (p_g - model.perf_at(f)) / p_g
}

/// One row of a [`PerfLossTable`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfLossEntry {
    /// The candidate frequency.
    pub freq: FreqMhz,
    /// Predicted IPC at that frequency.
    pub ipc: f64,
    /// Predicted throughput (instructions/second).
    pub perf: f64,
    /// Loss versus the table's reference frequency (positive = slower).
    pub loss_vs_ref: f64,
}

/// Predicted IPC / performance / loss at every available frequency — the
/// data structure pass 1 of the scheduling algorithm scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfLossTable {
    /// Reference frequency the losses are computed against (`f_max`).
    pub reference: FreqMhz,
    /// One entry per available frequency, ascending.
    pub entries: Vec<PerfLossEntry>,
}

impl PerfLossTable {
    /// Evaluate `model` at every frequency in `set`, against `set.max()`.
    pub fn build(model: &CpiModel, set: &FrequencySet) -> Self {
        let mut table = PerfLossTable {
            reference: set.max(),
            entries: Vec::with_capacity(set.len()),
        };
        table.rebuild(model, set);
        table
    }

    /// Re-evaluate this table in place for a new model (and/or set),
    /// reusing the entry storage. Allocation-free once `entries` has
    /// capacity for `set.len()` rows — the steady-state path for daemons
    /// that reschedule every window with a freshly fitted model.
    pub fn rebuild(&mut self, model: &CpiModel, set: &FrequencySet) {
        self.reference = set.max();
        let p_ref = model.perf_at(self.reference);
        self.entries.clear();
        self.entries.extend(set.iter().map(|f| {
            let perf = model.perf_at(f);
            PerfLossEntry {
                freq: f,
                ipc: model.ipc_at(f),
                perf,
                loss_vs_ref: (p_ref - perf) / p_ref,
            }
        }));
    }

    /// An empty placeholder table (no entries); fill with [`rebuild`].
    ///
    /// [`rebuild`]: PerfLossTable::rebuild
    pub fn placeholder() -> Self {
        PerfLossTable {
            reference: FreqMhz(1),
            entries: Vec::new(),
        }
    }

    /// Pass 1 of the paper's Figure 3: the **lowest** frequency whose
    /// predicted loss versus `f_max` is `< epsilon`. Entries are ascending,
    /// and loss is monotone non-increasing in frequency, so the first
    /// admissible entry is the answer. Falls back to `f_max` (loss 0 by
    /// construction) if no lower setting qualifies.
    pub fn epsilon_constrained(&self, epsilon: f64) -> FreqMhz {
        self.entries
            .iter()
            .find(|e| e.loss_vs_ref < epsilon)
            .map(|e| e.freq)
            .unwrap_or(self.reference)
    }

    /// Look up the entry for an exact frequency.
    pub fn entry(&self, f: FreqMhz) -> Option<&PerfLossEntry> {
        self.entries.iter().find(|e| e.freq == f)
    }

    /// *Incremental* predicted loss of stepping from `from` down to the
    /// next lower setting, if one exists. Returns
    /// `(next_freq, additional_loss_vs_ref)`.
    pub fn demotion_cost(&self, set: &FrequencySet, from: FreqMhz) -> Option<(FreqMhz, f64)> {
        let lower = set.step_down(from)?;
        let cur = self.entry(from)?.loss_vs_ref;
        let next = self.entry(lower)?.loss_vs_ref;
        Some((lower, next - cur))
    }

    /// *Absolute* predicted loss vs `f_max` the processor would have
    /// after one step down — the paper's pass-2 selection key: "select
    /// n, p with smallest PerfLoss(f_max, f_less)" (Figure 3, step 2).
    /// Returns `(next_freq, loss_vs_ref_at_next)`.
    pub fn demotion_loss(&self, set: &FrequencySet, from: FreqMhz) -> Option<(FreqMhz, f64)> {
        let lower = set.step_down(from)?;
        Some((lower, self.entry(lower)?.loss_vs_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::MemoryLatencies;
    use crate::profile::AccessRates;

    fn model(mem_per_instr: f64) -> CpiModel {
        let rates = AccessRates {
            l2_per_instr: 0.0,
            l3_per_instr: 0.0,
            mem_per_instr,
        };
        CpiModel::from_components(1.0, rates.stall_time_per_instr(&MemoryLatencies::P630))
    }

    #[test]
    fn loss_at_reference_is_zero() {
        let m = model(0.01);
        assert_eq!(perf_loss(&m, FreqMhz(1000), FreqMhz(1000)), 0.0);
    }

    #[test]
    fn loss_positive_below_reference_negative_above() {
        let m = model(0.01);
        assert!(perf_loss(&m, FreqMhz(1000), FreqMhz(500)) > 0.0);
        assert!(perf_loss(&m, FreqMhz(500), FreqMhz(1000)) < 0.0);
    }

    #[test]
    fn cpu_bound_loss_is_one_to_one_with_frequency() {
        let m = CpiModel::from_components(1.0, 0.0);
        let loss = perf_loss(&m, FreqMhz(1000), FreqMhz(750));
        assert!((loss - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_loss_is_sublinear() {
        let m = model(0.02);
        let loss = perf_loss(&m, FreqMhz(1000), FreqMhz(750));
        // 25% frequency cut must cost well under 25% for memory-bound work.
        assert!(loss < 0.10, "loss was {loss}");
    }

    #[test]
    fn table_is_ascending_and_loss_monotone() {
        let m = model(0.01);
        let set = FrequencySet::p630();
        let table = PerfLossTable::build(&m, &set);
        assert_eq!(table.entries.len(), set.len());
        for pair in table.entries.windows(2) {
            assert!(pair[0].freq < pair[1].freq);
            assert!(pair[0].loss_vs_ref >= pair[1].loss_vs_ref);
        }
        assert_eq!(table.entries.last().unwrap().loss_vs_ref, 0.0);
    }

    #[test]
    fn epsilon_constrained_picks_lowest_admissible() {
        let set = FrequencySet::p630();
        // Strongly memory-bound: big epsilon admits very low frequencies.
        let m = model(0.05);
        let table = PerfLossTable::build(&m, &set);
        let f = table.epsilon_constrained(0.05);
        assert!(f < FreqMhz(1000));
        // Check minimality: one step down must violate epsilon.
        if let Some(lower) = set.step_down(f) {
            assert!(table.entry(lower).unwrap().loss_vs_ref >= 0.05);
        }
        assert!(table.entry(f).unwrap().loss_vs_ref < 0.05);
    }

    #[test]
    fn epsilon_constrained_cpu_bound_stays_at_max() {
        let set = FrequencySet::p630();
        let m = CpiModel::from_components(1.0, 0.0);
        let table = PerfLossTable::build(&m, &set);
        assert_eq!(table.epsilon_constrained(0.02), FreqMhz(1000));
    }

    #[test]
    fn rebuild_matches_build_and_reuses_storage() {
        let set = FrequencySet::p630();
        let mut table = PerfLossTable::placeholder();
        table.rebuild(&model(0.01), &set);
        assert_eq!(table, PerfLossTable::build(&model(0.01), &set));
        let cap = table.entries.capacity();
        table.rebuild(&model(0.03), &set);
        assert_eq!(table, PerfLossTable::build(&model(0.03), &set));
        assert_eq!(table.entries.capacity(), cap, "storage must be reused");
    }

    #[test]
    fn demotion_cost_is_positive_and_walks_down() {
        let set = FrequencySet::p630();
        let m = model(0.01);
        let table = PerfLossTable::build(&m, &set);
        let (lower, cost) = table.demotion_cost(&set, FreqMhz(1000)).unwrap();
        assert_eq!(lower, FreqMhz(950));
        assert!(cost > 0.0);
        assert!(table.demotion_cost(&set, FreqMhz(250)).is_none());
    }
}
