//! Workload execution profiles: the ground-truth parameters a workload
//! exposes to the timing model.

use crate::latency::MemoryLatencies;
use serde::{Deserialize, Serialize};

/// Per-instruction access rates into the off-core memory hierarchy.
///
/// These correspond to the performance-counter quantities `N_i / Instr` of
/// the paper's IPC equation: how many L2, L3 and main-memory accesses the
/// workload performs per retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessRates {
    /// L2 accesses per instruction.
    pub l2_per_instr: f64,
    /// L3 accesses per instruction.
    pub l3_per_instr: f64,
    /// Main-memory accesses per instruction.
    pub mem_per_instr: f64,
}

impl AccessRates {
    /// A profile that never leaves the L1: the pure CPU-bound limit.
    pub const NONE: AccessRates = AccessRates {
        l2_per_instr: 0.0,
        l3_per_instr: 0.0,
        mem_per_instr: 0.0,
    };

    /// Total off-core stall time per instruction, `M = Σ N_i·T_i / Instr`
    /// in seconds — the frequency-dependent coefficient of the CPI
    /// equation.
    #[inline]
    pub fn stall_time_per_instr(&self, lat: &MemoryLatencies) -> f64 {
        self.l2_per_instr * lat.l2_s + self.l3_per_instr * lat.l3_s + self.mem_per_instr * lat.mem_s
    }

    /// Linear interpolation between two rate sets (used when blending
    /// phases or constructing intensity sweeps); `w = 0` yields `self`,
    /// `w = 1` yields `other`.
    pub fn lerp(&self, other: &AccessRates, w: f64) -> AccessRates {
        let mix = |a: f64, b: f64| a + (b - a) * w;
        AccessRates {
            l2_per_instr: mix(self.l2_per_instr, other.l2_per_instr),
            l3_per_instr: mix(self.l3_per_instr, other.l3_per_instr),
            mem_per_instr: mix(self.mem_per_instr, other.mem_per_instr),
        }
    }

    /// Scale all rates by a constant factor.
    pub fn scaled(&self, k: f64) -> AccessRates {
        AccessRates {
            l2_per_instr: self.l2_per_instr * k,
            l3_per_instr: self.l3_per_instr * k,
            mem_per_instr: self.mem_per_instr * k,
        }
    }

    /// True when every rate is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.l2_per_instr, self.l3_per_instr, self.mem_per_instr]
            .iter()
            .all(|r| r.is_finite() && *r >= 0.0)
    }
}

/// The complete ground-truth execution profile of a workload (or of one
/// phase of a workload).
///
/// `alpha` is the paper's `α`: the IPC of a perfect machine with infinite
/// L1 caches and no stalls — a property of both the workload's ILP and the
/// core's issue width. `l1_stall_cycles_per_instr` collects the
/// frequency-independent stall cycles (L1 hit latency exposed to the
/// pipeline); the paper folds this into the same frequency-independent
/// bucket as `1/α`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Perfect-machine IPC (`α`).
    pub alpha: f64,
    /// Frequency-independent L1-related stall cycles per instruction.
    pub l1_stall_cycles_per_instr: f64,
    /// Off-core access rates.
    pub rates: AccessRates,
}

impl ExecutionProfile {
    /// A purely CPU-bound profile with the given perfect-machine IPC.
    pub fn cpu_bound(alpha: f64) -> Self {
        ExecutionProfile {
            alpha,
            l1_stall_cycles_per_instr: 0.0,
            rates: AccessRates::NONE,
        }
    }

    /// The frequency-independent CPI component:
    /// `cpi0 = 1/α + l1 stalls`.
    #[inline]
    pub fn cpi0(&self) -> f64 {
        1.0 / self.alpha + self.l1_stall_cycles_per_instr
    }

    /// Validity check used by the simulator when ingesting workloads.
    pub fn is_valid(&self) -> bool {
        self.alpha.is_finite()
            && self.alpha > 0.0
            && self.l1_stall_cycles_per_instr.is_finite()
            && self.l1_stall_cycles_per_instr >= 0.0
            && self.rates.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_time_sums_levels() {
        let lat = MemoryLatencies::uniform(100.0e-9);
        let rates = AccessRates {
            l2_per_instr: 0.01,
            l3_per_instr: 0.02,
            mem_per_instr: 0.03,
        };
        let m = rates.stall_time_per_instr(&lat);
        assert!((m - 0.06 * 100.0e-9).abs() < 1e-18);
    }

    #[test]
    fn cpu_bound_profile_has_zero_stall_time() {
        let p = ExecutionProfile::cpu_bound(2.0);
        assert_eq!(p.rates.stall_time_per_instr(&MemoryLatencies::P630), 0.0);
        assert!((p.cpi0() - 0.5).abs() < 1e-12);
        assert!(p.is_valid());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = AccessRates::NONE;
        let b = AccessRates {
            l2_per_instr: 0.02,
            l3_per_instr: 0.01,
            mem_per_instr: 0.008,
        };
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.mem_per_instr - 0.004).abs() < 1e-15);
    }

    #[test]
    fn invalid_profiles_detected() {
        let mut p = ExecutionProfile::cpu_bound(1.0);
        assert!(p.is_valid());
        p.alpha = 0.0;
        assert!(!p.is_valid());
        p.alpha = f64::NAN;
        assert!(!p.is_valid());
        let mut q = ExecutionProfile::cpu_bound(1.0);
        q.rates.mem_per_instr = -1.0;
        assert!(!q.is_valid());
    }
}
