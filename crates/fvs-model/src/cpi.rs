//! The two-parameter CPI model at the heart of the predictor.

use crate::freq::FreqMhz;
use crate::latency::MemoryLatencies;
use crate::profile::ExecutionProfile;
use serde::{Deserialize, Serialize};

/// The fitted/derived timing model of a workload:
/// `CPI(f) = cpi0 + mem_time_per_instr · f` with `f` in Hz.
///
/// `cpi0` is the frequency-independent component (perfect-machine CPI plus
/// L1 stalls, in cycles per instruction); `mem_time_per_instr` is the
/// frequency-dependent coefficient `M` (off-core stall time per
/// instruction, in seconds). Both the ground-truth profiles the simulator
/// executes and the estimates the scheduler recovers from performance
/// counters are expressed as `CpiModel`s, so prediction error can be
/// measured in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiModel {
    /// Frequency-independent cycles per instruction.
    pub cpi0: f64,
    /// Off-core stall seconds per instruction (`M`).
    pub mem_time_per_instr: f64,
}

impl CpiModel {
    /// Build directly from the two components.
    pub fn from_components(cpi0: f64, mem_time_per_instr: f64) -> Self {
        CpiModel {
            cpi0,
            mem_time_per_instr,
        }
    }

    /// Derive the model from a ground-truth execution profile and the
    /// platform's memory latencies.
    pub fn from_profile(profile: &ExecutionProfile, lat: &MemoryLatencies) -> Self {
        CpiModel {
            cpi0: profile.cpi0(),
            mem_time_per_instr: profile.rates.stall_time_per_instr(lat),
        }
    }

    /// Cycles per instruction at frequency `f`.
    #[inline]
    pub fn cpi_at(&self, f: FreqMhz) -> f64 {
        self.cpi_at_hz(f.hz())
    }

    /// Cycles per instruction at a frequency given in Hz.
    #[inline]
    pub fn cpi_at_hz(&self, f_hz: f64) -> f64 {
        self.cpi0 + self.mem_time_per_instr * f_hz
    }

    /// Instructions per cycle at frequency `f` — the paper's `IPC(f)`.
    #[inline]
    pub fn ipc_at(&self, f: FreqMhz) -> f64 {
        1.0 / self.cpi_at(f)
    }

    /// Throughput in instructions per second — the paper's
    /// `Perf(f) = IPC(f) · f`.
    #[inline]
    pub fn perf_at(&self, f: FreqMhz) -> f64 {
        self.perf_at_hz(f.hz())
    }

    /// Throughput at a frequency given in Hz.
    #[inline]
    pub fn perf_at_hz(&self, f_hz: f64) -> f64 {
        f_hz / self.cpi_at_hz(f_hz)
    }

    /// Seconds of wall-clock time to retire `instructions` at frequency
    /// `f`.
    #[inline]
    pub fn time_for_instructions(&self, instructions: f64, f: FreqMhz) -> f64 {
        instructions / self.perf_at(f)
    }

    /// Instructions retired in `dt` seconds at frequency `f`.
    #[inline]
    pub fn instructions_in(&self, dt: f64, f: FreqMhz) -> f64 {
        self.perf_at(f) * dt
    }

    /// The throughput asymptote `1/M` that memory-bound work approaches as
    /// `f → ∞`; `f64::INFINITY` for purely CPU-bound work.
    #[inline]
    pub fn perf_asymptote(&self) -> f64 {
        if self.mem_time_per_instr <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.mem_time_per_instr
        }
    }

    /// The memory-intensity fraction of execution time at frequency `f`:
    /// the share of each instruction's latency spent stalled off-core.
    /// 0 for CPU-bound work; → 1 as work becomes memory-bound or the clock
    /// rises.
    pub fn memory_fraction_at(&self, f: FreqMhz) -> f64 {
        let mem_cycles = self.mem_time_per_instr * f.hz();
        mem_cycles / (self.cpi0 + mem_cycles)
    }

    /// The lowest frequency (in Hz, continuous) at which the workload
    /// achieves `target_ips` instructions per second, or `None` if the
    /// target exceeds what any frequency can deliver (i.e. is at or above
    /// the saturation asymptote).
    ///
    /// Solves `f / (cpi0 + M·f) = target` for `f`.
    pub fn frequency_for_perf_hz(&self, target_ips: f64) -> Option<f64> {
        if target_ips <= 0.0 {
            return Some(0.0);
        }
        let denom = 1.0 - target_ips * self.mem_time_per_instr;
        if denom <= 0.0 {
            return None;
        }
        Some(target_ips * self.cpi0 / denom)
    }

    /// Model validity: both coefficients finite, `cpi0` strictly positive
    /// (no machine retires instructions in zero cycles), `M` non-negative.
    pub fn is_valid(&self) -> bool {
        self.cpi0.is_finite()
            && self.cpi0 > 0.0
            && self.mem_time_per_instr.is_finite()
            && self.mem_time_per_instr >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AccessRates;

    fn mem_bound() -> CpiModel {
        // 1 memory access per 100 instructions on the P630: M = 3.93 ns.
        let rates = AccessRates {
            l2_per_instr: 0.0,
            l3_per_instr: 0.0,
            mem_per_instr: 0.01,
        };
        CpiModel::from_components(1.0, rates.stall_time_per_instr(&MemoryLatencies::P630))
    }

    #[test]
    fn cpu_bound_perf_is_linear_in_frequency() {
        let m = CpiModel::from_components(0.5, 0.0);
        let p1 = m.perf_at(FreqMhz(500));
        let p2 = m.perf_at(FreqMhz(1000));
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        assert_eq!(m.perf_asymptote(), f64::INFINITY);
        assert_eq!(m.memory_fraction_at(FreqMhz(1000)), 0.0);
    }

    #[test]
    fn memory_bound_perf_saturates() {
        let m = mem_bound();
        let p1 = m.perf_at(FreqMhz(500));
        let p2 = m.perf_at(FreqMhz(1000));
        // Doubling the clock must help, but strictly sub-linearly.
        assert!(p2 > p1);
        assert!(p2 / p1 < 2.0);
        assert!(p2 < m.perf_asymptote());
    }

    #[test]
    fn ipc_at_1ghz_matches_hand_calculation() {
        let m = mem_bound();
        // CPI(1 GHz) = 1.0 + 3.93e-9 * 1e9 = 4.93.
        assert!((m.cpi_at(FreqMhz(1000)) - 4.93).abs() < 1e-9);
        assert!((m.ipc_at(FreqMhz(1000)) - 1.0 / 4.93).abs() < 1e-12);
    }

    #[test]
    fn frequency_for_perf_inverts_perf() {
        let m = mem_bound();
        let f = FreqMhz(800);
        let target = m.perf_at(f);
        let f_solved = m.frequency_for_perf_hz(target).unwrap();
        assert!((f_solved - f.hz()).abs() / f.hz() < 1e-9);
    }

    #[test]
    fn frequency_for_unreachable_perf_is_none() {
        let m = mem_bound();
        assert!(m.frequency_for_perf_hz(m.perf_asymptote() * 1.01).is_none());
        assert!(m.frequency_for_perf_hz(m.perf_asymptote()).is_none());
    }

    #[test]
    fn memory_fraction_rises_with_frequency() {
        let m = mem_bound();
        let lo = m.memory_fraction_at(FreqMhz(250));
        let hi = m.memory_fraction_at(FreqMhz(1000));
        assert!(lo < hi);
        assert!(hi < 1.0);
        assert!(lo > 0.0);
    }

    #[test]
    fn instructions_and_time_roundtrip() {
        let m = mem_bound();
        let f = FreqMhz(650);
        let t = m.time_for_instructions(1.0e9, f);
        let n = m.instructions_in(t, f);
        assert!((n - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn validity() {
        assert!(mem_bound().is_valid());
        assert!(!CpiModel::from_components(0.0, 0.0).is_valid());
        assert!(!CpiModel::from_components(1.0, -1.0).is_valid());
        assert!(!CpiModel::from_components(f64::NAN, 0.0).is_valid());
    }
}
