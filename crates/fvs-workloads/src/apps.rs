//! Phase-profile models of the paper's four real applications.
//!
//! The paper evaluates `gzip` and `gap` (CPU-intensive, SPEC CPU2000) and
//! `mcf` (SPEC CPU2000) and `health` (Olden; both memory-intensive). We
//! cannot run the SPEC/Olden binaries, and the scheduler never inspects
//! program text anyway — it sees performance-counter streams. Each model
//! here is a *phase mixture* whose counter-visible behaviour is calibrated
//! to the paper's published aggregate results:
//!
//! - saturation/residency: the CPU apps split time between 1000 and
//!   950 MHz unconstrained, the memory apps spend the majority of their
//!   time at 650 MHz (paper Figure 8);
//! - performance under power caps: CPU apps ≈ 0.79/0.52 of full speed at
//!   75 W/35 W, memory apps ≈ 1.0 at 75 W and significantly reduced at
//!   35 W (paper Table 3);
//! - energy: ≈ 0.94 (gzip), 0.88 (gap) and ≈ 0.43 (mcf, health) of the
//!   non-fvsst system at an unconstrained budget (paper Table 3).
//!
//! Calibration is parameterised by `β`: the ratio of off-core stall
//! cycles to core cycles at the nominal 1 GHz clock
//! (`β = M·f_nom / cpi0`). A phase's ε-constrained frequency follows
//! directly: `f̂_desired > (1−ε) / (1 + ε·β)` (as a fraction of 1 GHz, for
//! small ε), so β is the natural knob for placing a phase's saturation
//! point.
//!
//! Known deviation (documented in EXPERIMENTS.md): under the paper's own
//! analytic model, a phase that loses *nothing* at 750 MHz can lose at
//! most ≈ 14 % at 500 MHz, so Table 3's (1.0 @ 75 W, 0.72 @ 35 W) for
//! `health` is not reachable by any stationary phase mixture — the
//! original magnitudes include machine effects (throttling granularity,
//! misprediction) outside the model. Our mixtures preserve the ordering
//! and the qualitative claims.

use crate::spec::{PhaseSpec, WorkloadSpec};
use fvs_model::{AccessRates, ExecutionProfile, MemoryLatencies};
use serde::{Deserialize, Serialize};

/// Nominal frequency the β calibration is defined against (Hz).
const F_NOM_HZ: f64 = 1.0e9;

/// How a phase's off-core stall time is split across hierarchy levels.
#[derive(Debug, Clone, Copy)]
struct StallSplit {
    l2: f64,
    l3: f64,
    mem: f64,
}

impl StallSplit {
    /// Cache-friendly traffic: most stalls in L2/L3 (gzip/gap-like).
    const CACHEY: StallSplit = StallSplit {
        l2: 0.5,
        l3: 0.2,
        mem: 0.3,
    };
    /// Pointer-chasing traffic: most stalls in main memory (mcf/health).
    const MEMORY: StallSplit = StallSplit {
        l2: 0.1,
        l3: 0.15,
        mem: 0.75,
    };
}

/// Build an `ExecutionProfile` from `(alpha, l1_stall, β)` with a given
/// stall split, using the P630 latencies the whole study assumes.
fn profile_from_beta(alpha: f64, l1_stall: f64, beta: f64, split: StallSplit) -> ExecutionProfile {
    let lat = MemoryLatencies::P630;
    let cpi0 = 1.0 / alpha + l1_stall;
    let stall_time = beta * cpi0 / F_NOM_HZ; // M in seconds/instruction
    ExecutionProfile {
        alpha,
        l1_stall_cycles_per_instr: l1_stall,
        rates: AccessRates {
            l2_per_instr: stall_time * split.l2 / lat.l2_s,
            l3_per_instr: stall_time * split.l3 / lat.l3_s,
            mem_per_instr: stall_time * split.mem / lat.mem_s,
        },
    }
}

/// One of the paper's four applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppBenchmark {
    /// SPEC CPU2000 `gzip` — compression; CPU-intensive.
    Gzip,
    /// SPEC CPU2000 `gap` — group theory interpreter; CPU-intensive.
    Gap,
    /// SPEC CPU2000 `mcf` — network simplex; memory-intensive.
    Mcf,
    /// Olden `health` — hierarchical health-care simulation;
    /// memory-intensive (linked lists).
    Health,
}

/// All four, in the paper's Table 3 column order.
pub const APP_BENCHMARKS: [AppBenchmark; 4] = [
    AppBenchmark::Gzip,
    AppBenchmark::Gap,
    AppBenchmark::Mcf,
    AppBenchmark::Health,
];

impl AppBenchmark {
    /// The benchmark's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppBenchmark::Gzip => "gzip",
            AppBenchmark::Gap => "gap",
            AppBenchmark::Mcf => "mcf",
            AppBenchmark::Health => "health",
        }
    }

    /// Whether the paper classifies it as memory-intensive.
    pub fn is_memory_intensive(&self) -> bool {
        matches!(self, AppBenchmark::Mcf | AppBenchmark::Health)
    }

    /// The workload spec, scaled to roughly `total_instructions` of body
    /// work (phase structure is preserved; per-phase budgets scale).
    pub fn workload(&self, total_instructions: f64) -> WorkloadSpec {
        // (name, alpha, l1_stall, beta, split, weight) per body phase.
        type Row = (&'static str, f64, f64, f64, StallSplit, f64);
        let rows: &[Row] = match self {
            // CPU apps: split time between 1000 MHz (β below the first
            // demotion threshold) and 950 MHz phases — Figure 8.
            // deflate is fully in-L1 (β = 0): with ε = 5 %, any β > 0
            // makes 950 MHz admissible, and Figure 8 shows gzip holding
            // 1000 MHz for much of its run.
            AppBenchmark::Gzip => &[
                ("deflate", 1.2, 0.2, 0.0, StallSplit::CACHEY, 0.55),
                ("window", 1.2, 0.2, 0.30, StallSplit::CACHEY, 0.45),
            ],
            AppBenchmark::Gap => &[
                ("eval", 1.1, 0.25, 0.20, StallSplit::CACHEY, 0.70),
                ("gc", 1.1, 0.25, 0.50, StallSplit::CACHEY, 0.30),
            ],
            // Memory apps: majority of time saturated around 650 MHz.
            // β = 11 sits mid-band for a 650 MHz ε-frequency (the band
            // is β ∈ (9.7, 12.2] at ε = 4.8 %), so window-level counter
            // noise doesn't flip the decision to 700 MHz.
            AppBenchmark::Mcf => &[
                ("pricing", 0.9, 0.3, 11.0, StallSplit::MEMORY, 0.55),
                ("refactor", 0.9, 0.3, 5.3, StallSplit::MEMORY, 0.30),
                ("setup", 0.9, 0.3, 3.0, StallSplit::MEMORY, 0.15),
            ],
            AppBenchmark::Health => &[
                ("traverse", 0.85, 0.35, 11.0, StallSplit::MEMORY, 0.45),
                ("build", 0.85, 0.35, 5.5, StallSplit::MEMORY, 0.55),
            ],
        };
        // Init/exit are kept tiny relative to the body: they are
        // memory-bound and run clocked-down, so even a 1 % instruction
        // share would occupy a disproportionate share of *time*.
        let mut phases = vec![PhaseSpec::init(
            crate::synthetic::init_profile(),
            total_instructions * 0.002,
        )];
        for &(name, alpha, l1, beta, split, weight) in rows {
            phases.push(PhaseSpec::body(
                name,
                profile_from_beta(alpha, l1, beta, split),
                total_instructions * weight,
            ));
        }
        phases.push(PhaseSpec::exit(
            crate::synthetic::exit_profile(),
            total_instructions * 0.001,
        ));
        WorkloadSpec::new(self.name(), phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PhaseKind;
    use fvs_model::{CpiModel, FreqMhz};

    /// Instruction-weighted performance of the body phases at `f`,
    /// relative to 1000 MHz — an analytic stand-in for Table 3's
    /// perf-under-cap rows (each phase capped at `min(desired, cap)`;
    /// here we simply cap the clock, the stronger condition).
    fn capped_perf_ratio(app: AppBenchmark, cap: FreqMhz) -> f64 {
        let lat = MemoryLatencies::P630;
        let w = app.workload(1.0e9);
        let body: Vec<_> = w
            .phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Body)
            .collect();
        // Time to finish each phase at cap vs at 1000 MHz.
        let time = |f: FreqMhz| -> f64 {
            body.iter()
                .map(|p| {
                    let m = CpiModel::from_profile(&p.profile, &lat);
                    p.instructions / m.perf_at(f)
                })
                .sum()
        };
        time(FreqMhz(1000)) / time(cap)
    }

    #[test]
    fn cpu_apps_degrade_roughly_linearly() {
        for app in [AppBenchmark::Gzip, AppBenchmark::Gap] {
            let p750 = capped_perf_ratio(app, FreqMhz(750));
            let p500 = capped_perf_ratio(app, FreqMhz(500));
            assert!((0.75..0.85).contains(&p750), "{} @750: {p750}", app.name());
            assert!((0.50..0.62).contains(&p500), "{} @500: {p500}", app.name());
        }
    }

    #[test]
    fn memory_apps_saturate() {
        for app in [AppBenchmark::Mcf, AppBenchmark::Health] {
            let p750 = capped_perf_ratio(app, FreqMhz(750));
            let p500 = capped_perf_ratio(app, FreqMhz(500));
            assert!(p750 > 0.93, "{} @750: {p750}", app.name());
            assert!((0.78..0.93).contains(&p500), "{} @500: {p500}", app.name());
            // Order: 35 W hurts more than 75 W.
            assert!(p500 < p750);
        }
    }

    #[test]
    fn memory_apps_lose_more_than_cpu_apps_keep() {
        // The paper's headline: under the same cap, memory apps retain
        // much more performance than CPU apps.
        let cpu = capped_perf_ratio(AppBenchmark::Gzip, FreqMhz(500));
        let mem = capped_perf_ratio(AppBenchmark::Mcf, FreqMhz(500));
        assert!(mem > cpu + 0.2, "mem {mem} vs cpu {cpu}");
    }

    #[test]
    fn workload_structure() {
        for app in APP_BENCHMARKS {
            let w = app.workload(1.0e9);
            assert!(w.is_valid(), "{}", app.name());
            assert_eq!(w.phases.first().unwrap().kind, PhaseKind::Init);
            assert_eq!(w.phases.last().unwrap().kind, PhaseKind::Exit);
            assert!(w.body_instructions() > 0.9e9);
        }
    }

    #[test]
    fn classification_matches_paper() {
        assert!(!AppBenchmark::Gzip.is_memory_intensive());
        assert!(!AppBenchmark::Gap.is_memory_intensive());
        assert!(AppBenchmark::Mcf.is_memory_intensive());
        assert!(AppBenchmark::Health.is_memory_intensive());
    }

    #[test]
    fn beta_profile_roundtrip() {
        // profile_from_beta must produce a model whose stall-cycle ratio
        // at 1 GHz is the requested beta.
        let lat = MemoryLatencies::P630;
        for beta in [0.1, 1.0, 5.0, 10.0] {
            let p = profile_from_beta(1.0, 0.2, beta, StallSplit::MEMORY);
            let m = CpiModel::from_profile(&p, &lat);
            let got = m.mem_time_per_instr * 1.0e9 / m.cpi0;
            assert!((got - beta).abs() < 1e-9, "beta {beta} got {got}");
        }
    }
}
