//! Randomised workload mixes for cluster-scale experiments.
//!
//! The paper argues (section 4.2) that clusters exhibit *stable workload
//! diversity*: tiers (web front-ends, application logic, databases) give
//! different nodes persistently different memory intensities, and the
//! lack of migration keeps it that way. This module generates such
//! placements reproducibly from a seed.

use crate::spec::WorkloadSpec;
use crate::synthetic::SyntheticConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A cluster tier with a characteristic CPU-intensity band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Web front-end: protocol parsing and string handling — moderately
    /// CPU-intensive.
    Web,
    /// Application/business logic: the most CPU-intensive tier.
    App,
    /// Database: index walks and buffer-pool misses — memory-intensive.
    Db,
}

impl Tier {
    /// The `(low, high)` CPU-intensity band the tier draws from.
    pub fn intensity_band(&self) -> (f64, f64) {
        match self {
            Tier::Web => (55.0, 80.0),
            Tier::App => (75.0, 100.0),
            Tier::Db => (5.0, 35.0),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Web => "web",
            Tier::App => "app",
            Tier::Db => "db",
        }
    }
}

/// Configuration for a generated workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixConfig {
    /// Body instructions per generated workload.
    pub instructions: f64,
    /// Number of body phases per workload.
    pub phases: usize,
    /// Whether generated workloads loop forever (server processes).
    pub looping: bool,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            instructions: 5.0e9,
            phases: 2,
            looping: true,
        }
    }
}

/// Seeded generator of synthetic workloads.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    config: MixConfig,
}

impl WorkloadGenerator {
    /// Generator with a fixed seed for reproducible experiments.
    pub fn new(seed: u64, config: MixConfig) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// One workload whose phases draw intensities from `tier`'s band.
    pub fn for_tier(&mut self, tier: Tier) -> WorkloadSpec {
        let (lo, hi) = tier.intensity_band();
        self.with_band(lo, hi, tier.name())
    }

    /// One workload with phase intensities drawn uniformly from
    /// `[lo, hi]`.
    pub fn with_band(&mut self, lo: f64, hi: f64, label: &str) -> WorkloadSpec {
        let per_phase = self.config.instructions / self.config.phases as f64;
        let phases: Vec<(f64, f64)> = (0..self.config.phases)
            .map(|_| {
                let intensity = self.rng.gen_range(lo..=hi);
                // Vary phase lengths ±40% around the mean.
                let jitter = self.rng.gen_range(0.6..=1.4);
                (intensity, per_phase * jitter)
            })
            .collect();
        let mut cfg = SyntheticConfig {
            phases,
            with_init: false,
            with_exit: false,
            init_instructions: 0.0,
            exit_instructions: 0.0,
            loop_body: self.config.looping,
        };
        if !self.config.looping {
            cfg.with_init = true;
            cfg.with_exit = true;
            cfg.init_instructions = self.config.instructions * 0.01;
            cfg.exit_instructions = self.config.instructions * 0.005;
        }
        let mut w = cfg.build();
        w.name = format!("{label}-{}", w.name);
        w
    }

    /// A classic three-tier placement over `nodes` nodes: the first third
    /// web, the middle third app, the rest database — the paper's "assign
    /// work in a cluster by tiers" diversity scenario.
    pub fn three_tier_placement(&mut self, nodes: usize) -> Vec<(Tier, WorkloadSpec)> {
        (0..nodes)
            .map(|i| {
                let tier = match 3 * i / nodes.max(1) {
                    0 => Tier::Web,
                    1 => Tier::App,
                    _ => Tier::Db,
                };
                (tier, self.for_tier(tier))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_model::{CpiModel, FreqMhz, MemoryLatencies};

    #[test]
    fn seeded_generation_is_reproducible() {
        let mut a = WorkloadGenerator::new(7, MixConfig::default());
        let mut b = WorkloadGenerator::new(7, MixConfig::default());
        assert_eq!(a.for_tier(Tier::Web), b.for_tier(Tier::Web));
        assert_eq!(a.for_tier(Tier::Db), b.for_tier(Tier::Db));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::new(1, MixConfig::default());
        let mut b = WorkloadGenerator::new(2, MixConfig::default());
        assert_ne!(a.for_tier(Tier::App), b.for_tier(Tier::App));
    }

    #[test]
    fn db_tier_is_more_memory_bound_than_app_tier() {
        let lat = MemoryLatencies::P630;
        let mut g = WorkloadGenerator::new(42, MixConfig::default());
        let sat = |w: &WorkloadSpec| -> f64 {
            // average perf retention at half clock across phases
            w.phases
                .iter()
                .map(|p| {
                    let m = CpiModel::from_profile(&p.profile, &lat);
                    m.perf_at(FreqMhz(500)) / m.perf_at(FreqMhz(1000))
                })
                .sum::<f64>()
                / w.phases.len() as f64
        };
        let db = sat(&g.for_tier(Tier::Db));
        let app = sat(&g.for_tier(Tier::App));
        assert!(
            db > app,
            "db retention {db} should exceed app retention {app}"
        );
    }

    #[test]
    fn three_tier_placement_covers_all_tiers() {
        let mut g = WorkloadGenerator::new(3, MixConfig::default());
        let placement = g.three_tier_placement(9);
        assert_eq!(placement.len(), 9);
        let webs = placement.iter().filter(|(t, _)| *t == Tier::Web).count();
        let apps = placement.iter().filter(|(t, _)| *t == Tier::App).count();
        let dbs = placement.iter().filter(|(t, _)| *t == Tier::Db).count();
        assert_eq!((webs, apps, dbs), (3, 3, 3));
    }

    #[test]
    fn looping_config_produces_looping_workloads() {
        let mut g = WorkloadGenerator::new(5, MixConfig::default());
        assert!(g.for_tier(Tier::Web).loop_body);
        let mut once = WorkloadGenerator::new(
            5,
            MixConfig {
                looping: false,
                ..MixConfig::default()
            },
        );
        let w = once.for_tier(Tier::Web);
        assert!(!w.loop_body);
        assert!(w.phases.len() > 2, "batch workloads get init/exit phases");
    }
}
