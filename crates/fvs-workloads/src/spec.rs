//! Phase and workload specifications.

use fvs_model::ExecutionProfile;
use serde::{Deserialize, Serialize};

/// What a phase represents, for reporting and for error analyses that
/// exclude startup/teardown (paper Table 2's `CPU3*` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Program initialization (memory allocation, file reads).
    Init,
    /// Steady-state body work.
    Body,
    /// Program termination (result write-out, frees).
    Exit,
}

/// One execution phase: a fixed budget of instructions retired under a
/// single counter-visible behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Human-readable label for traces and logs.
    pub name: String,
    /// Phase classification.
    pub kind: PhaseKind,
    /// Ground-truth execution behaviour during the phase.
    pub profile: ExecutionProfile,
    /// Instructions the phase retires before the workload advances.
    pub instructions: f64,
}

impl PhaseSpec {
    /// A body phase.
    pub fn body(name: impl Into<String>, profile: ExecutionProfile, instructions: f64) -> Self {
        PhaseSpec {
            name: name.into(),
            kind: PhaseKind::Body,
            profile,
            instructions,
        }
    }

    /// An init phase.
    pub fn init(profile: ExecutionProfile, instructions: f64) -> Self {
        PhaseSpec {
            name: "init".to_string(),
            kind: PhaseKind::Init,
            profile,
            instructions,
        }
    }

    /// An exit phase.
    pub fn exit(profile: ExecutionProfile, instructions: f64) -> Self {
        PhaseSpec {
            name: "exit".to_string(),
            kind: PhaseKind::Exit,
            profile,
            instructions,
        }
    }

    /// Validity for simulator ingestion.
    pub fn is_valid(&self) -> bool {
        self.profile.is_valid() && self.instructions.is_finite() && self.instructions > 0.0
    }
}

/// A complete workload: an ordered list of phases, optionally looping the
/// body phases forever (servers run until stopped; batch jobs run once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload label for traces.
    pub name: String,
    /// The phases, in execution order.
    pub phases: Vec<PhaseSpec>,
    /// When true, body phases repeat after the last one finishes (init
    /// phases run once; exit phases are skipped while looping).
    pub loop_body: bool,
    /// Marks the hot-idle loop so idle detection can be modelled: the
    /// firmware/OS "this processor is idle" signal of paper section 5.
    pub is_idle_loop: bool,
    /// Iteration-to-iteration drift of the memory behaviour: on the
    /// k-th loop of the body, all off-core access rates are scaled by
    /// `1 + amplitude·sin(k·φ)` (φ = the golden angle, so the sequence
    /// never repeats). Real programs' phases are not identical across
    /// iterations — input-dependent working sets drift — and this is the
    /// prediction stressor beyond sampling noise. `0.0` disables drift.
    pub loop_drift_amplitude: f64,
}

impl WorkloadSpec {
    /// A workload from explicit phases, run once.
    pub fn new(name: impl Into<String>, phases: Vec<PhaseSpec>) -> Self {
        WorkloadSpec {
            name: name.into(),
            phases,
            loop_body: false,
            is_idle_loop: false,
            loop_drift_amplitude: 0.0,
        }
    }

    /// Enable iteration-to-iteration drift (see
    /// [`WorkloadSpec::loop_drift_amplitude`]).
    pub fn with_drift(mut self, amplitude: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&amplitude));
        self.loop_drift_amplitude = amplitude;
        self
    }

    /// Make the body phases repeat indefinitely.
    pub fn looping(mut self) -> Self {
        self.loop_body = true;
        self
    }

    /// The Power4+ "hot idle" loop (paper §7.1): a tight CPU-bound spin
    /// with an observed IPC of about 1.3 and essentially no off-core
    /// traffic — the pathological input that motivates explicit idle
    /// detection, because to the predictor it looks like important
    /// CPU-bound work that deserves `f_max`.
    pub fn hot_idle() -> Self {
        let profile = ExecutionProfile::cpu_bound(1.3);
        WorkloadSpec {
            name: "hot-idle".to_string(),
            phases: vec![PhaseSpec::body("spin", profile, 1.0e12)],
            loop_body: true,
            is_idle_loop: true,
            loop_drift_amplitude: 0.0,
        }
    }

    /// Shorthand used across examples/tests: a single-phase synthetic
    /// workload at the given CPU intensity (0–100) and instruction budget,
    /// without init/exit phases.
    pub fn synthetic(cpu_intensity: f64, instructions: f64) -> Self {
        let profile = crate::synthetic::intensity_profile(cpu_intensity);
        WorkloadSpec::new(
            format!("synthetic-{cpu_intensity:.0}"),
            vec![PhaseSpec::body(
                format!("c{cpu_intensity:.0}"),
                profile,
                instructions,
            )],
        )
    }

    /// Total instructions across one pass of all phases.
    pub fn total_instructions(&self) -> f64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    /// Instructions in body phases only.
    pub fn body_instructions(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Body)
            .map(|p| p.instructions)
            .sum()
    }

    /// Validity for simulator ingestion.
    pub fn is_valid(&self) -> bool {
        !self.phases.is_empty() && self.phases.iter().all(PhaseSpec::is_valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_idle_looks_cpu_bound() {
        let w = WorkloadSpec::hot_idle();
        assert!(w.is_idle_loop);
        assert!(w.loop_body);
        assert!(w.is_valid());
        let p = &w.phases[0].profile;
        assert_eq!(p.rates.mem_per_instr, 0.0);
        assert!((p.alpha - 1.3).abs() < 1e-12);
    }

    #[test]
    fn totals_sum_phases() {
        let prof = ExecutionProfile::cpu_bound(1.0);
        let w = WorkloadSpec::new(
            "w",
            vec![
                PhaseSpec::init(prof, 100.0),
                PhaseSpec::body("b1", prof, 200.0),
                PhaseSpec::body("b2", prof, 300.0),
                PhaseSpec::exit(prof, 50.0),
            ],
        );
        assert_eq!(w.total_instructions(), 650.0);
        assert_eq!(w.body_instructions(), 500.0);
    }

    #[test]
    fn validity_checks() {
        let prof = ExecutionProfile::cpu_bound(1.0);
        assert!(!WorkloadSpec::new("empty", vec![]).is_valid());
        let bad = PhaseSpec::body("b", prof, 0.0);
        assert!(!bad.is_valid());
        assert!(!WorkloadSpec::new("w", vec![bad]).is_valid());
    }
}
