//! Workload models for the frequency/voltage scheduling experiments.
//!
//! Three families, mirroring the paper's section 7.3:
//!
//! - [`synthetic`] — the adjustable synthetic benchmark of Kotla et al.:
//!   a single-threaded program whose ratio of memory-intensive to
//!   CPU-intensive work is a parameter (0–100 % "CPU intensity"), with
//!   configurable phases plus the initialization and termination phases
//!   whose prediction error the paper's Table 2 calls out.
//! - [`apps`] — phase-profile models of the four real applications the
//!   paper studies: `gzip` and `gap` (CPU-intensive, SPEC CPU2000), `mcf`
//!   (memory-intensive, SPEC CPU2000) and `health` (memory-intensive,
//!   Olden). We do not execute the programs; we reproduce their
//!   counter-visible behaviour — per-phase `α` and memory access rates
//!   calibrated so saturation frequencies and frequency-residency
//!   histograms match the paper's Figure 8 / Table 3 shape.
//! - [`generator`] — randomised workload mixes for cluster-scale
//!   experiments (tiered web/app/db placements and arbitrary diversity
//!   sweeps).
//!
//! A workload is a sequence of [`PhaseSpec`]s, each a fixed instruction
//! budget executed under one [`fvs_model::ExecutionProfile`]. Because
//! phases are denominated in *instructions*, slowing the clock stretches
//! a phase's wall-clock footprint exactly as it would on hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod generator;
pub mod spec;
pub mod synthetic;

pub use apps::{AppBenchmark, APP_BENCHMARKS};
pub use generator::{MixConfig, Tier, WorkloadGenerator};
pub use spec::{PhaseKind, PhaseSpec, WorkloadSpec};
pub use synthetic::{intensity_profile, SyntheticConfig};
