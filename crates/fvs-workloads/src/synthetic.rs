//! The paper's adjustable synthetic benchmark.
//!
//! The original (from Kotla et al.\[2\]) is a single-threaded program
//! whose parameter is the ratio of memory-intensive to CPU-intensive work
//! — "CPU intensity", 0–100 % — plus phase lengths. It is built so that an
//! L1 miss almost always goes to memory (huge footprint, no L2/L3 reuse).
//! This module reproduces it as a parameterised [`ExecutionProfile`]
//! generator plus a [`SyntheticConfig`] builder for multi-phase instances
//! with the init/termination phases whose prediction error the paper's
//! Table 2 isolates (its `CPU3*` column excludes them).

use crate::spec::{PhaseSpec, WorkloadSpec};
use fvs_model::{AccessRates, ExecutionProfile};
use serde::{Deserialize, Serialize};

/// Perfect-machine IPC of the benchmark's compute loop. Matches the scale
/// of the Power4+ numbers in the paper (hot idle observes ≈1.3).
pub const SYNTHETIC_ALPHA: f64 = 1.3;

/// Frequency-independent L1 stall cycles per instruction of the loop.
pub const SYNTHETIC_L1_STALL: f64 = 0.15;

/// Memory accesses per instruction at 0 % CPU intensity (fully
/// memory-bound): roughly one access per six instructions — a
/// pointer-chasing loop over a footprint far exceeding the caches.
pub const MAX_MEM_RATE: f64 = 0.16;

/// Exponent of the intensity→memory-rate curve. The rate follows
/// `MAX_MEM_RATE · m^γ` with `m` the memory fraction `1 − c/100`. The
/// cubic shape is calibrated against two paper constraints at once:
/// a 20 %-intensity phase must keep >97 % of its performance at half
/// clock (Figure 6 shows no visible degradation for the memory-intensive
/// phase), while a 75 %-intensity phase must still be CPU-ish — wanting
/// ≈950 MHz unconstrained and losing performance under a 750 MHz cap
/// (Figure 7's "high CPU-intensity phases").
pub const MEM_RATE_EXPONENT: f64 = 3.0;

/// Residual memory rate at 100 % CPU intensity: even the CPU-bound phase
/// has "some memory-related stalls" (paper §8.3), making its degradation
/// under a frequency cap slightly sub-linear.
pub const RESIDUAL_MEM_RATE: f64 = 5.0e-4;

/// L2/L3 traffic as fractions of the memory rate: small, because the
/// benchmark is constructed so an L1 miss usually goes all the way to
/// memory.
pub const L2_FRACTION: f64 = 0.15;
/// See [`L2_FRACTION`].
pub const L3_FRACTION: f64 = 0.08;

/// Ground-truth profile of the synthetic benchmark at a given CPU
/// intensity (0 = fully memory-bound … 100 = fully CPU-bound).
///
/// Out-of-range intensities are clamped.
pub fn intensity_profile(cpu_intensity: f64) -> ExecutionProfile {
    let c = cpu_intensity.clamp(0.0, 100.0);
    let m = 1.0 - c / 100.0;
    let mem = MAX_MEM_RATE * m.powf(MEM_RATE_EXPONENT) + RESIDUAL_MEM_RATE;
    ExecutionProfile {
        alpha: SYNTHETIC_ALPHA,
        l1_stall_cycles_per_instr: SYNTHETIC_L1_STALL,
        rates: AccessRates {
            l2_per_instr: mem * L2_FRACTION,
            l3_per_instr: mem * L3_FRACTION,
            mem_per_instr: mem,
        },
    }
}

/// Profile of the benchmark's initialization phase: allocating and
/// first-touching the footprint — bursty memory traffic with poor ILP.
/// Deliberately unlike any body phase, so prediction error concentrated
/// here is visible in Table 2 reproductions.
pub fn init_profile() -> ExecutionProfile {
    ExecutionProfile {
        alpha: 0.8,
        l1_stall_cycles_per_instr: 0.3,
        rates: AccessRates {
            l2_per_instr: 0.02,
            l3_per_instr: 0.01,
            mem_per_instr: 0.06,
        },
    }
}

/// Profile of the termination phase: result aggregation and frees.
pub fn exit_profile() -> ExecutionProfile {
    ExecutionProfile {
        alpha: 1.0,
        l1_stall_cycles_per_instr: 0.2,
        rates: AccessRates {
            l2_per_instr: 0.01,
            l3_per_instr: 0.005,
            mem_per_instr: 0.02,
        },
    }
}

/// Builder for a multi-phase synthetic benchmark instance.
///
/// The paper's version "currently supports two (2) phases, but each phase
/// may be of a different length and different memory-to-CPU intensity";
/// this builder generalises to any number while keeping the two-phase
/// constructor prominent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// `(cpu_intensity, instructions)` pairs for each body phase.
    pub phases: Vec<(f64, f64)>,
    /// Include the init phase (default true, as in the real program).
    pub with_init: bool,
    /// Include the exit phase (default true).
    pub with_exit: bool,
    /// Instructions in the init phase.
    pub init_instructions: f64,
    /// Instructions in the exit phase.
    pub exit_instructions: f64,
    /// Repeat the body phases until the simulation ends.
    pub loop_body: bool,
}

impl SyntheticConfig {
    /// The paper's canonical two-phase configuration.
    pub fn two_phase(
        intensity_a: f64,
        instructions_a: f64,
        intensity_b: f64,
        instructions_b: f64,
    ) -> Self {
        SyntheticConfig {
            phases: vec![(intensity_a, instructions_a), (intensity_b, instructions_b)],
            with_init: true,
            with_exit: true,
            init_instructions: 2.0e8,
            exit_instructions: 1.0e8,
            loop_body: false,
        }
    }

    /// A single-phase configuration at one intensity.
    pub fn single(intensity: f64, instructions: f64) -> Self {
        SyntheticConfig {
            phases: vec![(intensity, instructions)],
            with_init: true,
            with_exit: true,
            init_instructions: 2.0e8,
            exit_instructions: 1.0e8,
            loop_body: false,
        }
    }

    /// Drop the init/exit phases (steady-state-only studies).
    pub fn body_only(mut self) -> Self {
        self.with_init = false;
        self.with_exit = false;
        self
    }

    /// Loop the body phases.
    pub fn looping(mut self) -> Self {
        self.loop_body = true;
        self
    }

    /// Materialise the workload spec.
    pub fn build(&self) -> WorkloadSpec {
        let mut phases = Vec::new();
        if self.with_init {
            phases.push(PhaseSpec::init(init_profile(), self.init_instructions));
        }
        for (i, &(intensity, instructions)) in self.phases.iter().enumerate() {
            phases.push(PhaseSpec::body(
                format!("phase{}-c{:.0}", i, intensity),
                intensity_profile(intensity),
                instructions,
            ));
        }
        if self.with_exit && !self.loop_body {
            phases.push(PhaseSpec::exit(exit_profile(), self.exit_instructions));
        }
        let mut w = WorkloadSpec::new(
            format!(
                "synthetic[{}]",
                self.phases
                    .iter()
                    .map(|(c, _)| format!("{c:.0}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            phases,
        );
        w.loop_body = self.loop_body;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_model::{CpiModel, FreqMhz, MemoryLatencies};

    #[test]
    fn intensity_extremes() {
        let cpu = intensity_profile(100.0);
        let mem = intensity_profile(0.0);
        assert!(cpu.rates.mem_per_instr < 1.0e-3);
        assert!((mem.rates.mem_per_instr - (MAX_MEM_RATE + RESIDUAL_MEM_RATE)).abs() < 1e-12);
        assert!(cpu.is_valid() && mem.is_valid());
    }

    #[test]
    fn intensity_clamped() {
        assert_eq!(intensity_profile(150.0), intensity_profile(100.0));
        assert_eq!(intensity_profile(-5.0), intensity_profile(0.0));
    }

    #[test]
    fn memory_rate_monotone_in_memory_intensity() {
        let mut prev = f64::INFINITY;
        for c in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let r = intensity_profile(c).rates.mem_per_instr;
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn calibration_memory_intensive_saturates_at_half_clock() {
        // Paper Fig. 6: the 20%-intensity phase shows no visible
        // degradation down to a 35 W (500 MHz) limit.
        let lat = MemoryLatencies::P630;
        let m = CpiModel::from_profile(&intensity_profile(20.0), &lat);
        let ratio = m.perf_at(FreqMhz(500)) / m.perf_at(FreqMhz(1000));
        assert!(ratio > 0.97, "ratio {ratio}");
    }

    #[test]
    fn calibration_cpu_intensive_degrades_almost_linearly() {
        // Paper Fig. 6: the 100%-intensity phase degrades slightly less
        // than one-to-one with frequency.
        let lat = MemoryLatencies::P630;
        let m = CpiModel::from_profile(&intensity_profile(100.0), &lat);
        let ratio = m.perf_at(FreqMhz(500)) / m.perf_at(FreqMhz(1000));
        assert!(ratio > 0.5 && ratio < 0.62, "ratio {ratio}");
    }

    #[test]
    fn two_phase_layout() {
        let w = SyntheticConfig::two_phase(100.0, 1.0e9, 20.0, 1.0e9).build();
        assert_eq!(w.phases.len(), 4); // init + 2 body + exit
        assert_eq!(w.phases[0].kind, crate::spec::PhaseKind::Init);
        assert_eq!(w.phases[3].kind, crate::spec::PhaseKind::Exit);
        assert!(w.is_valid());
    }

    #[test]
    fn body_only_and_looping() {
        let w = SyntheticConfig::single(50.0, 1.0e9).body_only().build();
        assert_eq!(w.phases.len(), 1);
        let l = SyntheticConfig::single(50.0, 1.0e9).looping().build();
        assert!(l.loop_body);
        // Looping workloads skip the exit phase.
        assert!(l
            .phases
            .iter()
            .all(|p| p.kind != crate::spec::PhaseKind::Exit));
    }
}
