//! First rung of the degradation ladder: refuse to schedule on garbage.
//!
//! The [`SampleValidator`] sits between the raw counter stream and the
//! predictor. Samples that cannot be real — non-finite counters,
//! negative counts, impossible IPC — are quarantined instead of entering
//! the model-fitting window, and the validator remembers the last model
//! that was fitted from trusted data so the scheduler can keep deciding
//! from a known-good fingerprint while a processor's counters misbehave.
//!
//! Validation is pure preallocated arithmetic: no allocation after
//! construction, and thresholds generous enough that legitimate noisy
//! samples (the ±1.5 % measurement noise of the simulator) are never
//! quarantined — so with no faults injected, behavior is bit-identical
//! to running without the validator.

use fvs_model::{CounterDelta, CpiModel};

/// Verdict on one counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleVerdict {
    /// The sample is physically plausible; feed it to the predictor.
    Trusted,
    /// The sample cannot be real; drop it and fall back to the last
    /// trusted model.
    Quarantined,
}

#[derive(Debug, Clone, Default)]
struct ProcState {
    quarantined: u64,
    trusted: Option<CpiModel>,
}

/// Quarantines impossible counter samples and remembers each
/// processor's last trusted model fingerprint.
#[derive(Debug, Clone)]
pub struct SampleValidator {
    max_ipc: f64,
    procs: Vec<ProcState>,
    total_quarantined: u64,
}

impl SampleValidator {
    /// Default upper bound on plausible IPC. The P630's 4-issue core
    /// cannot sustain IPC > 4; 8 leaves a 2× guard band so measurement
    /// noise can never trip it.
    pub const DEFAULT_MAX_IPC: f64 = 8.0;

    /// Validator for `n` processors with the default IPC bound.
    pub fn new(n: usize) -> Self {
        Self::with_max_ipc(n, Self::DEFAULT_MAX_IPC)
    }

    /// Validator with a custom IPC plausibility bound.
    pub fn with_max_ipc(n: usize, max_ipc: f64) -> Self {
        SampleValidator {
            max_ipc,
            procs: vec![ProcState::default(); n],
            total_quarantined: 0,
        }
    }

    /// Judge one sample for processor `proc`. Quarantined samples are
    /// counted; the caller must not push them into the predictor.
    #[inline]
    pub fn validate(&mut self, proc: usize, delta: &CounterDelta) -> SampleVerdict {
        let plausible = delta.is_sane()
            && delta.observed_ipc() <= self.max_ipc
            && (delta.instructions == 0.0 || delta.cycles > 0.0);
        if plausible {
            SampleVerdict::Trusted
        } else {
            self.procs[proc].quarantined += 1;
            self.total_quarantined += 1;
            SampleVerdict::Quarantined
        }
    }

    /// Remember `model` as `proc`'s last trusted fingerprint (ignored
    /// unless the model is valid).
    #[inline]
    pub fn record_trusted(&mut self, proc: usize, model: CpiModel) {
        if model.is_valid() {
            self.procs[proc].trusted = Some(model);
        }
    }

    /// The last trusted model fingerprint for `proc`, if any.
    #[inline]
    pub fn trusted_model(&self, proc: usize) -> Option<CpiModel> {
        self.procs[proc].trusted
    }

    /// Samples quarantined for `proc` so far.
    pub fn quarantined(&self, proc: usize) -> u64 {
        self.procs[proc].quarantined
    }

    /// Samples quarantined across all processors.
    pub fn total_quarantined(&self) -> u64 {
        self.total_quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> CounterDelta {
        CounterDelta {
            instructions: 1.0e6,
            cycles: 2.0e6,
            l2_accesses: 1.0e4,
            l3_accesses: 5.0e3,
            mem_accesses: 2.0e3,
        }
    }

    #[test]
    fn plausible_samples_are_trusted() {
        let mut v = SampleValidator::new(2);
        assert_eq!(v.validate(0, &sane()), SampleVerdict::Trusted);
        // A zero delta (stuck counter / idle interval) is not evidence
        // of corruption — it is merely uninformative.
        assert_eq!(
            v.validate(1, &CounterDelta::default()),
            SampleVerdict::Trusted
        );
        assert_eq!(v.total_quarantined(), 0);
    }

    #[test]
    fn nan_spike_and_negative_are_quarantined() {
        let mut v = SampleValidator::new(1);
        let mut nan = sane();
        nan.cycles = f64::NAN;
        assert_eq!(v.validate(0, &nan), SampleVerdict::Quarantined);

        let mut spike = sane();
        spike.instructions *= 1.0e3;
        assert_eq!(v.validate(0, &spike), SampleVerdict::Quarantined);

        let mut neg = sane();
        neg.mem_accesses = -1.0;
        assert_eq!(v.validate(0, &neg), SampleVerdict::Quarantined);

        // Instructions without cycles is physically impossible.
        let mut nocyc = sane();
        nocyc.cycles = 0.0;
        assert_eq!(v.validate(0, &nocyc), SampleVerdict::Quarantined);

        assert_eq!(v.quarantined(0), 4);
        assert_eq!(v.total_quarantined(), 4);
    }

    #[test]
    fn trusted_model_survives_quarantine() {
        let mut v = SampleValidator::new(1);
        let m = CpiModel::from_components(1.2, 40.0e-12);
        v.record_trusted(0, m);
        let mut nan = sane();
        nan.instructions = f64::INFINITY;
        assert_eq!(v.validate(0, &nan), SampleVerdict::Quarantined);
        assert_eq!(v.trusted_model(0), Some(m));
    }

    #[test]
    fn invalid_models_are_not_recorded() {
        let mut v = SampleValidator::new(1);
        v.record_trusted(0, CpiModel::from_components(f64::NAN, 40.0e-12));
        assert_eq!(v.trusted_model(0), None);
    }
}
