//! Fault injection and graceful degradation for the fvsst stack.
//!
//! The paper's hard requirement is that `Σ P(f_p) ≤ P_max` within `ΔT`
//! of any budget drop — *including* drops caused by a failed supply, and
//! *despite* the noisy counters and flaky actuation real DVFS stacks
//! face. This crate provides both sides of that bargain:
//!
//! - **Injection**: a declarative [`FaultPlan`] (rates + scripted
//!   events) driven by a deterministic, seedable [`FaultInjector`].
//!   Counter corruption ([`CounterFaultKind`]: NaN / spike / stuck /
//!   stale), actuation faults ([`ActuationFaultKind`]: dropped /
//!   partial / delayed commands), cluster faults ([`SummaryFaultKind`]:
//!   lost / duplicate / late summaries, plus scripted node outages) and
//!   supply faults (scripted budget drops). Same plan + same seed →
//!   byte-identical fault stream.
//! - **Degradation**: the [`SampleValidator`], first rung of the
//!   degradation ladder (quarantine → retry → fail-safe pin →
//!   conservative charging; see DESIGN.md §11), which refuses
//!   impossible counter samples and remembers each processor's last
//!   trusted model fingerprint.
//!
//! Everything is zero-cost when quiet: a quiet injector answers every
//! query with a single branch, and the validator is branch-and-compare
//! arithmetic on preallocated state — the counting-allocator proofs in
//! fvs-sched continue to hold with the fault machinery compiled in.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod injector;
mod plan;
mod validator;
mod wire_plan;

pub use injector::{
    apply_counter_fault, ActuationFaultKind, CounterFaultKind, FaultInjector, SummaryFaultKind,
};
pub use plan::{BudgetDropSpec, FaultPlan, NodeOutageSpec, PlanParseError};
pub use validator::{SampleValidator, SampleVerdict};
pub use wire_plan::{PartitionDirection, PartitionSpec, WireFaultPlan};
