//! Declarative fault plans.
//!
//! A [`FaultPlan`] describes *what* can go wrong and how often; the
//! [`FaultInjector`](crate::FaultInjector) turns it into a deterministic
//! stream of fault decisions from a seed. Plans are context-free: rates
//! are per-opportunity probabilities, budget drops are *fractions* of
//! whatever budget the run started with, so the same plan works on a
//! 4-core machine and a 64-node rack.

use std::error::Error;
use std::fmt;

use crate::wire_plan::WireFaultPlan;

/// A scripted supply fault: at `at_s` the budget collapses to
/// `factor` × the initial budget (a failed supply mid-round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetDropSpec {
    /// When the supply fails (s).
    pub at_s: f64,
    /// Fraction of the initial budget that survives (0, 1].
    pub factor: f64,
}

/// A scripted node outage: `node` goes dark at `down_s` and (optionally)
/// returns at `up_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutageSpec {
    /// Which node dies.
    pub node: usize,
    /// When it stops responding (s).
    pub down_s: f64,
    /// When it comes back (s); `f64::INFINITY` means never.
    pub up_s: f64,
}

/// What can go wrong, and how often.
///
/// The default plan is empty: every rate zero, no scripted events —
/// [`is_quiet`](FaultPlan::is_quiet) returns `true` and an injector
/// built from it never fires.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-sample probability a counter delta is corrupted
    /// (NaN / spike / stuck / stale, chosen uniformly).
    pub counter_rate: f64,
    /// Per-command probability a frequency actuation misbehaves
    /// (dropped / partially applied / delayed, chosen uniformly).
    pub actuation_rate: f64,
    /// Per-summary probability a cluster node's summary is lost in
    /// flight (heartbeat loss).
    pub summary_loss_rate: f64,
    /// Per-summary probability the summary arrives twice.
    pub summary_duplicate_rate: f64,
    /// Per-summary probability the summary is delayed by
    /// [`summary_late_s`](FaultPlan::summary_late_s) extra seconds.
    pub summary_late_rate: f64,
    /// Extra uplink delay applied to late summaries (s).
    pub summary_late_s: f64,
    /// Scripted supply faults (budget drops), as fractions of the
    /// initial budget.
    pub budget_drops: Vec<BudgetDropSpec>,
    /// Scripted node outages.
    pub node_outages: Vec<NodeOutageSpec>,
    /// Wire-level faults (frame drop/delay/dup/corrupt, resets,
    /// one-way partitions). Host-level consumers (the simulators)
    /// ignore this; fvs-net's `ChaosStream` enforces it.
    pub wire: WireFaultPlan,
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan can never produce a fault — injectors built
    /// from a quiet plan are a single branch per query.
    pub fn is_quiet(&self) -> bool {
        self.counter_rate <= 0.0
            && self.actuation_rate <= 0.0
            && self.summary_loss_rate <= 0.0
            && self.summary_duplicate_rate <= 0.0
            && self.summary_late_rate <= 0.0
            && self.budget_drops.is_empty()
            && self.node_outages.is_empty()
            && self.wire.is_quiet()
    }

    /// The default chaos mix used by the `chaos` experiment: moderate
    /// rates in every fault class, a supply failure at t = 1 s cutting
    /// the budget roughly in half, and one node outage with recovery.
    pub fn chaos() -> Self {
        FaultPlan {
            counter_rate: 0.05,
            actuation_rate: 0.20,
            summary_loss_rate: 0.10,
            summary_duplicate_rate: 0.05,
            summary_late_rate: 0.05,
            summary_late_s: 0.3,
            budget_drops: vec![BudgetDropSpec {
                at_s: 1.0,
                factor: 0.55,
            }],
            node_outages: vec![NodeOutageSpec {
                node: 0,
                down_s: 1.2,
                up_s: 2.4,
            }],
            wire: WireFaultPlan::chaos(),
        }
    }

    /// Parse a plan from its compact command-line spec.
    ///
    /// Grammar (comma-separated `key=value` clauses, order free):
    ///
    /// - `none` / empty string — the quiet plan
    /// - `chaos` — the [`chaos`](FaultPlan::chaos) preset
    /// - `counters=R` — counter-corruption rate (0–1)
    /// - `actuation=R` — actuation-fault rate (0–1)
    /// - `loss=R` — summary-loss rate (0–1)
    /// - `dup=R` — summary-duplication rate (0–1)
    /// - `late=R:EXTRA_S` — summary-delay rate and the extra delay (s)
    /// - `drop=F@T` — budget drops to fraction `F` at `T` s (repeatable)
    /// - `node=I@DOWN:UP` — node `I` offline during `[DOWN, UP)` s; omit
    ///   `:UP` for a permanent outage (repeatable)
    ///
    /// Wire-level clauses (enforced by fvs-net's `ChaosStream`; see
    /// [`WireFaultPlan`]):
    ///
    /// - `wire=R` — per-frame drop rate (0–1)
    /// - `delay=R[:HOLD_S]` — per-frame delay rate and hold time (s,
    ///   default 0.05)
    /// - `wdup=R` — per-frame duplication rate (`dup=` is the summary
    ///   clause above)
    /// - `corrupt=R` — per-frame truncation/bit-flip rate
    /// - `reset=R` — per-frame connection-reset rate
    /// - `partition=I@T[:T2]` — node `I`'s connection blackholed both
    ///   ways during `[T, T2)` s; omit `:T2` for forever (repeatable)
    /// - `partition_up=I@T[:T2]` / `partition_down=I@T[:T2]` — one-way
    ///   variants (uplink = toward the coordinator)
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultPlan::none());
        }
        if spec == "chaos" {
            return Ok(FaultPlan::chaos());
        }
        let mut plan = FaultPlan::none();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| PlanParseError::bad(clause, "expected key=value"))?;
            match key {
                "counters" => plan.counter_rate = parse_rate(clause, value)?,
                "actuation" => plan.actuation_rate = parse_rate(clause, value)?,
                "loss" => plan.summary_loss_rate = parse_rate(clause, value)?,
                "dup" => plan.summary_duplicate_rate = parse_rate(clause, value)?,
                "late" => {
                    let (rate, extra) = value
                        .split_once(':')
                        .ok_or_else(|| PlanParseError::bad(clause, "expected late=R:EXTRA_S"))?;
                    plan.summary_late_rate = parse_rate(clause, rate)?;
                    plan.summary_late_s = parse_nonneg(clause, extra)?;
                }
                "drop" => {
                    let (factor, at) = value
                        .split_once('@')
                        .ok_or_else(|| PlanParseError::bad(clause, "expected drop=F@T"))?;
                    let factor = parse_rate(clause, factor)?;
                    if factor <= 0.0 {
                        return Err(PlanParseError::bad(clause, "drop fraction must be > 0"));
                    }
                    plan.budget_drops.push(BudgetDropSpec {
                        at_s: parse_nonneg(clause, at)?,
                        factor,
                    });
                }
                "node" => {
                    let (node, window) = value
                        .split_once('@')
                        .ok_or_else(|| PlanParseError::bad(clause, "expected node=I@DOWN[:UP]"))?;
                    let node: usize = node
                        .parse()
                        .map_err(|_| PlanParseError::bad(clause, "bad node index"))?;
                    let (down, up) = match window.split_once(':') {
                        Some((d, u)) => (parse_nonneg(clause, d)?, parse_nonneg(clause, u)?),
                        None => (parse_nonneg(clause, window)?, f64::INFINITY),
                    };
                    if up <= down {
                        return Err(PlanParseError::bad(
                            clause,
                            "outage must end after it starts",
                        ));
                    }
                    plan.node_outages.push(NodeOutageSpec {
                        node,
                        down_s: down,
                        up_s: up,
                    });
                }
                other => {
                    if !plan.wire.parse_clause(other, clause, value)? {
                        return Err(PlanParseError::bad(
                            clause,
                            match other {
                                "" => "empty key",
                                _ => "unknown key",
                            },
                        ));
                    }
                }
            }
        }
        Ok(plan)
    }
}

fn parse_f64(clause: &str, s: &str) -> Result<f64, PlanParseError> {
    let x: f64 = s
        .trim()
        .parse()
        .map_err(|_| PlanParseError::bad(clause, "not a number"))?;
    if !x.is_finite() {
        return Err(PlanParseError::bad(clause, "must be finite"));
    }
    Ok(x)
}

pub(crate) fn parse_rate(clause: &str, s: &str) -> Result<f64, PlanParseError> {
    let x = parse_f64(clause, s)?;
    if !(0.0..=1.0).contains(&x) {
        return Err(PlanParseError::bad(clause, "rate must be in [0, 1]"));
    }
    Ok(x)
}

pub(crate) fn parse_nonneg(clause: &str, s: &str) -> Result<f64, PlanParseError> {
    let x = parse_f64(clause, s)?;
    if x < 0.0 {
        return Err(PlanParseError::bad(clause, "must be >= 0"));
    }
    Ok(x)
}

/// A fault-plan spec that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    clause: String,
    reason: &'static str,
}

impl PlanParseError {
    pub(crate) fn bad(clause: &str, reason: &'static str) -> Self {
        PlanParseError {
            clause: clause.to_string(),
            reason,
        }
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault-plan clause `{}`: {}",
            self.clause, self.reason
        )
    }
}

impl Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_none_parse_to_the_quiet_plan() {
        assert!(FaultPlan::parse("").unwrap().is_quiet());
        assert!(FaultPlan::parse("none").unwrap().is_quiet());
        assert!(FaultPlan::none().is_quiet());
    }

    #[test]
    fn chaos_preset_is_not_quiet() {
        let p = FaultPlan::parse("chaos").unwrap();
        assert_eq!(p, FaultPlan::chaos());
        assert!(!p.is_quiet());
    }

    #[test]
    fn full_grammar_round_trips() {
        let p = FaultPlan::parse(
            "counters=0.1, actuation=0.25, loss=0.05, dup=0.02, late=0.03:0.4, \
             drop=0.5@1.0, drop=0.35@2.5, node=1@0.8:1.6, node=2@3.0",
        )
        .unwrap();
        assert_eq!(p.counter_rate, 0.1);
        assert_eq!(p.actuation_rate, 0.25);
        assert_eq!(p.summary_loss_rate, 0.05);
        assert_eq!(p.summary_duplicate_rate, 0.02);
        assert_eq!(p.summary_late_rate, 0.03);
        assert_eq!(p.summary_late_s, 0.4);
        assert_eq!(p.budget_drops.len(), 2);
        assert_eq!(p.budget_drops[1].factor, 0.35);
        assert_eq!(p.node_outages.len(), 2);
        assert_eq!(p.node_outages[0].up_s, 1.6);
        assert!(p.node_outages[1].up_s.is_infinite());
    }

    #[test]
    fn wire_clauses_ride_along_with_host_clauses() {
        let p = FaultPlan::parse("loss=0.1, wire=0.05, partition=2@5:9, reset=0.01").unwrap();
        assert_eq!(p.summary_loss_rate, 0.1);
        assert_eq!(p.wire.drop_rate, 0.05);
        assert_eq!(p.wire.reset_rate, 0.01);
        assert_eq!(p.wire.partitions.len(), 1);
        assert!(!p.is_quiet());
        // A wire-only plan is not quiet either.
        assert!(!FaultPlan::parse("wire=0.05").unwrap().is_quiet());
        // `dup=` stays the summary clause; `wdup=` is the frame clause.
        let p = FaultPlan::parse("dup=0.2, wdup=0.3").unwrap();
        assert_eq!(p.summary_duplicate_rate, 0.2);
        assert_eq!(p.wire.duplicate_rate, 0.3);
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_clause() {
        for spec in [
            "counters=2.0",
            "counters=nan",
            "actuation",
            "drop=0.5",
            "drop=0@1.0",
            "node=x@1.0",
            "node=1@2.0:1.0",
            "late=0.1",
            "frobnicate=1",
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(!err.to_string().is_empty(), "{spec}");
        }
    }
}
