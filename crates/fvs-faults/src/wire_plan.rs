//! Declarative wire-level fault plans.
//!
//! [`WireFaultPlan`] extends the host-level [`FaultPlan`] grammar down
//! to the socket: per-frame drop / delay / duplication / corruption
//! rates, connection resets, and scripted one-way partitions. The plan
//! is pure description — fvs-net's `ChaosStream` turns it into a
//! deterministic fault stream from a seed, exactly as
//! [`FaultInjector`](crate::FaultInjector) does for host faults.
//!
//! One-way partitions are first-class because the paper's conservative
//! charging discipline treats them differently: an *uplink*-dead node
//! (summaries lost) must be charged its last-known ceiling, while a
//! *downlink*-dead node (commands lost) silently keeps running its old
//! frequency — the coordinator's charge must cover both.

use crate::plan::{parse_nonneg, parse_rate, PlanParseError};

/// Which direction of a connection a scripted partition blackholes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionDirection {
    /// Traffic toward the coordinator is dropped (summaries lost);
    /// commands still arrive.
    Uplink,
    /// Traffic toward the agent is dropped (commands lost); summaries
    /// still arrive.
    Downlink,
    /// Both directions are dropped (the classic partition).
    Both,
}

impl PartitionDirection {
    /// Whether this partition blocks agent → coordinator traffic.
    pub fn blocks_uplink(self) -> bool {
        matches!(self, PartitionDirection::Uplink | PartitionDirection::Both)
    }

    /// Whether this partition blocks coordinator → agent traffic.
    pub fn blocks_downlink(self) -> bool {
        matches!(
            self,
            PartitionDirection::Downlink | PartitionDirection::Both
        )
    }
}

/// A scripted partition: `node`'s traffic is blackholed (in the given
/// direction) during `[from_s, until_s)`, measured on the wall clock of
/// whoever holds the chaos stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSpec {
    /// The node whose connection is partitioned.
    pub node: usize,
    /// When the partition starts (s).
    pub from_s: f64,
    /// When it heals (s); `f64::INFINITY` means never.
    pub until_s: f64,
    /// Which direction dies.
    pub direction: PartitionDirection,
}

impl PartitionSpec {
    /// Whether this spec blackholes `direction`-bound traffic for
    /// `node` at time `now_s`.
    pub fn active(&self, node: usize, now_s: f64) -> bool {
        self.node == node && now_s >= self.from_s && now_s < self.until_s
    }
}

/// What can go wrong on the wire, and how often. Rates are per-frame
/// probabilities; partitions are scripted windows. The default plan is
/// quiet: a `ChaosStream` built from it is a pure passthrough.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireFaultPlan {
    /// Per-frame probability the frame is silently dropped.
    pub drop_rate: f64,
    /// Per-frame probability the frame is held back by
    /// [`delay_s`](WireFaultPlan::delay_s).
    pub delay_rate: f64,
    /// How long a delayed frame is held (s).
    pub delay_s: f64,
    /// Per-frame probability the frame is delivered twice.
    pub duplicate_rate: f64,
    /// Per-frame probability the frame is truncated or bit-flipped.
    pub corrupt_rate: f64,
    /// Per-frame probability the connection is reset instead of
    /// carrying the frame.
    pub reset_rate: f64,
    /// Scripted (possibly one-way) partitions.
    pub partitions: Vec<PartitionSpec>,
}

impl WireFaultPlan {
    /// The empty plan: the wire is perfect.
    pub fn none() -> Self {
        WireFaultPlan::default()
    }

    /// True when the plan can never produce a fault — a `ChaosStream`
    /// built from a quiet plan is byte-identical to the bare stream.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.reset_rate <= 0.0
            && self.partitions.is_empty()
    }

    /// The default wire-chaos mix: gentle per-frame rates in every
    /// class (the budget must stay *enforceable* under the plan — the
    /// kill-and-resume soak asserts compliance with this active) plus
    /// one 1.5 s full partition of node 1.
    pub fn chaos() -> Self {
        WireFaultPlan {
            drop_rate: 0.05,
            delay_rate: 0.05,
            delay_s: 0.05,
            duplicate_rate: 0.02,
            corrupt_rate: 0.01,
            reset_rate: 0.005,
            partitions: vec![PartitionSpec {
                node: 1,
                from_s: 2.0,
                until_s: 3.5,
                direction: PartitionDirection::Both,
            }],
        }
    }

    /// Parse a standalone wire plan from the compact spec (the
    /// `--chaos` flag). This is the full [`FaultPlan`](crate::FaultPlan)
    /// grammar with only the wire clauses retained, so
    /// `wire=0.05,partition=2@5:9` and the `chaos` / `none` presets all
    /// work.
    pub fn parse(spec: &str) -> Result<WireFaultPlan, PlanParseError> {
        crate::FaultPlan::parse(spec).map(|p| p.wire)
    }

    pub(crate) fn parse_clause(
        &mut self,
        key: &str,
        clause: &str,
        value: &str,
    ) -> Result<bool, PlanParseError> {
        match key {
            "wire" => self.drop_rate = parse_rate(clause, value)?,
            "delay" => match value.split_once(':') {
                Some((rate, hold)) => {
                    self.delay_rate = parse_rate(clause, rate)?;
                    self.delay_s = parse_nonneg(clause, hold)?;
                }
                None => {
                    self.delay_rate = parse_rate(clause, value)?;
                    self.delay_s = 0.05;
                }
            },
            "wdup" => self.duplicate_rate = parse_rate(clause, value)?,
            "corrupt" => self.corrupt_rate = parse_rate(clause, value)?,
            "reset" => self.reset_rate = parse_rate(clause, value)?,
            "partition" => {
                self.partitions
                    .push(parse_partition(clause, value, PartitionDirection::Both)?)
            }
            "partition_up" => {
                self.partitions
                    .push(parse_partition(clause, value, PartitionDirection::Uplink)?)
            }
            "partition_down" => self.partitions.push(parse_partition(
                clause,
                value,
                PartitionDirection::Downlink,
            )?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

fn parse_partition(
    clause: &str,
    value: &str,
    direction: PartitionDirection,
) -> Result<PartitionSpec, PlanParseError> {
    let (node, window) = value
        .split_once('@')
        .ok_or_else(|| PlanParseError::bad(clause, "expected partition=I@T[:T2]"))?;
    let node: usize = node
        .parse()
        .map_err(|_| PlanParseError::bad(clause, "bad node index"))?;
    let (from, until) = match window.split_once(':') {
        Some((f, u)) => (parse_nonneg(clause, f)?, parse_nonneg(clause, u)?),
        None => (parse_nonneg(clause, window)?, f64::INFINITY),
    };
    if until <= from {
        return Err(PlanParseError::bad(
            clause,
            "partition must end after it starts",
        ));
    }
    Ok(PartitionSpec {
        node,
        from_s: from,
        until_s: until,
        direction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(WireFaultPlan::none().is_quiet());
        assert!(WireFaultPlan::parse("").unwrap().is_quiet());
        assert!(WireFaultPlan::parse("none").unwrap().is_quiet());
    }

    #[test]
    fn chaos_preset_parses_and_is_not_quiet() {
        let p = WireFaultPlan::parse("chaos").unwrap();
        assert_eq!(p, WireFaultPlan::chaos());
        assert!(!p.is_quiet());
    }

    #[test]
    fn wire_grammar_round_trips() {
        let p = WireFaultPlan::parse(
            "wire=0.05, delay=0.1:0.2, wdup=0.02, corrupt=0.01, reset=0.005, \
             partition=2@5:9, partition_up=1@3, partition_down=0@1:2",
        )
        .unwrap();
        assert_eq!(p.drop_rate, 0.05);
        assert_eq!(p.delay_rate, 0.1);
        assert_eq!(p.delay_s, 0.2);
        assert_eq!(p.duplicate_rate, 0.02);
        assert_eq!(p.corrupt_rate, 0.01);
        assert_eq!(p.reset_rate, 0.005);
        assert_eq!(p.partitions.len(), 3);
        assert_eq!(p.partitions[0].direction, PartitionDirection::Both);
        assert_eq!(p.partitions[0].node, 2);
        assert_eq!(p.partitions[0].from_s, 5.0);
        assert_eq!(p.partitions[0].until_s, 9.0);
        assert_eq!(p.partitions[1].direction, PartitionDirection::Uplink);
        assert!(p.partitions[1].until_s.is_infinite());
        assert_eq!(p.partitions[2].direction, PartitionDirection::Downlink);
    }

    #[test]
    fn delay_hold_defaults_when_omitted() {
        let p = WireFaultPlan::parse("delay=0.3").unwrap();
        assert_eq!(p.delay_rate, 0.3);
        assert_eq!(p.delay_s, 0.05);
    }

    #[test]
    fn bad_wire_specs_are_rejected() {
        for spec in [
            "wire=1.5",
            "wire=nan",
            "partition=x@1",
            "partition=1@2:1",
            "reset=-0.1",
        ] {
            assert!(WireFaultPlan::parse(spec).is_err(), "{spec}");
        }
    }

    #[test]
    fn one_way_partition_windows_direction_logic() {
        let up = PartitionSpec {
            node: 1,
            from_s: 2.0,
            until_s: 3.0,
            direction: PartitionDirection::Uplink,
        };
        assert!(up.active(1, 2.0));
        assert!(up.active(1, 2.9));
        assert!(!up.active(1, 3.0), "half-open window");
        assert!(!up.active(0, 2.5), "other nodes unaffected");
        assert!(up.direction.blocks_uplink());
        assert!(!up.direction.blocks_downlink());
        assert!(PartitionDirection::Both.blocks_uplink());
        assert!(PartitionDirection::Both.blocks_downlink());
        assert!(PartitionDirection::Downlink.blocks_downlink());
        assert!(!PartitionDirection::Downlink.blocks_uplink());
    }
}
