//! The deterministic fault stream.
//!
//! A [`FaultInjector`] owns a [`FaultPlan`] and a seeded RNG; each call
//! site that *could* fail asks it whether a fault fires there. The
//! stream is a pure function of `(plan, seed, query sequence)`, so a
//! chaos run replays byte-for-byte from its seed. Built from a quiet
//! plan, every query is a single branch — the zero-cost-when-quiet
//! property the counting-allocator proofs lean on.

use crate::plan::FaultPlan;
use fvs_model::CounterDelta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a counter sample is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterFaultKind {
    /// A racy multi-register read left a NaN in the delta.
    Nan,
    /// A wraparound-style spike: instructions multiplied absurdly.
    Spike,
    /// The counter stopped advancing: the delta reads all-zero.
    Stuck,
    /// The previous interval's delta is replayed verbatim.
    Stale,
}

/// How a frequency actuation misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationFaultKind {
    /// The command is silently lost.
    Drop,
    /// Only part of the transition happens (the PLL settles halfway).
    Partial,
    /// The command lands, but several ticks late.
    Delay,
}

/// How a cluster summary misbehaves on the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryFaultKind {
    /// The summary is lost (heartbeat loss).
    Loss,
    /// The summary arrives twice.
    Duplicate,
    /// The summary arrives late by the plan's extra delay.
    Late,
}

/// Deterministic, seedable source of fault decisions for one run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    quiet: bool,
    injected: u64,
}

impl FaultInjector {
    /// Injector for `plan`, deterministic in `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let quiet = plan.is_quiet();
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed ^ 0xFA01_75EED),
            quiet,
            injected: 0,
        }
    }

    /// The quiet injector: never fires, one branch per query.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when no query can ever fire.
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Faults fired so far (all classes).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    #[inline]
    fn fires(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if self.rng.gen::<f64>() >= rate {
            return false;
        }
        self.injected += 1;
        true
    }

    /// Should this counter sample be corrupted, and how?
    #[inline]
    pub fn counter_fault(&mut self) -> Option<CounterFaultKind> {
        if self.quiet || !self.fires(self.plan.counter_rate) {
            return None;
        }
        Some(match self.rng.gen_range(0u32..4) {
            0 => CounterFaultKind::Nan,
            1 => CounterFaultKind::Spike,
            2 => CounterFaultKind::Stuck,
            _ => CounterFaultKind::Stale,
        })
    }

    /// Should this frequency command misbehave, and how?
    #[inline]
    pub fn actuation_fault(&mut self) -> Option<ActuationFaultKind> {
        if self.quiet || !self.fires(self.plan.actuation_rate) {
            return None;
        }
        Some(match self.rng.gen_range(0u32..3) {
            0 => ActuationFaultKind::Drop,
            1 => ActuationFaultKind::Partial,
            _ => ActuationFaultKind::Delay,
        })
    }

    /// Should this uplink summary misbehave, and how? (At most one
    /// summary fault per summary; loss shadows duplication shadows
    /// lateness.)
    #[inline]
    pub fn summary_fault(&mut self) -> Option<SummaryFaultKind> {
        if self.quiet {
            return None;
        }
        if self.fires(self.plan.summary_loss_rate) {
            return Some(SummaryFaultKind::Loss);
        }
        if self.fires(self.plan.summary_duplicate_rate) {
            return Some(SummaryFaultKind::Duplicate);
        }
        if self.fires(self.plan.summary_late_rate) {
            return Some(SummaryFaultKind::Late);
        }
        None
    }
}

/// Apply a counter fault to `delta` in place; `prev` is the previous
/// interval's (uncorrupted) delta, used by [`CounterFaultKind::Stale`].
pub fn apply_counter_fault(kind: CounterFaultKind, delta: &mut CounterDelta, prev: &CounterDelta) {
    match kind {
        CounterFaultKind::Nan => {
            delta.cycles = f64::NAN;
        }
        CounterFaultKind::Spike => {
            delta.instructions *= 1.0e3;
        }
        CounterFaultKind::Stuck => {
            *delta = CounterDelta::default();
        }
        CounterFaultKind::Stale => {
            *delta = *prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan {
            counter_rate: 0.5,
            actuation_rate: 0.5,
            summary_loss_rate: 0.2,
            summary_duplicate_rate: 0.2,
            summary_late_rate: 0.2,
            summary_late_s: 0.3,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn quiet_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(inj.counter_fault(), None);
            assert_eq!(inj.actuation_fault(), None);
            assert_eq!(inj.summary_fault(), None);
        }
        assert_eq!(inj.injected(), 0);
        assert!(inj.is_quiet());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let mut a = FaultInjector::new(noisy_plan(), 42);
        let mut b = FaultInjector::new(noisy_plan(), 42);
        for _ in 0..500 {
            assert_eq!(a.counter_fault(), b.counter_fault());
            assert_eq!(a.actuation_fault(), b.actuation_fault());
            assert_eq!(a.summary_fault(), b.summary_fault());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(noisy_plan(), 1);
        let mut b = FaultInjector::new(noisy_plan(), 2);
        let hits_a: Vec<_> = (0..200).map(|_| a.counter_fault()).collect();
        let hits_b: Vec<_> = (0..200).map(|_| b.counter_fault()).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn all_counter_fault_kinds_eventually_fire() {
        let mut inj = FaultInjector::new(noisy_plan(), 7);
        let mut seen = [false; 4];
        for _ in 0..2000 {
            if let Some(k) = inj.counter_fault() {
                seen[match k {
                    CounterFaultKind::Nan => 0,
                    CounterFaultKind::Spike => 1,
                    CounterFaultKind::Stuck => 2,
                    CounterFaultKind::Stale => 3,
                }] = true;
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn counter_faults_corrupt_as_advertised() {
        let prev = CounterDelta {
            instructions: 1.0e6,
            cycles: 2.0e6,
            l2_accesses: 10.0,
            l3_accesses: 5.0,
            mem_accesses: 2.0,
        };
        let fresh = CounterDelta {
            instructions: 3.0e6,
            cycles: 4.0e6,
            ..prev
        };

        let mut d = fresh;
        apply_counter_fault(CounterFaultKind::Nan, &mut d, &prev);
        assert!(!d.is_sane());

        let mut d = fresh;
        apply_counter_fault(CounterFaultKind::Spike, &mut d, &prev);
        assert!(d.observed_ipc() > 100.0);

        let mut d = fresh;
        apply_counter_fault(CounterFaultKind::Stuck, &mut d, &prev);
        assert_eq!(d, CounterDelta::default());

        let mut d = fresh;
        apply_counter_fault(CounterFaultKind::Stale, &mut d, &prev);
        assert_eq!(d, prev);
    }
}
