//! The coordinator's TCP front end.
//!
//! A [`CoordinatorServer`] owns the real [`GlobalCoordinator`] and
//! exposes it over sockets: an accept thread admits agents, one reader
//! thread per connection decodes uplink frames, and a scheduler thread
//! runs the global computation on a wall-clock period, pushing
//! [`FrequencyCommand`]s down whichever connections are still alive.
//! Heartbeat tracking, silent-node charging and blind f_min commands all
//! operate on *genuine* socket liveness: a node is whatever its last
//! frame says it is, and a dead socket simply stops producing frames.
//!
//! Timestamps are coordinator-local. Incoming summaries are re-stamped
//! with their *arrival* time on the server's monotonic clock, so agent
//! clock skew cannot fake liveness (an agent cannot claim "I reported
//! in your future") and the heartbeat timeout measures exactly what the
//! paper's ΔT argument needs: how long since the coordinator last heard
//! from the node.

use crate::error::FvsError;
use crate::obs::{HealthReport, ObsHandles, ObsServer};
use crate::wire::{encode, FrameReader, WireMsg, SCHEMA_VERSION};
use fvs_cluster::{FrequencyCommand, GlobalCoordinator};
use fvs_sched::FvsstAlgorithm;
use fvs_telemetry::{
    BudgetDeadlineTracker, ComplianceRecord, Counter, Gauge, Histogram, Telemetry, Tracer,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs beyond the algorithm itself.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Wall-clock scheduling period (s).
    pub period_s: f64,
    /// A node silent for longer is declared dead and charged.
    pub heartbeat_timeout_s: f64,
    /// Conservative charge for a node that has never reported (W).
    pub worst_case_node_w: f64,
    /// The paper's ΔT: budget drops must be honoured within this (s).
    pub deadline_s: f64,
    /// Budget in force at startup (W).
    pub initial_budget_w: f64,
    /// Where events and `net.*` metrics go.
    pub telemetry: Telemetry,
    /// Causal span tracer: `net.round` → `cluster.round` → two-pass
    /// spans → `net.push`, all on the scheduler thread.
    pub tracer: Tracer,
}

impl CoordinatorConfig {
    /// Paper-flavoured defaults: 100 ms global period, 0.5 s heartbeat
    /// timeout, one worst-case p630 node, ΔT = 1 s, unlimited budget.
    pub fn default_lan() -> Self {
        CoordinatorConfig {
            period_s: 0.1,
            heartbeat_timeout_s: fvs_cluster::DEFAULT_HEARTBEAT_TIMEOUT_S,
            worst_case_node_w: fvs_cluster::DEFAULT_WORST_CASE_NODE_W,
            deadline_s: 1.0,
            initial_budget_w: f64::INFINITY,
            telemetry: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Override the scheduling period.
    pub fn with_period_s(mut self, period_s: f64) -> Self {
        self.period_s = period_s;
        self
    }

    /// Override the heartbeat timeout.
    pub fn with_heartbeat_timeout_s(mut self, timeout_s: f64) -> Self {
        self.heartbeat_timeout_s = timeout_s;
        self
    }

    /// Override the worst-case charge for never-reported nodes.
    pub fn with_worst_case_node_w(mut self, watts: f64) -> Self {
        self.worst_case_node_w = watts;
        self
    }

    /// Override the compliance deadline ΔT.
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// Override the startup budget.
    pub fn with_initial_budget_w(mut self, watts: f64) -> Self {
        self.initial_budget_w = watts;
        self
    }

    /// Attach a telemetry pipeline.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a causal span tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn validate(&self) -> Result<(), FvsError> {
        if !(self.period_s.is_finite() && self.period_s > 0.0) {
            return Err(FvsError::config("period_s must be finite and positive"));
        }
        if !(self.heartbeat_timeout_s.is_finite() && self.heartbeat_timeout_s > 0.0) {
            return Err(FvsError::config(
                "heartbeat_timeout_s must be finite and positive",
            ));
        }
        if !(self.deadline_s.is_finite() && self.deadline_s > 0.0) {
            return Err(FvsError::config("deadline_s must be finite and positive"));
        }
        Ok(())
    }
}

/// A point-in-time view of the control plane, for operators and tests.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorStatus {
    /// Global scheduling rounds run.
    pub rounds: u64,
    /// Nodes that have reported at least once.
    pub nodes_reporting: usize,
    /// Nodes currently presumed dead.
    pub dead_nodes: usize,
    /// Power reserved for silent nodes last round (W).
    pub reserved_w: f64,
    /// Conservative cluster power: live reports + reserved (W).
    pub conservative_power_w: f64,
    /// Budget in force (W).
    pub budget_w: f64,
    /// Sockets currently connected.
    pub connections: usize,
    /// Compliance episodes closed so far.
    pub compliances: u64,
    /// Deadline violations so far.
    pub violations: u64,
    /// The most recently closed compliance episode.
    pub last_compliance: Option<ComplianceRecord>,
}

enum Uplink {
    Frame(usize, WireMsg),
}

struct NetMetrics {
    frames_rx: Arc<Counter>,
    frames_tx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    decode_errors: Arc<Counter>,
    connects: Arc<Counter>,
    disconnects: Arc<Counter>,
    version_rejects: Arc<Counter>,
    connections: Arc<Gauge>,
    /// Wall time of one scheduler-thread round (drain → schedule →
    /// push), quantile-estimable for the `/metrics` p99.
    round_wall_s: Arc<Histogram>,
    /// Ceiling fan-out latency: time to write all commands downlink.
    fanout_wall_s: Arc<Histogram>,
    /// Age of each summary when ingested (arrival-stamped clock).
    summary_staleness_s: Arc<Histogram>,
}

impl NetMetrics {
    fn from(telemetry: &Telemetry) -> Option<Self> {
        telemetry.registry().map(|r| {
            let scope = r.scoped("net");
            NetMetrics {
                frames_rx: scope.counter("frames_rx"),
                frames_tx: scope.counter("frames_tx"),
                bytes_rx: scope.counter("bytes_rx"),
                decode_errors: scope.counter("decode_errors"),
                connects: scope.counter("connects"),
                disconnects: scope.counter("disconnects"),
                version_rejects: scope.counter("version_rejects"),
                connections: scope.gauge("connections"),
                round_wall_s: scope.histogram("round_wall_s", &Histogram::latency_bounds()),
                fanout_wall_s: scope.histogram("fanout_wall_s", &Histogram::latency_bounds()),
                summary_staleness_s: scope
                    .histogram("summary_staleness_s", &Histogram::latency_bounds()),
            }
        })
    }
}

struct Shared {
    stop: AtomicBool,
    /// Budget as f64 bits, plus a change epoch so the scheduler thread
    /// reacts on its next slice instead of waiting out the period.
    budget_bits: AtomicU64,
    budget_epoch: AtomicU64,
    status: Mutex<CoordinatorStatus>,
    /// Downlink sockets by node id (write half; `try_clone` of the
    /// reader's stream). Poisoning is impossible: writers only send.
    writers: Mutex<HashMap<usize, TcpStream>>,
    /// When the last round finished, as f64-bit seconds on the server's
    /// monotonic clock (`/healthz` serves the age).
    last_round_bits: AtomicU64,
}

/// The running coordinator server.
pub struct CoordinatorServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    sched_thread: Option<JoinHandle<()>>,
    telemetry: Telemetry,
    tracer: Tracer,
    start: Instant,
}

impl CoordinatorServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving a cluster
    /// of `nodes` nodes.
    pub fn bind(
        addr: &str,
        nodes: usize,
        algorithm: FvsstAlgorithm,
        config: CoordinatorConfig,
    ) -> Result<Self, FvsError> {
        config.validate()?;
        if nodes == 0 {
            return Err(FvsError::config("a cluster needs at least one node"));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let telemetry = config.telemetry.clone();
        let metrics = Arc::new(NetMetrics::from(&telemetry));
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            budget_bits: AtomicU64::new(config.initial_budget_w.to_bits()),
            budget_epoch: AtomicU64::new(0),
            status: Mutex::new(CoordinatorStatus {
                budget_w: config.initial_budget_w,
                ..CoordinatorStatus::default()
            }),
            writers: Mutex::new(HashMap::new()),
            last_round_bits: AtomicU64::new(0f64.to_bits()),
        });
        let start = Instant::now();
        let (uplink_tx, uplink_rx) = crossbeam::channel::unbounded::<Uplink>();

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let uplink_tx = uplink_tx.clone();
            std::thread::spawn(move || {
                accept_loop(listener, shared, metrics, uplink_tx, start);
            })
        };

        let tracer = config.tracer.clone();
        let sched_thread = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let coordinator =
                GlobalCoordinator::with_telemetry(algorithm, nodes, telemetry.clone())
                    .with_heartbeat_timeout(config.heartbeat_timeout_s)
                    .with_worst_case_node_w(config.worst_case_node_w)
                    .with_tracer(tracer.clone());
            let tracker = BudgetDeadlineTracker::new(config.deadline_s);
            let telemetry = telemetry.clone();
            let tracer = tracer.clone();
            let period_s = config.period_s;
            let heartbeat_timeout_s = config.heartbeat_timeout_s;
            std::thread::spawn(move || {
                scheduler_loop(
                    coordinator,
                    tracker,
                    shared,
                    metrics,
                    uplink_rx,
                    telemetry,
                    tracer,
                    period_s,
                    heartbeat_timeout_s,
                    nodes,
                    start,
                );
            })
        };

        Ok(CoordinatorServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            sched_thread: Some(sched_thread),
            telemetry,
            tracer,
            start,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Change the global budget; the scheduler reacts on its next slice
    /// (a few milliseconds), not its next period.
    pub fn set_budget(&self, watts: f64) {
        self.shared
            .budget_bits
            .store(watts.to_bits(), Ordering::SeqCst);
        self.shared.budget_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// A snapshot of the control plane right now.
    pub fn status(&self) -> CoordinatorStatus {
        self.shared.status.lock().expect("status poisoned").clone()
    }

    /// The health report — the single code path behind the `/healthz`
    /// endpoint *and* the coordinator binary's status line, so the wire
    /// and the terminal can never disagree.
    pub fn health(&self) -> HealthReport {
        health_from(&self.shared, self.start)
    }

    /// Mount the observability listener at `addr` (`/metrics`,
    /// `/healthz`, `/journal`, `/trace`), backed by this server's
    /// registry, event ring, span ring and health snapshot.
    pub fn serve_obs(&self, addr: &str) -> Result<ObsServer, FvsError> {
        let shared = Arc::clone(&self.shared);
        let start = self.start;
        ObsServer::bind(
            addr,
            ObsHandles {
                registry: self.telemetry.registry().cloned(),
                journal: self.telemetry.clone(),
                tracer: self.tracer.clone(),
                health: Some(Arc::new(move || health_from(&shared, start))),
            },
        )
    }

    /// Stop the threads, flush telemetry, and return the final status.
    pub fn shutdown(mut self) -> Result<CoordinatorStatus, FvsError> {
        self.stop_and_join();
        self.telemetry.flush()?;
        Ok(self.status())
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sched_thread.take() {
            let _ = t.join();
        }
        // Closing the write halves unblocks any agent mid-read.
        self.shared
            .writers
            .lock()
            .expect("writers poisoned")
            .clear();
    }
}

impl Drop for CoordinatorServer {
    fn drop(&mut self) {
        self.stop_and_join();
        let _ = self.telemetry.flush();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics: Arc<Option<NetMetrics>>,
    uplink_tx: crossbeam::channel::Sender<Uplink>,
    start: Instant,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let uplink_tx = uplink_tx.clone();
                readers.push(std::thread::spawn(move || {
                    reader_loop(stream, shared, metrics, uplink_tx, start);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for t in readers {
        let _ = t.join();
    }
}

/// One connection's uplink: handshake, then summaries until the socket
/// dies. The first frame must be a `Hello` carrying an exact schema
/// version match, otherwise the connection is refused with a negative
/// `HelloAck` — explicit version negotiation instead of mis-parsing.
fn reader_loop(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    metrics: Arc<Option<NetMetrics>>,
    uplink_tx: crossbeam::channel::Sender<Uplink>,
    start: Instant,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let mut node_id: Option<usize> = None;
    if let Some(m) = metrics.as_ref() {
        m.connects.inc();
    }

    'conn: while !shared.stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if let Some(m) = metrics.as_ref() {
                    m.bytes_rx.add(n as u64);
                }
                reader.feed(&buf[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(None) => break,
                        Ok(Some(msg)) => {
                            if let Some(m) = metrics.as_ref() {
                                m.frames_rx.inc();
                            }
                            match msg {
                                WireMsg::Hello { node, version, .. } => {
                                    let accepted = version == SCHEMA_VERSION;
                                    let ack = WireMsg::HelloAck {
                                        accepted,
                                        version: SCHEMA_VERSION,
                                    };
                                    if let Ok(frame) = encode(&ack) {
                                        let _ = stream.write_all(&frame);
                                    }
                                    if !accepted {
                                        if let Some(m) = metrics.as_ref() {
                                            m.version_rejects.inc();
                                        }
                                        break 'conn;
                                    }
                                    node_id = Some(node);
                                    if let Ok(down) = stream.try_clone() {
                                        shared
                                            .writers
                                            .lock()
                                            .expect("writers poisoned")
                                            .insert(node, down);
                                    }
                                }
                                WireMsg::Summary(mut summary) => {
                                    // Re-stamp with arrival time on the
                                    // coordinator's clock: liveness is
                                    // what *we* observed, not what the
                                    // agent claims.
                                    summary.sent_at_s = start.elapsed().as_secs_f64();
                                    let node = summary.node;
                                    let _ = uplink_tx
                                        .send(Uplink::Frame(node, WireMsg::Summary(summary)));
                                }
                                WireMsg::Bye { node } => {
                                    let _ =
                                        uplink_tx.send(Uplink::Frame(node, WireMsg::Bye { node }));
                                    break 'conn;
                                }
                                // Agents never send these; ignore.
                                WireMsg::HelloAck { .. } | WireMsg::Ceiling(_) => {}
                            }
                        }
                        Err(_) => {
                            // A desynchronised stream cannot be trusted;
                            // drop it and let the agent reconnect.
                            if let Some(m) = metrics.as_ref() {
                                m.decode_errors.inc();
                            }
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }

    if let Some(m) = metrics.as_ref() {
        m.disconnects.inc();
    }
    if let Some(node) = node_id {
        shared
            .writers
            .lock()
            .expect("writers poisoned")
            .remove(&node);
    }
}

#[allow(clippy::too_many_arguments)]
fn scheduler_loop(
    mut coordinator: GlobalCoordinator,
    mut tracker: BudgetDeadlineTracker,
    shared: Arc<Shared>,
    metrics: Arc<Option<NetMetrics>>,
    uplink_rx: crossbeam::channel::Receiver<Uplink>,
    telemetry: Telemetry,
    tracer: Tracer,
    period_s: f64,
    heartbeat_timeout_s: f64,
    nodes: usize,
    start: Instant,
) {
    let mut last_round = Instant::now();
    let mut seen_epoch = 0u64;
    let mut prev_budget = f64::from_bits(shared.budget_bits.load(Ordering::SeqCst));
    // Last power each node reported, and when (coordinator clock) — the
    // live half of the conservative power sum.
    let mut last_power = vec![0.0f64; nodes];
    let mut last_seen = vec![f64::NEG_INFINITY; nodes];

    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        // Drain the uplink; ingest re-stamped summaries immediately.
        let drain_now_s = start.elapsed().as_secs_f64();
        for ev in uplink_rx.try_iter() {
            match ev {
                Uplink::Frame(node, WireMsg::Summary(summary)) => {
                    if node < nodes {
                        last_power[node] = summary.power_w;
                        last_seen[node] = summary.sent_at_s;
                    }
                    if let Some(m) = metrics.as_ref() {
                        m.summary_staleness_s
                            .observe((drain_now_s - summary.sent_at_s).max(0.0));
                    }
                    coordinator.ingest(summary);
                }
                Uplink::Frame(_, _) => {}
            }
        }

        let epoch = shared.budget_epoch.load(Ordering::SeqCst);
        let budget_changed = epoch != seen_epoch;
        let due = last_round.elapsed().as_secs_f64() >= period_s;
        if budget_changed || due || stopping {
            let _round_span = tracer.span("net.round");
            let round_started = Instant::now();
            seen_epoch = epoch;
            last_round = Instant::now();
            let now_s = start.elapsed().as_secs_f64();
            let budget = f64::from_bits(shared.budget_bits.load(Ordering::SeqCst));
            if budget != prev_budget {
                if let Some(ev) = tracker.on_budget_change(now_s, prev_budget, budget) {
                    telemetry.emit(ev);
                }
                prev_budget = budget;
            }

            let commands = coordinator.schedule(budget, now_s);
            tracker.on_round();

            // Conservative power: what the live nodes last reported plus
            // what the coordinator reserved for the silent — the same
            // sum the ΔT argument is made against. Liveness here is the
            // exact rule `schedule()` used, so no node is both counted
            // live and charged as reserved.
            let reserved_w = coordinator.reserved_w();
            let live_w: f64 = (0..nodes)
                .filter(|&i| now_s - last_seen[i] <= heartbeat_timeout_s)
                .map(|i| last_power[i])
                .sum();
            let conservative_w = live_w + reserved_w;
            if let Some(ev) = tracker.on_power_sample(now_s, conservative_w) {
                telemetry.emit(ev);
            }

            {
                let _push_span = tracer.span("net.push");
                let push_started = Instant::now();
                push_commands(&shared, metrics.as_ref().as_ref(), &commands);
                if let Some(m) = metrics.as_ref() {
                    m.fanout_wall_s
                        .observe(push_started.elapsed().as_secs_f64());
                }
            }

            let mut status = shared.status.lock().expect("status poisoned");
            status.rounds += 1;
            status.nodes_reporting = coordinator.nodes_reporting();
            status.dead_nodes = coordinator.dead_nodes();
            status.reserved_w = reserved_w;
            status.conservative_power_w = conservative_w;
            status.budget_w = budget;
            status.connections = shared.writers.lock().expect("writers poisoned").len();
            status.compliances = tracker.compliances();
            status.violations = tracker.violations();
            status.last_compliance = tracker.last_compliance();
            if let Some(m) = metrics.as_ref() {
                m.connections.set(status.connections as f64);
                m.round_wall_s
                    .observe(round_started.elapsed().as_secs_f64());
            }
            drop(status);
            shared
                .last_round_bits
                .store(start.elapsed().as_secs_f64().to_bits(), Ordering::SeqCst);
        }
        if stopping {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Build a [`HealthReport`] from the shared control-plane state. Budget
/// compliance is against the *conservative* power sum — the same
/// quantity the paper's ΔT argument bounds — and an infinite budget is
/// trivially compliant.
fn health_from(shared: &Shared, start: Instant) -> HealthReport {
    let status = shared.status.lock().expect("status poisoned").clone();
    let now_s = start.elapsed().as_secs_f64();
    let last_round_s = f64::from_bits(shared.last_round_bits.load(Ordering::SeqCst));
    let budget_compliant =
        !status.budget_w.is_finite() || status.conservative_power_w <= status.budget_w;
    HealthReport {
        uptime_s: now_s,
        rounds: status.rounds,
        last_round_age_s: (now_s - last_round_s).max(0.0),
        nodes_reporting: status.nodes_reporting,
        dead_nodes: status.dead_nodes,
        connections: status.connections,
        budget_w: status.budget_w,
        conservative_power_w: status.conservative_power_w,
        reserved_w: status.reserved_w,
        budget_compliant,
        compliances: status.compliances,
        violations: status.violations,
        degraded: status.dead_nodes > 0 || !budget_compliant,
    }
}

fn push_commands(shared: &Shared, metrics: Option<&NetMetrics>, commands: &[FrequencyCommand]) {
    let mut writers = shared.writers.lock().expect("writers poisoned");
    for cmd in commands {
        let Some(stream) = writers.get_mut(&cmd.node) else {
            continue;
        };
        let msg = WireMsg::Ceiling(cmd.clone());
        let Ok(frame) = encode(&msg) else { continue };
        if stream.write_all(&frame).is_err() {
            writers.remove(&cmd.node);
            continue;
        }
        if let Some(m) = metrics {
            m.frames_tx.inc();
        }
    }
}
