//! The coordinator's TCP front end.
//!
//! A [`CoordinatorServer`] owns the real [`GlobalCoordinator`] and
//! exposes it over sockets — from **one thread**. A readiness-driven
//! event loop (a [`Reactor`] over the vendored `netpoll` epoll wrapper)
//! accepts agents, decodes uplink frames through per-connection
//! [`Transport`] state machines, runs the global scheduling round on a
//! wall-clock period, and pushes [`FrequencyCommand`]s down whichever
//! connections are still alive. Thread count is O(1) in connection
//! count: 10k agents cost file descriptors and slab slots, not stacks.
//! Heartbeat tracking, silent-node charging and blind f_min commands
//! all operate on *genuine* socket liveness: a node is whatever its
//! last frame says it is, and a dead socket simply stops producing
//! frames.
//!
//! Codec negotiation happens per connection at hello time: an agent
//! advertising the binary `FVS2` codec gets it iff this server's
//! `preferred_codec` is binary too; everything else stays on JSON
//! `FVS1`, so a mixed fleet (old agents, new agents, tests speaking
//! JSON on purpose) connects to one listener. Reads never care — the
//! frame magic picks the decoder per frame.
//!
//! Timestamps are coordinator-local. Incoming summaries are re-stamped
//! with their *arrival* time on the server's monotonic clock, so agent
//! clock skew cannot fake liveness (an agent cannot claim "I reported
//! in your future") and the heartbeat timeout measures exactly what the
//! paper's ΔT argument needs: how long since the coordinator last heard
//! from the node. With ingest on the event loop itself there is no
//! reader-to-scheduler queue left to hide latency in — a summary is in
//! the [`GlobalCoordinator`] the same iteration its bytes arrive.
//!
//! Crash recovery: with snapshots configured the loop persists a
//! checksummed [`Snapshot`] on a cadence *and* write-ahead on every
//! budget change, so `--resume` restores the fencing epoch (+1), the
//! enforced budget (the stricter of snapshot and configured), every
//! node's last-charged ceiling and any open ΔT episode. Restored
//! summaries are re-stamped stale on purpose: until a node reports
//! fresh, the coordinator charges its last-commanded ceiling (or worst
//! case) — a crash can therefore never *un-enforce* a budget drop. The
//! resync grace window is visible on `/healthz` as a distinct
//! `resyncing` 503 until the `resync_complete` event fires.

use crate::chaos::{ChaosSide, ChaosStream};
use crate::error::FvsError;
use crate::obs::{HealthReport, ObsHandles, ObsServer};
use crate::reactor::{Reactor, LISTENER_TOKEN};
use crate::snapshot::{Snapshot, SnapshotEpisode, SnapshotNode, SnapshotStore};
use crate::transport::{FillStatus, Transport};
use crate::wire::{FrameFault, WireCodec, WireMsg, CODEC_BINARY_BIT, SCHEMA_VERSION};
use crate::WireChaos;
use fvs_cluster::{FrequencyCommand, GlobalCoordinator, NodeRestore};
use fvs_sched::FvsstAlgorithm;
use fvs_telemetry::{
    BudgetDeadlineTracker, ComplianceRecord, Counter, Gauge, Histogram, SchedEvent, Telemetry,
    Tracer, WireFaultKind,
};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs beyond the algorithm itself.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Wall-clock scheduling period (s).
    pub period_s: f64,
    /// A node silent for longer is declared dead and charged.
    pub heartbeat_timeout_s: f64,
    /// Conservative charge for a node that has never reported (W).
    pub worst_case_node_w: f64,
    /// The paper's ΔT: budget drops must be honoured within this (s).
    pub deadline_s: f64,
    /// Budget in force at startup (W).
    pub initial_budget_w: f64,
    /// Where crash-recovery snapshots live (`None` = no durability).
    pub snapshot_path: Option<PathBuf>,
    /// Snapshot cadence (s); budget changes snapshot immediately
    /// regardless (write-ahead).
    pub snapshot_every_s: f64,
    /// Restore from the snapshot at `snapshot_path` on startup; a
    /// missing or damaged snapshot degrades to a cold start.
    pub resume: bool,
    /// After a resume, how long `/healthz` reports `resyncing` at most
    /// — the window in which restored (stale-by-construction) charges
    /// are replaced by fresh summaries.
    pub resync_grace_s: f64,
    /// Drop a connection when no frame arrives for this long (the
    /// coordinator-side dead-link bound; agents send summaries far
    /// more often than this when healthy).
    pub read_deadline_s: f64,
    /// The fastest codec this server will negotiate. Binary (the
    /// default) picks `FVS2` for agents that advertise it; JSON pins
    /// every connection to `FVS1`.
    pub preferred_codec: WireCodec,
    /// Admission limit: sockets accepted beyond this many live
    /// connections are closed immediately.
    pub max_conns: usize,
    /// Wire-chaos injection on accepted sockets (quiet = passthrough).
    pub chaos: WireChaos,
    /// Where events and `net.*` metrics go.
    pub telemetry: Telemetry,
    /// Causal span tracer: `net.round` → `cluster.round` → two-pass
    /// spans → `net.push`, all on the event-loop thread.
    pub tracer: Tracer,
}

impl CoordinatorConfig {
    /// Paper-flavoured defaults: 100 ms global period, 0.5 s heartbeat
    /// timeout, one worst-case p630 node, ΔT = 1 s, unlimited budget.
    pub fn default_lan() -> Self {
        CoordinatorConfig {
            period_s: 0.1,
            heartbeat_timeout_s: fvs_cluster::DEFAULT_HEARTBEAT_TIMEOUT_S,
            worst_case_node_w: fvs_cluster::DEFAULT_WORST_CASE_NODE_W,
            deadline_s: 1.0,
            initial_budget_w: f64::INFINITY,
            snapshot_path: None,
            snapshot_every_s: 1.0,
            resume: false,
            resync_grace_s: 2.0,
            read_deadline_s: 5.0,
            preferred_codec: WireCodec::Binary,
            max_conns: usize::MAX,
            chaos: WireChaos::none(),
            telemetry: Telemetry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// Override the scheduling period.
    pub fn with_period_s(mut self, period_s: f64) -> Self {
        self.period_s = period_s;
        self
    }

    /// Override the heartbeat timeout.
    pub fn with_heartbeat_timeout_s(mut self, timeout_s: f64) -> Self {
        self.heartbeat_timeout_s = timeout_s;
        self
    }

    /// Override the worst-case charge for never-reported nodes.
    pub fn with_worst_case_node_w(mut self, watts: f64) -> Self {
        self.worst_case_node_w = watts;
        self
    }

    /// Override the compliance deadline ΔT.
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// Override the startup budget.
    pub fn with_initial_budget_w(mut self, watts: f64) -> Self {
        self.initial_budget_w = watts;
        self
    }

    /// Persist crash-recovery snapshots at `path`, every `every_s`.
    pub fn with_snapshots(mut self, path: impl Into<PathBuf>, every_s: f64) -> Self {
        self.snapshot_path = Some(path.into());
        self.snapshot_every_s = every_s;
        self
    }

    /// Restore from the configured snapshot on startup.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Override the post-resume resync grace window.
    pub fn with_resync_grace_s(mut self, grace_s: f64) -> Self {
        self.resync_grace_s = grace_s;
        self
    }

    /// Override the per-connection read deadline.
    pub fn with_read_deadline_s(mut self, deadline_s: f64) -> Self {
        self.read_deadline_s = deadline_s;
        self
    }

    /// The thread-per-connection server called this knob the "conn
    /// deadline"; the reactor server has exactly one deadline per
    /// connection — read silence — so the name says so.
    #[deprecated(note = "renamed to `with_read_deadline_s`")]
    pub fn with_conn_deadline_s(self, deadline_s: f64) -> Self {
        self.with_read_deadline_s(deadline_s)
    }

    /// Cap the codec this server negotiates (see
    /// [`CoordinatorConfig::preferred_codec`]).
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.preferred_codec = codec;
        self
    }

    /// Cap concurrent connections (see [`CoordinatorConfig::max_conns`]).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns;
        self
    }

    /// Inject wire chaos on every accepted socket.
    pub fn with_chaos(mut self, chaos: WireChaos) -> Self {
        self.chaos = chaos;
        self
    }

    /// Route events and metrics through `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Record causal spans through `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn validate(&self) -> Result<(), FvsError> {
        if !(self.period_s.is_finite() && self.period_s > 0.0) {
            return Err(FvsError::config("period_s must be finite and positive"));
        }
        if !(self.heartbeat_timeout_s.is_finite() && self.heartbeat_timeout_s > 0.0) {
            return Err(FvsError::config(
                "heartbeat_timeout_s must be finite and positive",
            ));
        }
        if !(self.deadline_s.is_finite() && self.deadline_s > 0.0) {
            return Err(FvsError::config("deadline_s must be finite and positive"));
        }
        if !(self.snapshot_every_s.is_finite() && self.snapshot_every_s > 0.0) {
            return Err(FvsError::config(
                "snapshot_every_s must be finite and positive",
            ));
        }
        if !(self.resync_grace_s.is_finite() && self.resync_grace_s > 0.0) {
            return Err(FvsError::config(
                "resync_grace_s must be finite and positive",
            ));
        }
        if !(self.read_deadline_s.is_finite() && self.read_deadline_s > 0.0) {
            return Err(FvsError::config(
                "read_deadline_s must be finite and positive",
            ));
        }
        if self.max_conns == 0 {
            return Err(FvsError::config("max_conns must be at least 1"));
        }
        if self.resume && self.snapshot_path.is_none() {
            return Err(FvsError::config("resume requires a snapshot_path"));
        }
        Ok(())
    }
}

/// A point-in-time view of the control plane, for operators and tests.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorStatus {
    /// Global scheduling rounds run.
    pub rounds: u64,
    /// Nodes that have reported at least once.
    pub nodes_reporting: usize,
    /// Nodes currently presumed dead.
    pub dead_nodes: usize,
    /// Power reserved for silent nodes last round (W).
    pub reserved_w: f64,
    /// Conservative cluster power: live reports + reserved (W).
    pub conservative_power_w: f64,
    /// Budget in force (W).
    pub budget_w: f64,
    /// Sockets currently past a completed handshake.
    pub connections: usize,
    /// Compliance episodes closed so far.
    pub compliances: u64,
    /// Deadline violations so far.
    pub violations: u64,
    /// The fencing epoch this coordinator serves.
    pub epoch: u64,
    /// Inside the post-resume resync grace window.
    pub resyncing: bool,
    /// The most recently closed compliance episode.
    pub last_compliance: Option<ComplianceRecord>,
}

struct NetMetrics {
    frames_rx: Arc<Counter>,
    frames_tx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    decode_errors: Arc<Counter>,
    connects: Arc<Counter>,
    disconnects: Arc<Counter>,
    version_rejects: Arc<Counter>,
    /// Stale-epoch hellos refused (split-brain fences).
    epoch_rejects: Arc<Counter>,
    /// Wire faults observed: injected (chaos) and organic (frame
    /// decode failures) alike.
    wire_faults: Arc<Counter>,
    /// Frames refused for an oversize length prefix specifically.
    oversize_frames: Arc<Counter>,
    /// Crash-recovery snapshots persisted.
    snapshots_written: Arc<Counter>,
    /// Keep-alive heartbeats pushed downlink.
    heartbeats_tx: Arc<Counter>,
    connections: Arc<Gauge>,
    /// Wall time of one event-loop round (schedule → push),
    /// quantile-estimable for the `/metrics` p99.
    round_wall_s: Arc<Histogram>,
    /// Ceiling fan-out latency: time to write all commands downlink.
    fanout_wall_s: Arc<Histogram>,
    /// Age of each summary when ingested (arrival-stamped clock).
    summary_staleness_s: Arc<Histogram>,
}

impl NetMetrics {
    fn from(telemetry: &Telemetry) -> Option<Self> {
        telemetry.registry().map(|r| {
            let scope = r.scoped("net");
            NetMetrics {
                frames_rx: scope.counter("frames_rx"),
                frames_tx: scope.counter("frames_tx"),
                bytes_rx: scope.counter("bytes_rx"),
                decode_errors: scope.counter("decode_errors"),
                connects: scope.counter("connects"),
                disconnects: scope.counter("disconnects"),
                version_rejects: scope.counter("version_rejects"),
                epoch_rejects: scope.counter("epoch_rejects"),
                wire_faults: scope.counter("wire_faults"),
                oversize_frames: scope.counter("oversize_frames"),
                snapshots_written: scope.counter("snapshots_written"),
                heartbeats_tx: scope.counter("heartbeats_tx"),
                connections: scope.gauge("connections"),
                round_wall_s: scope.histogram("round_wall_s", &Histogram::latency_bounds()),
                fanout_wall_s: scope.histogram("fanout_wall_s", &Histogram::latency_bounds()),
                summary_staleness_s: scope
                    .histogram("summary_staleness_s", &Histogram::latency_bounds()),
            }
        })
    }
}

struct Shared {
    stop: AtomicBool,
    /// Budget as f64 bits, plus a change epoch so the event loop
    /// reacts on its next slice instead of waiting out the period.
    budget_bits: AtomicU64,
    budget_epoch: AtomicU64,
    /// The fencing epoch this coordinator serves (monotonic across
    /// resumes: cold start = 1, resume = snapshot + 1).
    epoch: AtomicU64,
    /// Post-resume resync deadline in coordinator seconds, as f64
    /// bits; NaN = not resyncing. Cleared by the event loop when
    /// it emits `resync_complete`, so `/healthz` flips strictly after
    /// the event.
    resync_deadline_bits: AtomicU64,
    status: Mutex<CoordinatorStatus>,
    /// When the last round finished, as f64-bit seconds on the server's
    /// monotonic clock (`/healthz` serves the age).
    last_round_bits: AtomicU64,
}

/// The running coordinator server.
pub struct CoordinatorServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    thread: Option<JoinHandle<()>>,
    telemetry: Telemetry,
    tracer: Tracer,
    start: Instant,
}

/// Per-connection bookkeeping hung on the reactor next to the
/// [`Transport`].
struct Conn {
    /// The node this socket handshook as (`None` until an accepted
    /// hello names it).
    node: Option<usize>,
    /// Last time a frame (or any bytes) arrived — the read deadline's
    /// clock.
    last_rx: Instant,
    /// [`Transport::bytes_rx`] at the last metrics sample.
    bytes_seen: u64,
    /// Round id of the last ceiling pushed to this connection, so the
    /// heartbeat pass skips freshly-commanded nodes in O(1).
    last_cmd_round: u64,
}

/// The event loop's share of the config, bundled once.
struct LoopCtx {
    shared: Arc<Shared>,
    metrics: Arc<Option<NetMetrics>>,
    telemetry: Telemetry,
    tracer: Tracer,
    period_s: f64,
    heartbeat_timeout_s: f64,
    nodes: usize,
    start: Instant,
    store: Option<SnapshotStore>,
    snapshot_every_s: f64,
    read_deadline: Duration,
    chaos: WireChaos,
    preferred_codec: WireCodec,
    max_conns: usize,
}

impl CoordinatorServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving a cluster
    /// of `nodes` nodes.
    pub fn bind(
        addr: &str,
        nodes: usize,
        algorithm: FvsstAlgorithm,
        config: CoordinatorConfig,
    ) -> Result<Self, FvsError> {
        config.validate()?;
        if nodes == 0 {
            return Err(FvsError::config("a cluster needs at least one node"));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let telemetry = config.telemetry.clone();
        let metrics = Arc::new(NetMetrics::from(&telemetry));
        let store = config.snapshot_path.as_ref().map(SnapshotStore::new);

        // Resume path: load the snapshot (a damaged or missing file is
        // a cold start — worst-case charging is always safe), bump the
        // epoch past the crashed incarnation, and keep the *stricter*
        // of the persisted and configured budgets so a pre-crash
        // budget drop stays enforced.
        let mut epoch = 1u64;
        let mut initial_budget = config.initial_budget_w;
        let mut restored: Option<Snapshot> = None;
        if config.resume {
            if let Some(store) = &store {
                match store.load() {
                    Ok(snap) => {
                        epoch = snap.epoch.saturating_add(1);
                        if snap.budget_w < initial_budget {
                            initial_budget = snap.budget_w;
                        }
                        restored = Some(snap);
                    }
                    Err(e) => {
                        eprintln!("fvsst-coordinator: snapshot unusable ({e}); cold start");
                    }
                }
            }
        }

        let mut coordinator =
            GlobalCoordinator::with_telemetry(algorithm, nodes, telemetry.clone())
                .with_heartbeat_timeout(config.heartbeat_timeout_s)
                .with_worst_case_node_w(config.worst_case_node_w)
                .with_tracer(config.tracer.clone());
        let mut tracker = BudgetDeadlineTracker::new(config.deadline_s);
        let mut initial_rounds = 0u64;
        if let Some(snap) = &restored {
            for (i, n) in snap.nodes.iter().enumerate().take(nodes) {
                let mut r = n.to_restore();
                if let Some(s) = &mut r.summary {
                    // Re-stamp the restored summary *stale by
                    // construction*: the first liveness sweep charges
                    // max(reported, commanded) — the last-charged
                    // ceiling — until a genuinely fresh summary lands.
                    // (Not `clamp`: a NaN age must sanitize to 0, and
                    // clamp would pass the NaN through.)
                    let age_s = if n.age_s.is_finite() {
                        n.age_s.clamp(0.0, 1e9)
                    } else {
                        0.0
                    };
                    s.sent_at_s = -(age_s + config.heartbeat_timeout_s + 1.0);
                }
                coordinator.restore_node(i, r);
            }
            if let Some(ep) = &snap.episode {
                // Rebase the open ΔT episode onto this process's clock
                // (which starts near zero): time already burned before
                // the crash stays burned.
                tracker.restore_episode(ep.to_open(0.0));
            }
            initial_rounds = snap.rounds;
        }

        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            budget_bits: AtomicU64::new(initial_budget.to_bits()),
            budget_epoch: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch),
            resync_deadline_bits: AtomicU64::new(if restored.is_some() {
                config.resync_grace_s.to_bits()
            } else {
                f64::NAN.to_bits()
            }),
            status: Mutex::new(CoordinatorStatus {
                budget_w: initial_budget,
                rounds: initial_rounds,
                epoch,
                resyncing: restored.is_some(),
                ..CoordinatorStatus::default()
            }),
            last_round_bits: AtomicU64::new(0f64.to_bits()),
        });
        let start = Instant::now();

        if let Some(snap) = &restored {
            telemetry.emit(SchedEvent::CoordinatorResumed {
                t_s: 0.0,
                epoch,
                budget_w: initial_budget,
                restored_nodes: snap.nodes.len().min(nodes) as u32,
                grace_s: config.resync_grace_s,
            });
        }

        let tracer = config.tracer.clone();
        let ctx = LoopCtx {
            shared: Arc::clone(&shared),
            metrics,
            telemetry: telemetry.clone(),
            tracer: tracer.clone(),
            period_s: config.period_s,
            heartbeat_timeout_s: config.heartbeat_timeout_s,
            nodes,
            start,
            store,
            snapshot_every_s: config.snapshot_every_s,
            read_deadline: Duration::from_secs_f64(config.read_deadline_s),
            chaos: config.chaos.clone(),
            preferred_codec: config.preferred_codec,
            max_conns: config.max_conns,
        };
        let thread = std::thread::Builder::new()
            .name("fvs-coordinator".into())
            .spawn(move || {
                event_loop(listener, coordinator, tracker, ctx);
            })
            .map_err(FvsError::Io)?;

        Ok(CoordinatorServer {
            shared,
            local_addr,
            thread: Some(thread),
            telemetry,
            tracer,
            start,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The fencing epoch this coordinator serves.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Change the global budget; the event loop reacts on its next
    /// slice (a few milliseconds), not its next period.
    pub fn set_budget(&self, watts: f64) {
        self.shared
            .budget_bits
            .store(watts.to_bits(), Ordering::SeqCst);
        self.shared.budget_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// A snapshot of the control plane right now.
    pub fn status(&self) -> CoordinatorStatus {
        self.shared.status.lock().expect("status poisoned").clone()
    }

    /// The health report — the single code path behind the `/healthz`
    /// endpoint *and* the coordinator binary's status line, so the wire
    /// and the terminal can never disagree.
    pub fn health(&self) -> HealthReport {
        health_from(&self.shared, self.start)
    }

    /// Mount the observability listener at `addr` (`/metrics`,
    /// `/healthz`, `/journal`, `/trace`), backed by this server's
    /// registry, event ring, span ring and health snapshot.
    pub fn serve_obs(&self, addr: &str) -> Result<ObsServer, FvsError> {
        let shared = Arc::clone(&self.shared);
        let start = self.start;
        ObsServer::bind(
            addr,
            ObsHandles {
                registry: self.telemetry.registry().cloned(),
                journal: self.telemetry.clone(),
                tracer: self.tracer.clone(),
                health: Some(Arc::new(move || health_from(&shared, start))),
            },
        )
    }

    /// Stop the event loop, flush telemetry, and return the final
    /// status.
    pub fn shutdown(mut self) -> Result<CoordinatorStatus, FvsError> {
        self.stop_and_join();
        self.telemetry.flush()?;
        Ok(self.status())
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CoordinatorServer {
    fn drop(&mut self) {
        self.stop_and_join();
        let _ = self.telemetry.flush();
    }
}

/// Tear a connection down: deregister, unmap its node (if this socket
/// is still the node's current one), count the disconnect. Dropping
/// the transport closes the socket.
fn close_conn(
    reactor: &mut Reactor<Conn>,
    node_tokens: &mut HashMap<usize, u64>,
    token: u64,
    metrics: Option<&NetMetrics>,
) {
    let Some((_, conn)) = reactor.remove(token) else {
        return;
    };
    if let Some(node) = conn.node {
        if node_tokens.get(&node) == Some(&token) {
            node_tokens.remove(&node);
        }
    }
    if let Some(m) = metrics {
        m.disconnects.inc();
    }
}

/// Accept everything pending on the listener (level-triggered: drain
/// until `WouldBlock`).
fn accept_ready(listener: &TcpListener, reactor: &mut Reactor<Conn>, ctx: &LoopCtx, seq: &mut u64) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let metrics = ctx.metrics.as_ref().as_ref();
                if reactor.len() >= ctx.max_conns {
                    // Admission control: over the cap the kindest
                    // signal is an immediate close, which the agent's
                    // backoff ladder turns into a retry.
                    drop(stream);
                    continue;
                }
                *seq += 1;
                let chaos_counter = metrics.map(|m| Arc::clone(&m.wire_faults));
                let stream = ChaosStream::wrap(
                    stream,
                    &ctx.chaos,
                    ChaosSide::Coordinator,
                    *seq,
                    ctx.start,
                    ctx.telemetry.clone(),
                    chaos_counter,
                );
                let _ = stream.set_nodelay(true);
                let conn = Conn {
                    node: None,
                    last_rx: Instant::now(),
                    bytes_seen: 0,
                    last_cmd_round: 0,
                };
                if reactor.insert(Transport::new(stream), conn).is_ok() {
                    if let Some(m) = metrics {
                        m.connects.inc();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Service one connection's readiness: flush if writable, then read,
/// parse and dispatch every complete frame. Summaries are re-stamped
/// with arrival time and ingested into the [`GlobalCoordinator`] right
/// here — same thread, same iteration.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    readable: bool,
    writable: bool,
    token: u64,
    reactor: &mut Reactor<Conn>,
    node_tokens: &mut HashMap<usize, u64>,
    ctx: &LoopCtx,
    coordinator: &mut GlobalCoordinator,
    last_power: &mut [f64],
    last_seen: &mut [f64],
    my_epoch: u64,
) {
    let metrics = ctx.metrics.as_ref().as_ref();
    if writable {
        let Some((transport, _)) = reactor.get_mut(token) else {
            return;
        };
        if transport.flush().is_err() {
            close_conn(reactor, node_tokens, token, metrics);
            return;
        }
        let _ = reactor.update_interest(token);
    }
    if !readable {
        return;
    }
    {
        let Some((transport, conn)) = reactor.get_mut(token) else {
            return;
        };
        match transport.fill() {
            Ok(FillStatus::Eof) | Err(_) => {
                close_conn(reactor, node_tokens, token, metrics);
                return;
            }
            Ok(FillStatus::Progress) => {
                conn.last_rx = Instant::now();
                let total = transport.bytes_rx();
                if let Some(m) = metrics {
                    m.bytes_rx.add(total - conn.bytes_seen);
                }
                conn.bytes_seen = total;
            }
            Ok(FillStatus::Idle) => {}
        }
    }
    loop {
        let Some((transport, conn)) = reactor.get_mut(token) else {
            return;
        };
        match transport.next_msg() {
            Ok(None) => return,
            Ok(Some(msg)) => {
                if let Some(m) = metrics {
                    m.frames_rx.inc();
                }
                match msg {
                    WireMsg::Hello {
                        node,
                        version,
                        last_epoch,
                        codecs,
                        ..
                    } => {
                        let version_ok = version == SCHEMA_VERSION;
                        // An agent that has acknowledged a *newer*
                        // epoch than ours means we are the stale
                        // survivor: refuse, so the split-brain resolves
                        // in favour of the current incumbent.
                        let epoch_ok = last_epoch <= my_epoch;
                        let accepted = version_ok && epoch_ok;
                        // Codec negotiation: binary iff both sides want
                        // it; the ack itself is always JSON.
                        let chosen = if accepted
                            && ctx.preferred_codec == WireCodec::Binary
                            && codecs & CODEC_BINARY_BIT != 0
                        {
                            WireCodec::Binary
                        } else {
                            WireCodec::Json
                        };
                        let ack = WireMsg::HelloAck {
                            accepted,
                            version: SCHEMA_VERSION,
                            epoch: my_epoch,
                            codec: chosen.id(),
                        };
                        let acked = transport.send(&ack).is_ok() && transport.flush().is_ok();
                        if acked {
                            if let Some(m) = metrics {
                                m.frames_tx.inc();
                            }
                        }
                        if !version_ok {
                            if let Some(m) = metrics {
                                m.version_rejects.inc();
                            }
                            close_conn(reactor, node_tokens, token, metrics);
                            return;
                        }
                        if !epoch_ok {
                            if let Some(m) = metrics {
                                m.epoch_rejects.inc();
                            }
                            ctx.telemetry.emit(SchedEvent::EpochFenced {
                                t_s: ctx.start.elapsed().as_secs_f64(),
                                node: node as u32,
                                peer_epoch: last_epoch,
                                local_epoch: my_epoch,
                            });
                            close_conn(reactor, node_tokens, token, metrics);
                            return;
                        }
                        if !acked {
                            close_conn(reactor, node_tokens, token, metrics);
                            return;
                        }
                        transport.set_codec(chosen);
                        transport.stream().set_node(node);
                        conn.node = Some(node);
                        // A reconnecting node replaces its old socket as
                        // the push target; the old one dies by deadline.
                        node_tokens.insert(node, token);
                        let _ = reactor.update_interest(token);
                    }
                    WireMsg::Summary(mut summary) => {
                        // Re-stamp with arrival time on the
                        // coordinator's clock: liveness is what *we*
                        // observed, not what the agent claims.
                        let arrival_s = conn
                            .last_rx
                            .saturating_duration_since(ctx.start)
                            .as_secs_f64();
                        summary.sent_at_s = arrival_s;
                        let node = summary.node;
                        if node < ctx.nodes {
                            last_power[node] = summary.power_w;
                            last_seen[node] = arrival_s;
                        }
                        if let Some(m) = metrics {
                            // Staleness at ingest: parse-to-ingest gap
                            // on the arrival-stamped clock (there is no
                            // reader-to-scheduler queue any more).
                            m.summary_staleness_s
                                .observe((ctx.start.elapsed().as_secs_f64() - arrival_s).max(0.0));
                        }
                        coordinator.ingest(summary);
                    }
                    WireMsg::Bye { .. } => {
                        close_conn(reactor, node_tokens, token, metrics);
                        return;
                    }
                    // Agents never send these; ignore.
                    WireMsg::HelloAck { .. } | WireMsg::Ceiling(_) | WireMsg::Heartbeat { .. } => {}
                }
            }
            Err(_) => {
                // A desynchronised stream cannot be trusted; classify
                // the organic fault for the journal and metrics
                // *before* dropping it (oversize / bad magic / decode
                // are distinguishable from injected chaos via
                // `injected:false`, and the event carries the observed
                // frame length and codec).
                let kind = match transport.last_fault() {
                    Some(FrameFault::Oversize) => {
                        if let Some(m) = metrics {
                            m.oversize_frames.inc();
                        }
                        WireFaultKind::Oversize
                    }
                    Some(FrameFault::BadMagic) => WireFaultKind::BadMagic,
                    _ => WireFaultKind::Decode,
                };
                if let Some(m) = metrics {
                    m.decode_errors.inc();
                    m.wire_faults.inc();
                }
                ctx.telemetry.emit(SchedEvent::WireFault {
                    t_s: ctx.start.elapsed().as_secs_f64(),
                    node: conn.node.map(|n| n as u32).unwrap_or(u32::MAX),
                    kind,
                    injected: false,
                    frame_len: transport.last_fault_len(),
                    codec: transport.last_fault_codec(),
                });
                close_conn(reactor, node_tokens, token, metrics);
                return;
            }
        }
    }
}

/// Push this round's ceilings, then a keep-alive [`WireMsg::Heartbeat`]
/// to every handshaken connection the round did not command — so
/// agents can bound dead-link detection in time, and a stale
/// coordinator gets fenced mid-connection by the epoch the heartbeat
/// carries.
fn push_round(
    reactor: &mut Reactor<Conn>,
    node_tokens: &mut HashMap<usize, u64>,
    commands: &[FrequencyCommand],
    epoch: u64,
    round: u64,
    metrics: Option<&NetMetrics>,
) {
    for cmd in commands {
        let Some(&token) = node_tokens.get(&cmd.node) else {
            continue;
        };
        let Some((transport, conn)) = reactor.get_mut(token) else {
            continue;
        };
        conn.last_cmd_round = round;
        let ok =
            transport.send(&WireMsg::Ceiling(cmd.clone())).is_ok() && transport.flush().is_ok();
        if !ok {
            close_conn(reactor, node_tokens, token, metrics);
            continue;
        }
        let _ = reactor.update_interest(token);
        if let Some(m) = metrics {
            m.frames_tx.inc();
        }
    }
    let heartbeat = WireMsg::Heartbeat { epoch };
    let targets: Vec<u64> = node_tokens.values().copied().collect();
    for token in targets {
        let Some((transport, conn)) = reactor.get_mut(token) else {
            continue;
        };
        if conn.last_cmd_round == round {
            continue;
        }
        let ok = transport.send(&heartbeat).is_ok() && transport.flush().is_ok();
        if !ok {
            close_conn(reactor, node_tokens, token, metrics);
            continue;
        }
        let _ = reactor.update_interest(token);
        if let Some(m) = metrics {
            m.frames_tx.inc();
            m.heartbeats_tx.inc();
        }
    }
}

/// Capture the coordinator's recoverable state as a [`Snapshot`].
fn take_snapshot(
    coordinator: &GlobalCoordinator,
    tracker: &BudgetDeadlineTracker,
    nodes: usize,
    epoch: u64,
    budget_w: f64,
    now_s: f64,
    rounds: u64,
) -> Snapshot {
    let nodes = (0..nodes)
        .map(|i| {
            let r = coordinator.export_node(i).unwrap_or(NodeRestore {
                summary: None,
                commanded_w: 0.0,
                dead: false,
                shape: None,
            });
            let age_s = r
                .summary
                .as_ref()
                .map(|s| (now_s - s.sent_at_s).max(0.0))
                .unwrap_or(f64::INFINITY);
            SnapshotNode {
                summary: r.summary,
                age_s,
                commanded_w: r.commanded_w,
                dead: r.dead,
                shape: r.shape,
            }
        })
        .collect();
    Snapshot {
        epoch,
        budget_w,
        taken_at_s: now_s,
        rounds,
        nodes,
        episode: tracker
            .export_episode()
            .map(|ep| SnapshotEpisode::from_open(&ep, now_s)),
    }
}

/// The whole server, one thread: accept, read, schedule, push.
fn event_loop(
    listener: TcpListener,
    mut coordinator: GlobalCoordinator,
    mut tracker: BudgetDeadlineTracker,
    ctx: LoopCtx,
) {
    let mut reactor: Reactor<Conn> = match Reactor::new() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fvsst-coordinator: reactor init failed: {e}");
            return;
        }
    };
    if let Err(e) = reactor.register_listener(&listener) {
        eprintln!("fvsst-coordinator: listener registration failed: {e}");
        return;
    }

    // Map a node id to its current downlink token.
    let mut node_tokens: HashMap<usize, u64> = HashMap::new();
    let mut accept_seq = 0u64;
    let mut last_round = Instant::now();
    let mut seen_epoch = 0u64;
    let mut prev_budget = f64::from_bits(ctx.shared.budget_bits.load(Ordering::SeqCst));
    let mut rounds = ctx.shared.status.lock().expect("status poisoned").rounds;
    let my_epoch = ctx.shared.epoch.load(Ordering::SeqCst);
    let mut last_snapshot_s = 0.0f64;
    // Last power each node reported, and when (coordinator clock) — the
    // live half of the conservative power sum. Restored nodes start
    // with `last_seen = -inf` on purpose: they are *charged* (inside
    // `reserved_w`) until they report on this incarnation's socket.
    let mut last_power = vec![0.0f64; ctx.nodes];
    let mut last_seen = vec![f64::NEG_INFINITY; ctx.nodes];
    // Read-deadline sweeps walk every connection, so amortize them.
    let sweep_every = (ctx.read_deadline / 4).min(Duration::from_millis(500));
    let mut last_sweep = Instant::now();

    let write_snapshot = |coordinator: &GlobalCoordinator,
                          tracker: &BudgetDeadlineTracker,
                          budget: f64,
                          now_s: f64,
                          rounds: u64| {
        let Some(store) = &ctx.store else { return };
        let snap = take_snapshot(
            coordinator,
            tracker,
            ctx.nodes,
            my_epoch,
            budget,
            now_s,
            rounds,
        );
        match store.save(&snap) {
            Ok(()) => {
                if let Some(m) = ctx.metrics.as_ref() {
                    m.snapshots_written.inc();
                }
                ctx.telemetry.emit(SchedEvent::SnapshotWritten {
                    t_s: now_s,
                    epoch: my_epoch,
                    budget_w: budget,
                    nodes: ctx.nodes as u32,
                });
            }
            Err(e) => {
                eprintln!("fvsst-coordinator: snapshot write failed: {e}");
            }
        }
    };

    loop {
        let stopping = ctx.shared.stop.load(Ordering::SeqCst);

        // Wait for readiness, but never past the scheduler slice: a
        // budget change (an atomic poke from another thread) must be
        // noticed within a few milliseconds, not a period.
        let until_round =
            Duration::from_secs_f64(ctx.period_s).saturating_sub(last_round.elapsed());
        let timeout = until_round.min(Duration::from_millis(2));
        if let Err(e) = reactor.poll(Some(timeout)) {
            eprintln!("fvsst-coordinator: poll failed: {e}");
            break;
        }
        let events = reactor.drain_events();
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready(&listener, &mut reactor, &ctx, &mut accept_seq);
            } else {
                service_conn(
                    ev.readable || ev.hangup,
                    ev.writable,
                    ev.token,
                    &mut reactor,
                    &mut node_tokens,
                    &ctx,
                    &mut coordinator,
                    &mut last_power,
                    &mut last_seen,
                    my_epoch,
                );
            }
        }
        reactor.recycle_events(events);

        // Read-deadline sweep: a link that produces no bytes for
        // `read_deadline` is declared dead instead of lingering.
        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            for token in reactor.tokens() {
                let expired = reactor
                    .get_mut(token)
                    .map(|(_, c)| c.last_rx.elapsed() > ctx.read_deadline)
                    .unwrap_or(false);
                if expired {
                    close_conn(
                        &mut reactor,
                        &mut node_tokens,
                        token,
                        ctx.metrics.as_ref().as_ref(),
                    );
                }
            }
        }

        let epoch = ctx.shared.budget_epoch.load(Ordering::SeqCst);
        let budget_changed = epoch != seen_epoch;
        let due = last_round.elapsed().as_secs_f64() >= ctx.period_s;
        if budget_changed || due || stopping {
            let _round_span = ctx.tracer.span("net.round");
            let round_started = Instant::now();
            seen_epoch = epoch;
            last_round = Instant::now();
            let now_s = ctx.start.elapsed().as_secs_f64();
            let budget = f64::from_bits(ctx.shared.budget_bits.load(Ordering::SeqCst));
            if budget != prev_budget {
                // Write-ahead: persist the new budget *before* acting
                // on it, so a crash between here and the push can
                // never resurrect the old, laxer budget.
                write_snapshot(&coordinator, &tracker, budget, now_s, rounds);
                last_snapshot_s = now_s;
                if let Some(ev) = tracker.on_budget_change(now_s, prev_budget, budget) {
                    ctx.telemetry.emit(ev);
                }
                prev_budget = budget;
            }

            let commands = coordinator.schedule(budget, now_s);
            tracker.on_round();

            // Conservative power: what the live nodes last reported plus
            // what the coordinator reserved for the silent — the same
            // sum the ΔT argument is made against. Liveness here is the
            // exact rule `schedule()` used, so no node is both counted
            // live and charged as reserved.
            let reserved_w = coordinator.reserved_w();
            let live_w: f64 = (0..ctx.nodes)
                .filter(|&i| now_s - last_seen[i] <= ctx.heartbeat_timeout_s)
                .map(|i| last_power[i])
                .sum();
            let conservative_w = live_w + reserved_w;
            if let Some(ev) = tracker.on_power_sample(now_s, conservative_w) {
                ctx.telemetry.emit(ev);
            }

            // Resync bookkeeping: the grace window ends when every node
            // has reported fresh on this incarnation, or the deadline
            // lapses — whichever comes first. Clearing the bits here
            // (and only here) is what flips `/healthz` to 200, so the
            // `resync_complete` event strictly precedes the flip.
            let resync_deadline =
                f64::from_bits(ctx.shared.resync_deadline_bits.load(Ordering::SeqCst));
            let mut resyncing = !resync_deadline.is_nan();
            if resyncing {
                let fresh = (0..ctx.nodes)
                    .filter(|&i| now_s - last_seen[i] <= ctx.heartbeat_timeout_s)
                    .count();
                if fresh == ctx.nodes || now_s >= resync_deadline {
                    ctx.telemetry.emit(SchedEvent::ResyncComplete {
                        t_s: now_s,
                        wall_s: now_s,
                        fresh_nodes: fresh as u32,
                        charged_nodes: (ctx.nodes - fresh) as u32,
                    });
                    ctx.shared
                        .resync_deadline_bits
                        .store(f64::NAN.to_bits(), Ordering::SeqCst);
                    resyncing = false;
                }
            }

            rounds += 1;
            {
                let _push_span = ctx.tracer.span("net.push");
                let push_started = Instant::now();
                push_round(
                    &mut reactor,
                    &mut node_tokens,
                    &commands,
                    my_epoch,
                    rounds,
                    ctx.metrics.as_ref().as_ref(),
                );
                if let Some(m) = ctx.metrics.as_ref() {
                    m.fanout_wall_s
                        .observe(push_started.elapsed().as_secs_f64());
                }
            }

            let mut status = ctx.shared.status.lock().expect("status poisoned");
            status.rounds = rounds;
            status.nodes_reporting = coordinator.nodes_reporting();
            status.dead_nodes = coordinator.dead_nodes();
            status.reserved_w = reserved_w;
            status.conservative_power_w = conservative_w;
            status.budget_w = budget;
            status.connections = node_tokens.len();
            status.compliances = tracker.compliances();
            status.violations = tracker.violations();
            status.epoch = my_epoch;
            status.resyncing = resyncing;
            status.last_compliance = tracker.last_compliance();
            if let Some(m) = ctx.metrics.as_ref() {
                m.connections.set(status.connections as f64);
                m.round_wall_s
                    .observe(round_started.elapsed().as_secs_f64());
            }
            drop(status);
            ctx.shared.last_round_bits.store(
                ctx.start.elapsed().as_secs_f64().to_bits(),
                Ordering::SeqCst,
            );

            // Cadence snapshot (budget changes already snapshotted
            // above, write-ahead).
            if now_s - last_snapshot_s >= ctx.snapshot_every_s {
                write_snapshot(&coordinator, &tracker, budget, now_s, rounds);
                last_snapshot_s = now_s;
            }
        }
        if stopping {
            break;
        }
    }
    // Dropping the reactor closes every socket, unblocking any agent
    // mid-read.
}

/// Build a [`HealthReport`] from the shared control-plane state. Budget
/// compliance is against the *conservative* power sum — the same
/// quantity the paper's ΔT argument bounds — and an infinite budget is
/// trivially compliant.
fn health_from(shared: &Shared, start: Instant) -> HealthReport {
    let status = shared.status.lock().expect("status poisoned").clone();
    let now_s = start.elapsed().as_secs_f64();
    let last_round_s = f64::from_bits(shared.last_round_bits.load(Ordering::SeqCst));
    let budget_compliant =
        !status.budget_w.is_finite() || status.conservative_power_w <= status.budget_w;
    let resync_deadline = f64::from_bits(shared.resync_deadline_bits.load(Ordering::SeqCst));
    let resyncing = !resync_deadline.is_nan();
    HealthReport {
        uptime_s: now_s,
        rounds: status.rounds,
        last_round_age_s: (now_s - last_round_s).max(0.0),
        nodes_reporting: status.nodes_reporting,
        dead_nodes: status.dead_nodes,
        connections: status.connections,
        budget_w: status.budget_w,
        conservative_power_w: status.conservative_power_w,
        reserved_w: status.reserved_w,
        budget_compliant,
        compliances: status.compliances,
        violations: status.violations,
        epoch: status.epoch,
        resyncing,
        resync_deadline_s: if resyncing {
            (resync_deadline - now_s).max(0.0)
        } else {
            f64::NAN
        },
        degraded: status.dead_nodes > 0 || !budget_compliant,
    }
}
