//! Wire-served introspection: a tiny hand-rolled HTTP/1.0 listener.
//!
//! No async runtime (vendor tradition — `std::net` and one thread), no
//! external HTTP crate: requests are a single `GET` line, responses are
//! `Connection: close` with an explicit `Content-Length`. The routes:
//!
//! - `GET /metrics` — Prometheus-style text exposition of the attached
//!   [`MetricsRegistry`] (per-bucket cumulative lines, `_count`/`_sum`,
//!   `{quantile="..."}` estimates).
//! - `GET /healthz` — one [`HealthReport`] as JSON; `200` when healthy,
//!   `503` when degraded (dead nodes, budget non-compliance). The same
//!   report renders the coordinator binary's status line, so the wire
//!   and the terminal can never disagree.
//! - `GET /journal?n=K` — the last `K` (default 100) events of the
//!   telemetry ring as JSONL.
//! - `GET /trace` — the span ring as chrome://tracing JSON
//!   (`?fmt=flame` for the text flame summary).
//!
//! The listener runs on its own thread and touches only `Arc`'d
//! handles; mounting it adds nothing to the scheduling hot path.

use crate::error::FvsError;
use fvs_telemetry::{MetricsRegistry, Telemetry, Tracer};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A point-in-time health summary, served by `/healthz` and rendered as
/// the coordinator's status line.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Seconds since the process bound its sockets.
    pub uptime_s: f64,
    /// Scheduling rounds completed.
    pub rounds: u64,
    /// Seconds since the last round finished.
    pub last_round_age_s: f64,
    /// Nodes that have reported at least once and are presumed live.
    pub nodes_reporting: usize,
    /// Nodes currently presumed dead (charged conservatively).
    pub dead_nodes: usize,
    /// Sockets currently connected.
    pub connections: usize,
    /// Budget in force (W).
    pub budget_w: f64,
    /// Conservative cluster power: live reports + reserved (W).
    pub conservative_power_w: f64,
    /// Power reserved for silent nodes (W).
    pub reserved_w: f64,
    /// The conservative power fits the budget right now.
    pub budget_compliant: bool,
    /// Budget-drop episodes closed within ΔT.
    pub compliances: u64,
    /// Budget-drop deadline violations.
    pub violations: u64,
    /// The coordinator's fencing epoch.
    pub epoch: u64,
    /// Inside the post-resume resync grace window: restored charges
    /// are still being replaced by fresh summaries. Served as its own
    /// 503 state so operators can tell "resuming" from "broken".
    pub resyncing: bool,
    /// Seconds left in the resync grace window (NaN → `null` when not
    /// resyncing).
    pub resync_deadline_s: f64,
    /// Degraded: dead nodes exist or the budget is not honoured.
    pub degraded: bool,
}

impl HealthReport {
    /// Whether `/healthz` should answer 200. A resyncing coordinator
    /// is *not* healthy yet: its conservative charges are restored,
    /// not observed, and the flip to 200 happens only after the
    /// scheduler emits `resync_complete`.
    pub fn healthy(&self) -> bool {
        !self.degraded && !self.resyncing
    }

    /// JSON body of `/healthz` (hand-rolled; non-finite numbers render
    /// as `null` like the event journal).
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        format!(
            concat!(
                "{{\"status\":\"{}\",\"uptime_s\":{},\"rounds\":{},",
                "\"last_round_age_s\":{},\"nodes_reporting\":{},",
                "\"dead_nodes\":{},\"connections\":{},\"budget_w\":{},",
                "\"conservative_power_w\":{},\"reserved_w\":{},",
                "\"budget_compliant\":{},\"compliances\":{},",
                "\"violations\":{},\"epoch\":{},\"resyncing\":{},",
                "\"resync_deadline_s\":{}}}"
            ),
            if self.resyncing {
                "resyncing"
            } else if self.degraded {
                "degraded"
            } else {
                "ok"
            },
            num(self.uptime_s),
            self.rounds,
            num(self.last_round_age_s),
            self.nodes_reporting,
            self.dead_nodes,
            self.connections,
            num(self.budget_w),
            num(self.conservative_power_w),
            num(self.reserved_w),
            self.budget_compliant,
            self.compliances,
            self.violations,
            self.epoch,
            self.resyncing,
            if self.resyncing {
                num(self.resync_deadline_s)
            } else {
                "null".to_string()
            },
        )
    }

    /// One-line operator rendering (the coordinator's status line).
    pub fn status_line(&self) -> String {
        format!(
            "[{:7.1}s] {} | epoch {} | rounds {} | nodes {} live / {} dead | conn {} | \
             power {:.1} W / budget {} W (reserved {:.1}) | ΔT {} ok / {} late",
            self.uptime_s,
            if self.resyncing {
                "RESYNC"
            } else if self.degraded {
                "DEGRADED"
            } else {
                "ok"
            },
            self.epoch,
            self.rounds,
            self.nodes_reporting,
            self.dead_nodes,
            self.connections,
            self.conservative_power_w,
            if self.budget_w.is_finite() {
                format!("{:.1}", self.budget_w)
            } else {
                "inf".to_string()
            },
            self.reserved_w,
            self.compliances,
            self.violations,
        )
    }
}

/// Everything the observability listener serves. Every handle is
/// optional-by-construction: a disabled [`Telemetry`] or [`Tracer`]
/// simply yields empty bodies, and a missing health closure turns
/// `/healthz` into a 404.
#[derive(Clone)]
pub struct ObsHandles {
    /// Registry behind `GET /metrics` (None → empty exposition).
    pub registry: Option<MetricsRegistry>,
    /// Event pipeline behind `GET /journal` (its memory ring is the
    /// tail that gets served; fanout handles delegate automatically).
    pub journal: Telemetry,
    /// Span ring behind `GET /trace`.
    pub tracer: Tracer,
    /// Builder of the `/healthz` report.
    #[allow(clippy::type_complexity)]
    pub health: Option<Arc<dyn Fn() -> HealthReport + Send + Sync>>,
}

impl std::fmt::Debug for ObsHandles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandles")
            .field("registry", &self.registry.is_some())
            .field("journal", &self.journal.enabled())
            .field("tracer", &self.tracer.enabled())
            .field("health", &self.health.is_some())
            .finish()
    }
}

/// The running HTTP/1.0 introspection listener.
#[derive(Debug)]
pub struct ObsServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `handles` until the
    /// server is dropped or [`shutdown`](ObsServer::shutdown).
    pub fn bind(addr: &str, handles: ObsHandles) -> Result<Self, FvsError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_loop(listener, handles, stop))
        };
        Ok(ObsServer {
            local_addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: TcpListener, handles: ObsHandles, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Introspection traffic is low-rate and read-only;
                // handling it inline (with a read timeout) keeps the
                // server to one thread.
                handle_connection(stream, &handles);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream, handles: &ObsHandles) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request head (or the buffer fills —
    // GETs with no body fit comfortably).
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    while head.len() < 8192 {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let Some(line) = request.lines().next() else {
        return;
    };
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return,
    };
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        )
    } else {
        route(target, handles)
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Dispatch one GET target; returns (status, content type, body).
fn route(target: &str, handles: &ObsHandles) -> (&'static str, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = handles
                .registry
                .as_ref()
                .map(|r| r.render_text())
                .unwrap_or_default();
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        "/healthz" => match &handles.health {
            Some(health) => {
                let report = health();
                let status = if report.healthy() {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                let mut body = report.to_json();
                body.push('\n');
                (status, "application/json", body)
            }
            None => ("404 Not Found", "text/plain", "no health source\n".into()),
        },
        "/journal" => {
            let n = query_param(query, "n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(100);
            let events = handles.journal.events();
            let skip = events.len().saturating_sub(n);
            let mut body = String::new();
            for ev in &events[skip..] {
                ev.write_jsonl(&mut body);
                body.push('\n');
            }
            ("200 OK", "application/jsonl", body)
        }
        "/trace" => {
            if query_param(query, "fmt") == Some("flame") {
                ("200 OK", "text/plain", handles.tracer.flame_text())
            } else {
                (
                    "200 OK",
                    "application/json",
                    handles.tracer.export_chrome_json(),
                )
            }
        }
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
}

/// Issue one local `GET` and return `(status_code, body)` — the test
/// and drill scrape client (keeps CI free of curl).
pub fn http_get(addr: std::net::SocketAddr, target: &str) -> Result<(u16, String), FvsError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {target} HTTP/1.0\r\nHost: fvsst\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let code = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| FvsError::config("malformed HTTP response"))?;
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((code, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_telemetry::SchedEvent;

    fn handles() -> (ObsHandles, Telemetry, Tracer) {
        let telemetry = Telemetry::memory(64);
        let tracer = Tracer::ring(64);
        let handles = ObsHandles {
            registry: telemetry.registry().cloned(),
            journal: telemetry.clone(),
            tracer: tracer.clone(),
            health: Some(Arc::new(|| HealthReport {
                rounds: 7,
                budget_compliant: true,
                ..HealthReport::default()
            })),
        };
        (handles, telemetry, tracer)
    }

    #[test]
    fn serves_metrics_journal_trace_and_health() {
        let (handles, telemetry, tracer) = handles();
        let registry = telemetry.registry().unwrap();
        registry.counter("net.frames_rx").add(3);
        registry
            .histogram("net.round_wall_s", &[1e-3, 1e-2])
            .observe(0.002);
        telemetry.emit(SchedEvent::BudgetDrop {
            t_s: 1.0,
            from_w: 2000.0,
            to_w: 1200.0,
            deadline_s: 1.0,
        });
        {
            let _outer = tracer.span("net.round");
            let _inner = tracer.span("cluster.round");
        }
        let server = ObsServer::bind("127.0.0.1:0", handles).unwrap();
        let addr = server.local_addr();

        let (code, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("net.frames_rx 3"), "{body}");
        assert!(
            body.contains("net.round_wall_s_bucket{le=\"1e-3\"}"),
            "{body}"
        );
        assert!(
            body.contains("net.round_wall_s{quantile=\"0.99\"}"),
            "{body}"
        );

        let (code, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"rounds\":7"), "{body}");

        let (code, body) = http_get(addr, "/journal?n=10").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"kind\":\"budget_drop\""), "{body}");

        let (code, body) = http_get(addr, "/trace").unwrap();
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);

        let (code, body) = http_get(addr, "/trace?fmt=flame").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("net.round"), "{body}");

        let (code, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(code, 404);
        server.shutdown();
    }

    #[test]
    fn healthz_degraded_is_503() {
        let telemetry = Telemetry::disabled();
        let handles = ObsHandles {
            registry: None,
            journal: telemetry.clone(),
            tracer: Tracer::disabled(),
            health: Some(Arc::new(|| HealthReport {
                dead_nodes: 2,
                degraded: true,
                ..HealthReport::default()
            })),
        };
        let server = ObsServer::bind("127.0.0.1:0", handles).unwrap();
        let (code, body) = http_get(server.local_addr(), "/healthz").unwrap();
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"dead_nodes\":2"), "{body}");
    }

    /// Satellite: `resyncing` is its own 503 state, distinct from
    /// `degraded`, and the JSON carries the grace-window deadline.
    #[test]
    fn healthz_resyncing_is_a_distinct_503_with_deadline() {
        let telemetry = Telemetry::disabled();
        let handles = ObsHandles {
            registry: None,
            journal: telemetry.clone(),
            tracer: Tracer::disabled(),
            health: Some(Arc::new(|| HealthReport {
                resyncing: true,
                resync_deadline_s: 1.75,
                budget_compliant: true,
                ..HealthReport::default()
            })),
        };
        let server = ObsServer::bind("127.0.0.1:0", handles).unwrap();
        let (code, body) = http_get(server.local_addr(), "/healthz").unwrap();
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"resyncing\""), "{body}");
        assert!(body.contains("\"resync_deadline_s\":1.75"), "{body}");
        // Once the window closes the deadline reads null and the
        // report is healthy again.
        let done = HealthReport {
            resyncing: false,
            resync_deadline_s: f64::NAN,
            budget_compliant: true,
            ..HealthReport::default()
        };
        assert!(done.healthy());
        assert!(done.to_json().contains("\"resync_deadline_s\":null"));
    }

    #[test]
    fn health_report_renders_infinite_budget() {
        let r = HealthReport {
            budget_w: f64::INFINITY,
            ..HealthReport::default()
        };
        assert!(r.to_json().contains("\"budget_w\":null"));
        assert!(r.status_line().contains("budget inf W"));
    }
}
