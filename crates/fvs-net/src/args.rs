//! Shared CLI flag surface for the net binaries.
//!
//! `fvsst-coordinator`, `fvsst-node` and `fvsst-hier-drill` each grew
//! their own copies of the same flag parsing (`--chaos`,
//! `--chaos-seed`, `--obs-addr`, `--snapshot`, ...), which meant every
//! new transport flag had to land three times. [`NetArgs`] collapses
//! the duplication: a binary enables the groups it supports
//! (builder-style), offers each unrecognised token to
//! [`NetArgs::accept`] from its own parse loop, and renders the matching
//! usage text with [`NetArgs::usage_fragment`]. New flags — `--codec`,
//! `--max-conns` — land here once and appear everywhere the group is
//! enabled.
//!
//! The struct also owns the derived-object helpers the binaries shared
//! by copy-paste: the telemetry fanout logic (JSONL file and/or the
//! in-memory ring `/journal` tails), the tracer, and the parsed
//! [`WireChaos`].

use crate::chaos::WireChaos;
use crate::error::FvsError;
use crate::wire::WireCodec;
use fvs_faults::WireFaultPlan;
use fvs_telemetry::{Telemetry, Tracer};

/// Parse a non-negative finite float flag value.
pub fn parse_f64(flag: &str, value: Option<&String>) -> Result<f64, FvsError> {
    value
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| FvsError::config(format!("{flag} requires a non-negative number")))
}

/// Parse an integer flag value with a lower bound.
pub fn parse_usize(flag: &str, value: Option<&String>, min: usize) -> Result<usize, FvsError> {
    value
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n >= min)
        .ok_or_else(|| FvsError::config(format!("{flag} requires an integer >= {min}")))
}

/// The shared flag groups of the net binaries. See the module docs.
#[derive(Debug, Clone)]
pub struct NetArgs {
    obs_enabled: bool,
    telemetry_enabled: bool,
    chaos_enabled: bool,
    snapshots_enabled: bool,
    codec_enabled: bool,
    max_conns_enabled: bool,

    /// `--obs-addr ADDR`: observability listener address.
    pub obs_addr: Option<String>,
    /// `--telemetry FILE`: JSONL journal path.
    pub telemetry_path: Option<String>,
    /// `--chaos PLAN`: wire-fault plan spec (unparsed; see
    /// [`NetArgs::wire_chaos`]).
    pub chaos_plan: Option<String>,
    /// `--chaos-seed N`: base seed for the fault streams.
    pub chaos_seed: u64,
    /// `--snapshot FILE`: crash-recovery snapshot path.
    pub snapshot_path: Option<String>,
    /// `--snapshot-every S`: snapshot cadence.
    pub snapshot_every_s: f64,
    /// `--resume`: restore from the snapshot file on startup.
    pub resume: bool,
    /// `--grace S`: resync grace window after a resume.
    pub grace_s: f64,
    /// `--codec json|binary`: the codec this endpoint prefers. The
    /// coordinator treats it as the ceiling it will negotiate down
    /// from; an agent advertises only this codec (and JSON, which is
    /// always legal).
    pub codec: WireCodec,
    /// `--max-conns N`: accept limit (connections beyond it are
    /// refused at accept time).
    pub max_conns: usize,
}

impl Default for NetArgs {
    fn default() -> Self {
        NetArgs::new()
    }
}

impl NetArgs {
    /// No groups enabled; chain `with_*` calls for the ones the binary
    /// supports.
    pub fn new() -> Self {
        NetArgs {
            obs_enabled: false,
            telemetry_enabled: false,
            chaos_enabled: false,
            snapshots_enabled: false,
            codec_enabled: false,
            max_conns_enabled: false,
            obs_addr: None,
            telemetry_path: None,
            chaos_plan: None,
            chaos_seed: 0,
            snapshot_path: None,
            snapshot_every_s: 1.0,
            resume: false,
            grace_s: 2.0,
            codec: WireCodec::Binary,
            max_conns: usize::MAX,
        }
    }

    /// Enable `--obs-addr`.
    pub fn with_obs(mut self) -> Self {
        self.obs_enabled = true;
        self
    }

    /// Enable `--telemetry`.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry_enabled = true;
        self
    }

    /// Enable `--chaos` / `--chaos-seed`.
    pub fn with_chaos(mut self) -> Self {
        self.chaos_enabled = true;
        self
    }

    /// Enable `--snapshot` / `--snapshot-every` / `--resume` /
    /// `--grace`.
    pub fn with_snapshots(mut self) -> Self {
        self.snapshots_enabled = true;
        self
    }

    /// Enable `--codec`.
    pub fn with_codec(mut self) -> Self {
        self.codec_enabled = true;
        self
    }

    /// Enable `--max-conns`.
    pub fn with_max_conns(mut self) -> Self {
        self.max_conns_enabled = true;
        self
    }

    /// Offer one token from the binary's parse loop. Returns
    /// `Ok(Some(next_i))` when the token (and any value it takes) was
    /// consumed, `Ok(None)` when it belongs to the binary.
    pub fn accept(&mut self, args: &[String], i: usize) -> Result<Option<usize>, FvsError> {
        let flag = args[i].as_str();
        match flag {
            "--obs-addr" if self.obs_enabled => {
                self.obs_addr = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| FvsError::config("--obs-addr requires an address"))?,
                );
                Ok(Some(i + 2))
            }
            "--telemetry" if self.telemetry_enabled => {
                self.telemetry_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| FvsError::config("--telemetry requires a file path"))?,
                );
                Ok(Some(i + 2))
            }
            "--chaos" if self.chaos_enabled => {
                self.chaos_plan = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| FvsError::config("--chaos requires a wire-fault plan"))?,
                );
                Ok(Some(i + 2))
            }
            "--chaos-seed" if self.chaos_enabled => {
                self.chaos_seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| FvsError::config("--chaos-seed requires an integer"))?;
                Ok(Some(i + 2))
            }
            "--snapshot" if self.snapshots_enabled => {
                self.snapshot_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| FvsError::config("--snapshot requires a file path"))?,
                );
                Ok(Some(i + 2))
            }
            "--snapshot-every" if self.snapshots_enabled => {
                self.snapshot_every_s = parse_f64("--snapshot-every", args.get(i + 1))?;
                Ok(Some(i + 2))
            }
            "--resume" if self.snapshots_enabled => {
                self.resume = true;
                Ok(Some(i + 1))
            }
            "--grace" if self.snapshots_enabled => {
                self.grace_s = parse_f64("--grace", args.get(i + 1))?;
                Ok(Some(i + 2))
            }
            "--codec" if self.codec_enabled => {
                self.codec = match args.get(i + 1).map(String::as_str) {
                    Some("json") => WireCodec::Json,
                    Some("binary") => WireCodec::Binary,
                    _ => return Err(FvsError::config("--codec takes 'json' or 'binary'")),
                };
                Ok(Some(i + 2))
            }
            "--max-conns" if self.max_conns_enabled => {
                self.max_conns = parse_usize("--max-conns", args.get(i + 1), 1)?;
                Ok(Some(i + 2))
            }
            _ => Ok(None),
        }
    }

    /// Usage text for the enabled groups, in flag order, for the
    /// binary to splice into its own usage string.
    pub fn usage_fragment(&self) -> String {
        let mut parts = Vec::new();
        if self.telemetry_enabled {
            parts.push("[--telemetry FILE]");
        }
        if self.obs_enabled {
            parts.push("[--obs-addr ADDR]");
        }
        if self.snapshots_enabled {
            parts.push("[--snapshot FILE] [--snapshot-every S] [--resume] [--grace S]");
        }
        if self.chaos_enabled {
            parts.push("[--chaos PLAN] [--chaos-seed N]");
        }
        if self.codec_enabled {
            parts.push("[--codec json|binary]");
        }
        if self.max_conns_enabled {
            parts.push("[--max-conns N]");
        }
        parts.join(" ")
    }

    /// The parsed chaos configuration. `seed_mix` is xor-mixed into the
    /// base seed (agents mix their node id so each gets a distinct but
    /// reproducible fault stream; the coordinator passes 0).
    pub fn wire_chaos(&self, seed_mix: u64) -> Result<WireChaos, FvsError> {
        match &self.chaos_plan {
            None => Ok(WireChaos::none()),
            Some(spec) => {
                let plan = WireFaultPlan::parse(spec)
                    .map_err(|e| FvsError::config(format!("--chaos: {e}")))?;
                Ok(WireChaos::new(plan, self.chaos_seed ^ seed_mix))
            }
        }
    }

    /// The telemetry sink these flags describe: a JSONL file, an
    /// in-memory ring for `/journal` when an observability listener is
    /// mounted, both (fanout), or disabled.
    pub fn telemetry(&self) -> Result<Telemetry, FvsError> {
        Ok(match (&self.telemetry_path, &self.obs_addr) {
            (Some(path), Some(_)) => {
                Telemetry::fanout(vec![Telemetry::jsonl(path)?, Telemetry::memory(1024)])
            }
            (Some(path), None) => Telemetry::jsonl(path)?,
            (None, Some(_)) => Telemetry::memory(1024),
            (None, None) => Telemetry::disabled(),
        })
    }

    /// A span tracer when an observability listener will serve
    /// `/trace`, disabled otherwise.
    pub fn tracer(&self) -> Tracer {
        if self.obs_addr.is_some() {
            Tracer::ring(4096)
        } else {
            Tracer::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn accepts_only_enabled_groups() {
        let mut net = NetArgs::new().with_chaos().with_codec();
        let args = argv(&["--chaos", "wire=0.1", "--obs-addr", "x", "--codec", "json"]);
        assert_eq!(net.accept(&args, 0).unwrap(), Some(2));
        assert_eq!(net.accept(&args, 2).unwrap(), None, "obs group is off");
        assert_eq!(net.accept(&args, 4).unwrap(), Some(6));
        assert_eq!(net.chaos_plan.as_deref(), Some("wire=0.1"));
        assert_eq!(net.codec, WireCodec::Json);
    }

    #[test]
    fn full_surface_parses_and_derives() {
        let mut net = NetArgs::new()
            .with_obs()
            .with_telemetry()
            .with_chaos()
            .with_snapshots()
            .with_codec()
            .with_max_conns();
        let args = argv(&[
            "--obs-addr",
            "127.0.0.1:0",
            "--chaos",
            "wire=0.05",
            "--chaos-seed",
            "42",
            "--snapshot",
            "/tmp/snap",
            "--snapshot-every",
            "2.5",
            "--resume",
            "--grace",
            "3",
            "--codec",
            "binary",
            "--max-conns",
            "512",
        ]);
        let mut i = 0;
        while i < args.len() {
            i = net.accept(&args, i).unwrap().expect("all flags enabled");
        }
        assert_eq!(net.chaos_seed, 42);
        assert!(net.resume);
        assert_eq!(net.snapshot_every_s, 2.5);
        assert_eq!(net.max_conns, 512);
        assert_eq!(net.codec, WireCodec::Binary);
        let chaos = net.wire_chaos(7).unwrap();
        assert!(!chaos.is_quiet());
        assert_eq!(chaos.seed, 42 ^ 7);
        assert!(net.telemetry().unwrap().enabled());
        assert!(net.tracer().enabled());
        assert!(net.usage_fragment().contains("--max-conns"));
        assert!(net.usage_fragment().contains("--codec json|binary"));
    }

    #[test]
    fn flag_errors_are_config_errors() {
        let mut net = NetArgs::new().with_codec().with_max_conns();
        let bad_codec = argv(&["--codec", "yaml"]);
        assert!(matches!(
            net.accept(&bad_codec, 0),
            Err(FvsError::Config(_))
        ));
        let no_value = argv(&["--max-conns"]);
        assert!(matches!(net.accept(&no_value, 0), Err(FvsError::Config(_))));
    }
}
