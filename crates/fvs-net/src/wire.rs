//! The length-prefixed, versioned wire codec.
//!
//! Every frame on the socket is
//!
//! ```text
//! +--------+--------+------------------------+
//! | magic  | length |       payload          |
//! | "FVS1" | u32 BE | length bytes of JSON   |
//! +--------+--------+------------------------+
//! ```
//!
//! and every payload is one JSON object carrying a `schema_version`
//! field, a `kind` discriminant and a `body`:
//!
//! ```text
//! {"schema_version":1,"kind":"summary","body":{...NodeSummary...}}
//! ```
//!
//! The magic catches stream desynchronisation and non-fvsst peers; the
//! length prefix bounds each read (frames over [`MAX_FRAME_LEN`] are
//! rejected before any allocation); the version field lets a coordinator
//! refuse a newer agent explicitly (see [`WireMsg::HelloAck`]) instead
//! of mis-parsing it. The vendored serde stand-in has no typed
//! deserializer, so decoding walks the [`serde::Value`] tree by hand —
//! every missing field, wrong type, or out-of-range number surfaces as
//! an [`FvsError::Wire`], never a panic.

use crate::error::FvsError;
use fvs_cluster::{FrequencyCommand, NodeSummary};
use fvs_model::{CpiModel, FreqMhz};
use serde::{Serialize, Value};

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FVS1";

/// Wire schema version spoken by this build.
pub const SCHEMA_VERSION: u32 = 1;

/// Frame header length: 4 bytes magic + 4 bytes big-endian length.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a payload, enforced before buffering it. Generous for
/// summaries (a few dozen bytes per processor) while capping what a
/// corrupt length prefix can make the reader allocate.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Agent → coordinator, first frame on a connection: who am I, how
    /// many processors do I drive, and which schema do I speak.
    Hello {
        /// Node index within the cluster.
        node: usize,
        /// Processor count of the node.
        procs: usize,
        /// Schema version the agent speaks (the one header field read
        /// even when it differs from ours).
        version: u32,
        /// Highest coordinator epoch this agent has acknowledged (0 =
        /// none yet). A coordinator whose own epoch is *lower* is stale
        /// — a pre-crash survivor or a cold restart racing a resumed
        /// one — and must refuse the connection (split-brain guard).
        /// Decodes as 0 when absent, so older peers interoperate.
        last_epoch: u64,
    },
    /// Coordinator → agent reply to `Hello`: accepted or refused (with
    /// the version the server speaks, so the agent can log why).
    HelloAck {
        /// Whether the coordinator accepted the connection.
        accepted: bool,
        /// Schema version the coordinator speaks.
        version: u32,
        /// The coordinator's epoch. Agents record the highest epoch
        /// ever seen and fence any coordinator presenting a lower one.
        /// Decodes as 0 when absent, so older peers interoperate.
        epoch: u64,
    },
    /// Agent → coordinator: one measurement window.
    Summary(NodeSummary),
    /// Coordinator → agent: one frequency-ceiling command.
    Ceiling(FrequencyCommand),
    /// Agent → coordinator: orderly goodbye (distinguishes a drained
    /// node from a crashed one).
    Bye {
        /// Departing node.
        node: usize,
    },
    /// Coordinator → agent: keep-alive for rounds that commanded the
    /// node nothing. Makes dead-link detection time-bounded on the
    /// agent side (no frame for a link-timeout → reconnect) and carries
    /// the epoch so a stale coordinator is fenced mid-connection too.
    Heartbeat {
        /// The sending coordinator's epoch.
        epoch: u64,
    },
}

impl WireMsg {
    /// Stable lowercase kind discriminant (the payload `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "hello",
            WireMsg::HelloAck { .. } => "hello_ack",
            WireMsg::Summary(_) => "summary",
            WireMsg::Ceiling(_) => "ceiling",
            WireMsg::Bye { .. } => "bye",
            WireMsg::Heartbeat { .. } => "heartbeat",
        }
    }
}

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn to_payload(msg: &WireMsg) -> Value {
    let (version, body) = match msg {
        WireMsg::Hello {
            node,
            procs,
            version,
            last_epoch,
        } => (
            *version,
            obj(vec![
                ("node", Value::UInt(*node as u64)),
                ("procs", Value::UInt(*procs as u64)),
                ("last_epoch", Value::UInt(*last_epoch)),
            ]),
        ),
        WireMsg::HelloAck {
            accepted,
            version,
            epoch,
        } => (
            *version,
            obj(vec![
                ("accepted", Value::Bool(*accepted)),
                ("epoch", Value::UInt(*epoch)),
            ]),
        ),
        WireMsg::Summary(s) => (SCHEMA_VERSION, s.to_json()),
        WireMsg::Ceiling(c) => (SCHEMA_VERSION, c.to_json()),
        WireMsg::Bye { node } => (
            SCHEMA_VERSION,
            obj(vec![("node", Value::UInt(*node as u64))]),
        ),
        WireMsg::Heartbeat { epoch } => (SCHEMA_VERSION, obj(vec![("epoch", Value::UInt(*epoch))])),
    };
    obj(vec![
        ("schema_version", Value::UInt(u64::from(version))),
        ("kind", Value::String(msg.kind().to_string())),
        ("body", body),
    ])
}

/// Encode one message as a complete frame (header + JSON payload).
pub fn encode(msg: &WireMsg) -> Result<Vec<u8>, FvsError> {
    let payload = serde_json::to_string(&to_payload(msg))?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(FvsError::wire(format!(
            "payload of {} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
            bytes.len()
        )));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + bytes.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

pub(crate) fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, FvsError> {
    match v.get(key) {
        Some(x) if !x.is_null() => Ok(x),
        _ => Err(FvsError::wire(format!("missing field `{key}`"))),
    }
}

pub(crate) fn usize_field(v: &Value, key: &str) -> Result<usize, FvsError> {
    field(v, key)?
        .as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not an index")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, FvsError> {
    field(v, key)?
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a u32")))
}

pub(crate) fn bool_field(v: &Value, key: &str) -> Result<bool, FvsError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a bool")))
}

/// A float field; JSON `null` decodes as NaN (the encoder maps
/// non-finite floats to `null`, and the coordinator's ingest validation
/// is what rejects them — the codec round-trips faithfully).
pub(crate) fn f64_field(v: &Value, key: &str) -> Result<f64, FvsError> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a number"))),
        None => Err(FvsError::wire(format!("missing field `{key}`"))),
    }
}

/// A u64 field that defaults when absent or null — schema-version-1
/// compatible field additions (epochs) decode leniently so frames from
/// peers predating the field still parse.
pub(crate) fn u64_field_or(v: &Value, key: &str, default: u64) -> Result<u64, FvsError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a u64"))),
    }
}

pub(crate) fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a Vec<Value>, FvsError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not an array")))
}

fn decode_freq(v: &Value) -> Result<FreqMhz, FvsError> {
    v.as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .map(FreqMhz)
        .ok_or_else(|| FvsError::wire("frequency is not a u32"))
}

fn decode_model(v: &Value) -> Result<Option<CpiModel>, FvsError> {
    if v.is_null() {
        return Ok(None);
    }
    if !v.is_object() {
        return Err(FvsError::wire("model is neither null nor an object"));
    }
    Ok(Some(CpiModel {
        cpi0: f64_field(v, "cpi0")?,
        mem_time_per_instr: f64_field(v, "mem_time_per_instr")?,
    }))
}

pub(crate) fn decode_summary(body: &Value) -> Result<NodeSummary, FvsError> {
    let models = array_field(body, "models")?
        .iter()
        .map(decode_model)
        .collect::<Result<Vec<_>, _>>()?;
    let idle = array_field(body, "idle")?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| FvsError::wire("idle entry is not a bool"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let current = array_field(body, "current")?
        .iter()
        .map(decode_freq)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(NodeSummary {
        node: usize_field(body, "node")?,
        sent_at_s: f64_field(body, "sent_at_s")?,
        models,
        idle,
        current,
        power_w: f64_field(body, "power_w")?,
    })
}

fn decode_command(body: &Value) -> Result<FrequencyCommand, FvsError> {
    Ok(FrequencyCommand {
        node: usize_field(body, "node")?,
        freqs: array_field(body, "freqs")?
            .iter()
            .map(decode_freq)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Decode one frame *payload* (the JSON between headers).
///
/// A `hello` decodes under any schema version — the coordinator must be
/// able to read a newer agent's introduction to refuse it politely —
/// but every other kind requires an exact [`SCHEMA_VERSION`] match.
pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, FvsError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| FvsError::wire("payload is not valid UTF-8"))?;
    let v = serde_json::from_str(text)?;
    let version = u32_field(&v, "schema_version")?;
    let kind = field(&v, "kind")?
        .as_str()
        .ok_or_else(|| FvsError::wire("field `kind` is not a string"))?
        .to_string();
    let body = field(&v, "body")?;
    if kind != "hello" && version != SCHEMA_VERSION {
        return Err(FvsError::wire(format!(
            "schema_version {version} not supported (this build speaks {SCHEMA_VERSION})"
        )));
    }
    match kind.as_str() {
        "hello" => Ok(WireMsg::Hello {
            node: usize_field(body, "node")?,
            procs: usize_field(body, "procs")?,
            version,
            last_epoch: u64_field_or(body, "last_epoch", 0)?,
        }),
        "hello_ack" => Ok(WireMsg::HelloAck {
            accepted: bool_field(body, "accepted")?,
            version,
            epoch: u64_field_or(body, "epoch", 0)?,
        }),
        "summary" => Ok(WireMsg::Summary(decode_summary(body)?)),
        "ceiling" => Ok(WireMsg::Ceiling(decode_command(body)?)),
        "bye" => Ok(WireMsg::Bye {
            node: usize_field(body, "node")?,
        }),
        "heartbeat" => Ok(WireMsg::Heartbeat {
            epoch: u64_field_or(body, "epoch", 0)?,
        }),
        other => Err(FvsError::wire(format!("unknown frame kind `{other}`"))),
    }
}

/// How a frame failed to parse — telemetry needs the class, not just
/// the error string, so chaos runs can tell an injected bit-flip from
/// an organic one and count oversized length prefixes separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The 4-byte magic was wrong: stream desynchronised or a foreign
    /// peer.
    BadMagic,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize,
    /// The framing was sound but the payload did not decode.
    Payload,
}

/// Incremental frame parser over a byte stream.
///
/// Feed it whatever the socket produced; it buffers partial frames and
/// yields complete messages. Any framing violation (bad magic,
/// oversized length, malformed payload) is returned as an error and
/// poisons nothing — but a desynchronised TCP stream cannot be trusted
/// past the first bad byte, so callers should drop the connection and
/// let the agent's reconnect ladder recover. [`last_fault`] classifies
/// the most recent error so the caller can emit a `wire_fault`
/// telemetry event *before* closing instead of dying silently.
///
/// [`last_fault`]: FrameReader::last_fault
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    last_fault: Option<FrameFault>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Classification of the most recent [`next_frame`] error, cleared
    /// by any successful parse.
    ///
    /// [`next_frame`]: FrameReader::next_frame
    pub fn last_fault(&self) -> Option<FrameFault> {
        self.last_fault
    }

    /// Try to extract the next complete message. `Ok(None)` means more
    /// bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<WireMsg>, FvsError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[..4] != MAGIC {
            self.last_fault = Some(FrameFault::BadMagic);
            return Err(FvsError::wire(format!(
                "bad magic {:02x?} (stream desynchronised or not an fvsst peer)",
                &self.buf[..4]
            )));
        }
        let len = u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        if len > MAX_FRAME_LEN {
            self.last_fault = Some(FrameFault::Oversize);
            return Err(FvsError::wire(format!(
                "frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
            )));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let msg = decode_payload(&self.buf[HEADER_LEN..HEADER_LEN + len]);
        // Consume the frame whether or not the payload decoded: the
        // framing itself was sound, so the next frame may be fine.
        self.buf.drain(..HEADER_LEN + len);
        self.last_fault = match &msg {
            Ok(_) => None,
            Err(_) => Some(FrameFault::Payload),
        };
        msg.map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> NodeSummary {
        NodeSummary {
            node: 3,
            sent_at_s: 1.25,
            models: vec![
                Some(CpiModel::from_components(1.5, 2.0e-9)),
                None,
                Some(CpiModel::from_components(0.75, 0.0)),
            ],
            idle: vec![false, true, false],
            current: vec![FreqMhz(1000), FreqMhz(250), FreqMhz(850)],
            power_w: 312.5,
        }
    }

    #[test]
    fn summary_round_trips_exactly() {
        let msg = WireMsg::Summary(sample_summary());
        let frame = encode(&msg).unwrap();
        assert_eq!(&frame[..4], &MAGIC);
        let mut r = FrameReader::new();
        r.feed(&frame);
        let back = r.next_frame().unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn every_kind_round_trips() {
        let msgs = vec![
            WireMsg::Hello {
                node: 2,
                procs: 4,
                version: SCHEMA_VERSION,
                last_epoch: 3,
            },
            WireMsg::HelloAck {
                accepted: true,
                version: SCHEMA_VERSION,
                epoch: 4,
            },
            WireMsg::Summary(sample_summary()),
            WireMsg::Ceiling(FrequencyCommand {
                node: 1,
                freqs: vec![FreqMhz(600), FreqMhz(1000)],
            }),
            WireMsg::Bye { node: 7 },
            WireMsg::Heartbeat { epoch: 9 },
        ];
        let mut r = FrameReader::new();
        for m in &msgs {
            r.feed(&encode(m).unwrap());
        }
        for m in &msgs {
            assert_eq!(r.next_frame().unwrap().as_ref(), Some(m));
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut r = FrameReader::new();
        let (head, tail) = frame.split_at(frame.len() - 1);
        for chunk in head.chunks(3) {
            r.feed(chunk);
            assert_eq!(r.next_frame().unwrap(), None);
        }
        r.feed(tail);
        assert_eq!(r.next_frame().unwrap(), Some(WireMsg::Bye { node: 1 }));
    }

    #[test]
    fn bad_magic_is_an_error_not_a_panic() {
        let mut frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        frame[0] = b'X';
        let mut r = FrameReader::new();
        r.feed(&frame);
        assert!(matches!(r.next_frame(), Err(FvsError::Wire(_))));
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut r = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC);
        junk.extend_from_slice(&u32::MAX.to_be_bytes());
        r.feed(&junk);
        assert!(matches!(r.next_frame(), Err(FvsError::Wire(_))));
    }

    #[test]
    fn corrupt_payload_consumes_the_frame_and_reports() {
        let good = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = b'!'; // break the JSON
        let mut r = FrameReader::new();
        r.feed(&bad);
        r.feed(&good);
        assert!(r.next_frame().is_err());
        // The stream is not poisoned: the following frame still decodes.
        assert_eq!(r.next_frame().unwrap(), Some(WireMsg::Bye { node: 1 }));
    }

    #[test]
    fn non_hello_frames_require_exact_version() {
        let frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let bumped = text.replace("\"schema_version\":1", "\"schema_version\":2");
        let err = decode_payload(bumped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("schema_version 2"), "{err}");
    }

    #[test]
    fn hello_decodes_under_foreign_versions() {
        let frame = encode(&WireMsg::Hello {
            node: 0,
            procs: 4,
            version: SCHEMA_VERSION,
            last_epoch: 0,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let bumped = text.replace("\"schema_version\":1", "\"schema_version\":9");
        match decode_payload(bumped.as_bytes()).unwrap() {
            WireMsg::Hello { version, .. } => assert_eq!(version, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The epoch fields are version-1-compatible additions: frames from
    /// peers that predate them (no `last_epoch` / `epoch` key) still
    /// decode, defaulting to epoch 0.
    #[test]
    fn missing_epoch_fields_decode_as_zero() {
        let frame = encode(&WireMsg::Hello {
            node: 5,
            procs: 2,
            version: SCHEMA_VERSION,
            last_epoch: 7,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(",\"last_epoch\":7", "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::Hello {
                node, last_epoch, ..
            } => {
                assert_eq!(node, 5);
                assert_eq!(last_epoch, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let frame = encode(&WireMsg::HelloAck {
            accepted: true,
            version: SCHEMA_VERSION,
            epoch: 3,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(",\"epoch\":3", "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::HelloAck {
                accepted, epoch, ..
            } => {
                assert!(accepted);
                assert_eq!(epoch, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Each error path stamps its classification so the reader's owner
    /// can emit the right `wire_fault` event before dropping the link.
    #[test]
    fn frame_faults_are_classified() {
        // Oversized length prefix.
        let mut r = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC);
        junk.extend_from_slice(&u32::MAX.to_be_bytes());
        r.feed(&junk);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Oversize));

        // Bad magic.
        let mut r = FrameReader::new();
        let mut frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        frame[0] = b'X';
        r.feed(&frame);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::BadMagic));

        // Corrupt payload, then a clean frame clears the classification.
        let mut r = FrameReader::new();
        let good = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = b'!';
        r.feed(&bad);
        r.feed(&good);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Payload));
        assert!(r.next_frame().unwrap().is_some());
        assert_eq!(r.last_fault(), None);
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan() {
        let mut s = sample_summary();
        s.power_w = f64::INFINITY;
        s.sent_at_s = f64::NAN;
        let frame = encode(&WireMsg::Summary(s)).unwrap();
        let mut r = FrameReader::new();
        r.feed(&frame);
        match r.next_frame().unwrap().unwrap() {
            WireMsg::Summary(back) => {
                // The JSON encoding maps non-finite to null; decode maps
                // null back to NaN, which ingest validation rejects.
                assert!(back.power_w.is_nan());
                assert!(back.sent_at_s.is_nan());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
