//! The length-prefixed, versioned wire codec — two negotiated payload
//! encodings behind one frame shape.
//!
//! Every frame on the socket is
//!
//! ```text
//! +--------+--------+------------------------+
//! | magic  | length |       payload          |
//! | 4 bytes| u32 BE | length bytes           |
//! +--------+--------+------------------------+
//! ```
//!
//! The magic selects the payload encoding *per frame*:
//!
//! * `"FVS1"` — one JSON object carrying a `schema_version` field, a
//!   `kind` discriminant and a `body`:
//!   `{"schema_version":1,"kind":"summary","body":{...NodeSummary...}}`
//! * `"FVS2"` — a fixed-layout big-endian binary payload: one kind byte
//!   followed by the fields in declaration order, floats as raw IEEE-754
//!   bits (so NaN payloads survive bit-exactly). See [`WireCodec`] and
//!   the per-kind layouts in this module's binary section.
//!
//! Handshake frames (`hello` / `hello_ack`) are **always** JSON so that
//! peers predating the binary codec can still read the introduction;
//! the hello carries a codec bitmask and the ack picks one, after which
//! each side writes whatever it negotiated. Readers accept both magics
//! unconditionally — negotiation controls only what a peer *writes*.
//!
//! The magic catches stream desynchronisation and non-fvsst peers; the
//! length prefix bounds each read (frames over [`MAX_FRAME_LEN`] are
//! rejected before any allocation); the version field lets a coordinator
//! refuse a newer agent explicitly (see [`WireMsg::HelloAck`]) instead
//! of mis-parsing it. The vendored serde stand-in has no typed
//! deserializer, so decoding walks the [`serde::Value`] tree by hand —
//! every missing field, wrong type, or out-of-range number surfaces as
//! an [`FvsError::Wire`], never a panic. The binary decoder is a
//! bounds-checked cursor with the same guarantee.

use crate::error::FvsError;
use fvs_cluster::{FrequencyCommand, NodeSummary};
use fvs_model::{CpiModel, FreqMhz};
use serde::{Serialize, Value};

/// Leading bytes of every JSON (`FVS1`) frame.
pub const MAGIC: [u8; 4] = *b"FVS1";

/// Leading bytes of every binary (`FVS2`) frame.
pub const MAGIC_V2: [u8; 4] = *b"FVS2";

/// Wire schema version spoken by this build.
pub const SCHEMA_VERSION: u32 = 1;

/// The payload encoding a transport writes with.
///
/// Advertised in the hello as a bitmask ([`WireCodec::bit`]), chosen by
/// the coordinator in the hello ack ([`WireCodec::id`]). Readers do not
/// care: [`FrameReader`] dispatches on the frame magic, so both
/// encodings are always understood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// `FVS1`: self-describing JSON. The fallback every build speaks.
    #[default]
    Json,
    /// `FVS2`: fixed-layout big-endian binary. Roughly an order of
    /// magnitude cheaper to encode/decode for summaries.
    Binary,
}

impl WireCodec {
    /// Stable one-byte identifier used in the hello ack (1 = JSON,
    /// 2 = binary; 0 is reserved for "unknown" in telemetry).
    pub fn id(self) -> u8 {
        match self {
            WireCodec::Json => 1,
            WireCodec::Binary => 2,
        }
    }

    /// The codec's bit in the hello `codecs` bitmask.
    pub fn bit(self) -> u8 {
        match self {
            WireCodec::Json => CODEC_JSON_BIT,
            WireCodec::Binary => CODEC_BINARY_BIT,
        }
    }

    /// Decode a hello-ack identifier; unknown ids fall back to JSON,
    /// which every peer speaks.
    pub fn from_id(id: u8) -> WireCodec {
        match id {
            2 => WireCodec::Binary,
            _ => WireCodec::Json,
        }
    }

    /// Lowercase name for logs and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }
}

/// Hello bitmask bit advertising `FVS1` JSON support.
pub const CODEC_JSON_BIT: u8 = 0b01;
/// Hello bitmask bit advertising `FVS2` binary support.
pub const CODEC_BINARY_BIT: u8 = 0b10;
/// Bitmask advertising every codec this build speaks.
pub const CODEC_ALL: u8 = CODEC_JSON_BIT | CODEC_BINARY_BIT;

/// Frame header length: 4 bytes magic + 4 bytes big-endian length.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a payload, enforced before buffering it. Generous for
/// summaries (a few dozen bytes per processor) while capping what a
/// corrupt length prefix can make the reader allocate.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Agent → coordinator, first frame on a connection: who am I, how
    /// many processors do I drive, and which schema do I speak.
    Hello {
        /// Node index within the cluster.
        node: usize,
        /// Processor count of the node.
        procs: usize,
        /// Schema version the agent speaks (the one header field read
        /// even when it differs from ours).
        version: u32,
        /// Highest coordinator epoch this agent has acknowledged (0 =
        /// none yet). A coordinator whose own epoch is *lower* is stale
        /// — a pre-crash survivor or a cold restart racing a resumed
        /// one — and must refuse the connection (split-brain guard).
        /// Decodes as 0 when absent, so older peers interoperate.
        last_epoch: u64,
        /// Bitmask of payload codecs the agent can read and write
        /// ([`CODEC_JSON_BIT`] | [`CODEC_BINARY_BIT`]). Decodes as
        /// JSON-only when absent, so agents predating the binary codec
        /// negotiate down automatically.
        codecs: u8,
    },
    /// Coordinator → agent reply to `Hello`: accepted or refused (with
    /// the version the server speaks, so the agent can log why).
    HelloAck {
        /// Whether the coordinator accepted the connection.
        accepted: bool,
        /// Schema version the coordinator speaks.
        version: u32,
        /// The coordinator's epoch. Agents record the highest epoch
        /// ever seen and fence any coordinator presenting a lower one.
        /// Decodes as 0 when absent, so older peers interoperate.
        epoch: u64,
        /// [`WireCodec::id`] of the codec the coordinator chose for
        /// this connection. Decodes as JSON when absent, so acks from
        /// coordinators predating the binary codec keep the connection
        /// on the fallback encoding.
        codec: u8,
    },
    /// Agent → coordinator: one measurement window.
    Summary(NodeSummary),
    /// Coordinator → agent: one frequency-ceiling command.
    Ceiling(FrequencyCommand),
    /// Agent → coordinator: orderly goodbye (distinguishes a drained
    /// node from a crashed one).
    Bye {
        /// Departing node.
        node: usize,
    },
    /// Coordinator → agent: keep-alive for rounds that commanded the
    /// node nothing. Makes dead-link detection time-bounded on the
    /// agent side (no frame for a link-timeout → reconnect) and carries
    /// the epoch so a stale coordinator is fenced mid-connection too.
    Heartbeat {
        /// The sending coordinator's epoch.
        epoch: u64,
    },
}

impl WireMsg {
    /// Stable lowercase kind discriminant (the payload `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Hello { .. } => "hello",
            WireMsg::HelloAck { .. } => "hello_ack",
            WireMsg::Summary(_) => "summary",
            WireMsg::Ceiling(_) => "ceiling",
            WireMsg::Bye { .. } => "bye",
            WireMsg::Heartbeat { .. } => "heartbeat",
        }
    }
}

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn to_payload(msg: &WireMsg) -> Value {
    let (version, body) = match msg {
        WireMsg::Hello {
            node,
            procs,
            version,
            last_epoch,
            codecs,
        } => (
            *version,
            obj(vec![
                ("node", Value::UInt(*node as u64)),
                ("procs", Value::UInt(*procs as u64)),
                ("last_epoch", Value::UInt(*last_epoch)),
                ("codecs", Value::UInt(u64::from(*codecs))),
            ]),
        ),
        WireMsg::HelloAck {
            accepted,
            version,
            epoch,
            codec,
        } => (
            *version,
            obj(vec![
                ("accepted", Value::Bool(*accepted)),
                ("epoch", Value::UInt(*epoch)),
                ("codec", Value::UInt(u64::from(*codec))),
            ]),
        ),
        WireMsg::Summary(s) => (SCHEMA_VERSION, s.to_json()),
        WireMsg::Ceiling(c) => (SCHEMA_VERSION, c.to_json()),
        WireMsg::Bye { node } => (
            SCHEMA_VERSION,
            obj(vec![("node", Value::UInt(*node as u64))]),
        ),
        WireMsg::Heartbeat { epoch } => (SCHEMA_VERSION, obj(vec![("epoch", Value::UInt(*epoch))])),
    };
    obj(vec![
        ("schema_version", Value::UInt(u64::from(version))),
        ("kind", Value::String(msg.kind().to_string())),
        ("body", body),
    ])
}

/// Encode one message as a complete frame (header + JSON payload).
pub fn encode(msg: &WireMsg) -> Result<Vec<u8>, FvsError> {
    let payload = serde_json::to_string(&to_payload(msg))?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(FvsError::wire(format!(
            "payload of {} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
            bytes.len()
        )));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + bytes.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Encode one message under the negotiated codec.
///
/// Handshake frames (`hello` / `hello_ack`) always go out as JSON —
/// they are exchanged *before* negotiation completes, and a peer
/// predating the binary codec must be able to read them.
pub fn encode_with(msg: &WireMsg, codec: WireCodec) -> Result<Vec<u8>, FvsError> {
    match (codec, msg) {
        (WireCodec::Json, _) | (_, WireMsg::Hello { .. }) | (_, WireMsg::HelloAck { .. }) => {
            encode(msg)
        }
        (WireCodec::Binary, _) => encode_binary(msg),
    }
}

// --- FVS2 binary payloads -------------------------------------------------
//
// One kind byte, then fixed-layout fields, everything big-endian:
//
//   kind 1  hello      version u32 · node u64 · procs u64 · last_epoch u64
//                      · codecs u8
//   kind 2  hello_ack  version u32 · accepted u8 · epoch u64 · codec u8
//   kind 3  summary    node u64 · sent_at_s f64 · power_w f64 · nproc u16
//                      · nproc × { flags u8 · [cpi0 f64 · mem f64] ·
//                                  current u32 }
//                      flags bit0 = model present, bit1 = idle
//   kind 4  ceiling    node u64 · n u16 · n × freq u32
//   kind 5  bye        node u64
//   kind 6  heartbeat  epoch u64
//
// Floats travel as raw IEEE-754 bits (`f64::to_bits`), so NaN and
// infinity — which the JSON codec can only collapse to `null`/NaN —
// round-trip bit-exactly. Ingest-side validation stays where it was.

const BK_HELLO: u8 = 1;
const BK_HELLO_ACK: u8 = 2;
const BK_SUMMARY: u8 = 3;
const BK_CEILING: u8 = 4;
const BK_BYE: u8 = 5;
const BK_HEARTBEAT: u8 = 6;

const FLAG_MODEL: u8 = 0b01;
const FLAG_IDLE: u8 = 0b10;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Encode one message as a complete `FVS2` frame.
pub fn encode_binary(msg: &WireMsg) -> Result<Vec<u8>, FvsError> {
    let mut p = Vec::with_capacity(64);
    match msg {
        WireMsg::Hello {
            node,
            procs,
            version,
            last_epoch,
            codecs,
        } => {
            p.push(BK_HELLO);
            put_u32(&mut p, *version);
            put_u64(&mut p, *node as u64);
            put_u64(&mut p, *procs as u64);
            put_u64(&mut p, *last_epoch);
            p.push(*codecs);
        }
        WireMsg::HelloAck {
            accepted,
            version,
            epoch,
            codec,
        } => {
            p.push(BK_HELLO_ACK);
            put_u32(&mut p, *version);
            p.push(u8::from(*accepted));
            put_u64(&mut p, *epoch);
            p.push(*codec);
        }
        WireMsg::Summary(s) => {
            let nproc = s.models.len();
            if s.idle.len() != nproc || s.current.len() != nproc {
                return Err(FvsError::wire(format!(
                    "summary processor arrays disagree: {} models, {} idle, {} current",
                    nproc,
                    s.idle.len(),
                    s.current.len()
                )));
            }
            let nproc = u16::try_from(nproc)
                .map_err(|_| FvsError::wire("more than 65535 processors in one summary"))?;
            p.push(BK_SUMMARY);
            put_u64(&mut p, s.node as u64);
            put_f64(&mut p, s.sent_at_s);
            put_f64(&mut p, s.power_w);
            put_u16(&mut p, nproc);
            for i in 0..usize::from(nproc) {
                let mut flags = 0u8;
                if s.models[i].is_some() {
                    flags |= FLAG_MODEL;
                }
                if s.idle[i] {
                    flags |= FLAG_IDLE;
                }
                p.push(flags);
                if let Some(m) = &s.models[i] {
                    put_f64(&mut p, m.cpi0);
                    put_f64(&mut p, m.mem_time_per_instr);
                }
                put_u32(&mut p, s.current[i].0);
            }
        }
        WireMsg::Ceiling(c) => {
            let n = u16::try_from(c.freqs.len())
                .map_err(|_| FvsError::wire("more than 65535 frequencies in one command"))?;
            p.push(BK_CEILING);
            put_u64(&mut p, c.node as u64);
            put_u16(&mut p, n);
            for f in &c.freqs {
                put_u32(&mut p, f.0);
            }
        }
        WireMsg::Bye { node } => {
            p.push(BK_BYE);
            put_u64(&mut p, *node as u64);
        }
        WireMsg::Heartbeat { epoch } => {
            p.push(BK_HEARTBEAT);
            put_u64(&mut p, *epoch);
        }
    }
    if p.len() > MAX_FRAME_LEN {
        return Err(FvsError::wire(format!(
            "payload of {} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
            p.len()
        )));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + p.len());
    frame.extend_from_slice(&MAGIC_V2);
    frame.extend_from_slice(&(p.len() as u32).to_be_bytes());
    frame.extend_from_slice(&p);
    Ok(frame)
}

/// Bounds-checked reader over a binary payload: every take is length-
/// guarded, so truncated or bit-flipped frames surface as `Err`, never
/// a slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FvsError> {
        if self.remaining() < n {
            return Err(FvsError::wire(format!(
                "binary payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FvsError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FvsError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FvsError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FvsError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, FvsError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn index(&mut self) -> Result<usize, FvsError> {
        usize::try_from(self.u64()?).map_err(|_| FvsError::wire("index exceeds usize"))
    }

    fn finish(self) -> Result<(), FvsError> {
        if self.remaining() != 0 {
            return Err(FvsError::wire(format!(
                "{} trailing bytes after binary payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Decode one `FVS2` binary frame *payload*.
pub fn decode_payload_binary(payload: &[u8]) -> Result<WireMsg, FvsError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8()?;
    let msg = match kind {
        BK_HELLO => WireMsg::Hello {
            version: c.u32()?,
            node: c.index()?,
            procs: c.index()?,
            last_epoch: c.u64()?,
            codecs: c.u8()?,
        },
        BK_HELLO_ACK => WireMsg::HelloAck {
            version: c.u32()?,
            accepted: c.u8()? != 0,
            epoch: c.u64()?,
            codec: c.u8()?,
        },
        BK_SUMMARY => {
            let node = c.index()?;
            let sent_at_s = c.f64()?;
            let power_w = c.f64()?;
            let nproc = usize::from(c.u16()?);
            // Each processor is at least 5 bytes (flags + current), so a
            // fuzzed count larger than the payload is refused before any
            // allocation sized by it.
            if c.remaining() < nproc * 5 {
                return Err(FvsError::wire(format!(
                    "summary claims {nproc} processors but only {} bytes remain",
                    c.remaining()
                )));
            }
            let mut models = Vec::with_capacity(nproc);
            let mut idle = Vec::with_capacity(nproc);
            let mut current = Vec::with_capacity(nproc);
            for _ in 0..nproc {
                let flags = c.u8()?;
                models.push(if flags & FLAG_MODEL != 0 {
                    Some(CpiModel {
                        cpi0: c.f64()?,
                        mem_time_per_instr: c.f64()?,
                    })
                } else {
                    None
                });
                idle.push(flags & FLAG_IDLE != 0);
                current.push(FreqMhz(c.u32()?));
            }
            WireMsg::Summary(NodeSummary {
                node,
                sent_at_s,
                models,
                idle,
                current,
                power_w,
            })
        }
        BK_CEILING => {
            let node = c.index()?;
            let n = usize::from(c.u16()?);
            if c.remaining() < n * 4 {
                return Err(FvsError::wire(format!(
                    "ceiling claims {n} frequencies but only {} bytes remain",
                    c.remaining()
                )));
            }
            let mut freqs = Vec::with_capacity(n);
            for _ in 0..n {
                freqs.push(FreqMhz(c.u32()?));
            }
            WireMsg::Ceiling(FrequencyCommand { node, freqs })
        }
        BK_BYE => WireMsg::Bye { node: c.index()? },
        BK_HEARTBEAT => WireMsg::Heartbeat { epoch: c.u64()? },
        other => return Err(FvsError::wire(format!("unknown binary kind byte {other}"))),
    };
    c.finish()?;
    Ok(msg)
}

pub(crate) fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, FvsError> {
    match v.get(key) {
        Some(x) if !x.is_null() => Ok(x),
        _ => Err(FvsError::wire(format!("missing field `{key}`"))),
    }
}

pub(crate) fn usize_field(v: &Value, key: &str) -> Result<usize, FvsError> {
    field(v, key)?
        .as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not an index")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, FvsError> {
    field(v, key)?
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a u32")))
}

pub(crate) fn bool_field(v: &Value, key: &str) -> Result<bool, FvsError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a bool")))
}

/// A float field; JSON `null` decodes as NaN (the encoder maps
/// non-finite floats to `null`, and the coordinator's ingest validation
/// is what rejects them — the codec round-trips faithfully).
pub(crate) fn f64_field(v: &Value, key: &str) -> Result<f64, FvsError> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::NAN),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a number"))),
        None => Err(FvsError::wire(format!("missing field `{key}`"))),
    }
}

/// A u64 field that defaults when absent or null — schema-version-1
/// compatible field additions (epochs) decode leniently so frames from
/// peers predating the field still parse.
pub(crate) fn u64_field_or(v: &Value, key: &str, default: u64) -> Result<u64, FvsError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| FvsError::wire(format!("field `{key}` is not a u64"))),
    }
}

pub(crate) fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a Vec<Value>, FvsError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| FvsError::wire(format!("field `{key}` is not an array")))
}

fn decode_freq(v: &Value) -> Result<FreqMhz, FvsError> {
    v.as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .map(FreqMhz)
        .ok_or_else(|| FvsError::wire("frequency is not a u32"))
}

fn decode_model(v: &Value) -> Result<Option<CpiModel>, FvsError> {
    if v.is_null() {
        return Ok(None);
    }
    if !v.is_object() {
        return Err(FvsError::wire("model is neither null nor an object"));
    }
    Ok(Some(CpiModel {
        cpi0: f64_field(v, "cpi0")?,
        mem_time_per_instr: f64_field(v, "mem_time_per_instr")?,
    }))
}

pub(crate) fn decode_summary(body: &Value) -> Result<NodeSummary, FvsError> {
    let models = array_field(body, "models")?
        .iter()
        .map(decode_model)
        .collect::<Result<Vec<_>, _>>()?;
    let idle = array_field(body, "idle")?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| FvsError::wire("idle entry is not a bool"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let current = array_field(body, "current")?
        .iter()
        .map(decode_freq)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(NodeSummary {
        node: usize_field(body, "node")?,
        sent_at_s: f64_field(body, "sent_at_s")?,
        models,
        idle,
        current,
        power_w: f64_field(body, "power_w")?,
    })
}

fn decode_command(body: &Value) -> Result<FrequencyCommand, FvsError> {
    Ok(FrequencyCommand {
        node: usize_field(body, "node")?,
        freqs: array_field(body, "freqs")?
            .iter()
            .map(decode_freq)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Decode one frame *payload* (the JSON between headers).
///
/// A `hello` decodes under any schema version — the coordinator must be
/// able to read a newer agent's introduction to refuse it politely —
/// but every other kind requires an exact [`SCHEMA_VERSION`] match.
pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, FvsError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| FvsError::wire("payload is not valid UTF-8"))?;
    let v = serde_json::from_str(text)?;
    let version = u32_field(&v, "schema_version")?;
    let kind = field(&v, "kind")?
        .as_str()
        .ok_or_else(|| FvsError::wire("field `kind` is not a string"))?
        .to_string();
    let body = field(&v, "body")?;
    if kind != "hello" && version != SCHEMA_VERSION {
        return Err(FvsError::wire(format!(
            "schema_version {version} not supported (this build speaks {SCHEMA_VERSION})"
        )));
    }
    match kind.as_str() {
        "hello" => Ok(WireMsg::Hello {
            node: usize_field(body, "node")?,
            procs: usize_field(body, "procs")?,
            version,
            last_epoch: u64_field_or(body, "last_epoch", 0)?,
            // Agents predating FVS2 send no mask: they speak JSON only.
            codecs: u64_field_or(body, "codecs", u64::from(CODEC_JSON_BIT))? as u8,
        }),
        "hello_ack" => Ok(WireMsg::HelloAck {
            accepted: bool_field(body, "accepted")?,
            version,
            epoch: u64_field_or(body, "epoch", 0)?,
            codec: u64_field_or(body, "codec", u64::from(WireCodec::Json.id()))? as u8,
        }),
        "summary" => Ok(WireMsg::Summary(decode_summary(body)?)),
        "ceiling" => Ok(WireMsg::Ceiling(decode_command(body)?)),
        "bye" => Ok(WireMsg::Bye {
            node: usize_field(body, "node")?,
        }),
        "heartbeat" => Ok(WireMsg::Heartbeat {
            epoch: u64_field_or(body, "epoch", 0)?,
        }),
        other => Err(FvsError::wire(format!("unknown frame kind `{other}`"))),
    }
}

/// How a frame failed to parse — telemetry needs the class, not just
/// the error string, so chaos runs can tell an injected bit-flip from
/// an organic one and count oversized length prefixes separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The 4-byte magic was wrong: stream desynchronised or a foreign
    /// peer.
    BadMagic,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize,
    /// The framing was sound but the payload did not decode.
    Payload,
}

/// Incremental frame parser over a byte stream.
///
/// Feed it whatever the socket produced; it buffers partial frames and
/// yields complete messages. Any framing violation (bad magic,
/// oversized length, malformed payload) is returned as an error and
/// poisons nothing — but a desynchronised TCP stream cannot be trusted
/// past the first bad byte, so callers should drop the connection and
/// let the agent's reconnect ladder recover. [`last_fault`] classifies
/// the most recent error so the caller can emit a `wire_fault`
/// telemetry event *before* closing instead of dying silently.
///
/// [`last_fault`]: FrameReader::last_fault
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    last_fault: Option<FrameFault>,
    last_fault_len: u32,
    last_fault_codec: u8,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Classification of the most recent [`next_frame`] error, cleared
    /// by any successful parse.
    ///
    /// [`next_frame`]: FrameReader::next_frame
    pub fn last_fault(&self) -> Option<FrameFault> {
        self.last_fault
    }

    /// Observed length-prefix of the faulting frame (0 when the header
    /// itself was untrustworthy, e.g. on bad magic). For oversize
    /// faults this is the claimed — rejected — length.
    pub fn last_fault_len(&self) -> u32 {
        self.last_fault_len
    }

    /// Codec of the faulting frame as a [`WireCodec::id`] (0 when the
    /// magic matched neither codec).
    pub fn last_fault_codec(&self) -> u8 {
        self.last_fault_codec
    }

    fn fault(&mut self, kind: FrameFault, len: u32, codec: u8) {
        self.last_fault = Some(kind);
        self.last_fault_len = len;
        self.last_fault_codec = codec;
    }

    /// Try to extract the next complete message. `Ok(None)` means more
    /// bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<WireMsg>, FvsError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let codec = if self.buf[..4] == MAGIC {
            WireCodec::Json
        } else if self.buf[..4] == MAGIC_V2 {
            WireCodec::Binary
        } else {
            // The length bytes of a desynchronised stream are garbage;
            // report 0 rather than a misleading number.
            self.fault(FrameFault::BadMagic, 0, 0);
            return Err(FvsError::wire(format!(
                "bad magic {:02x?} (stream desynchronised or not an fvsst peer)",
                &self.buf[..4]
            )));
        };
        let len = u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        if len > MAX_FRAME_LEN {
            self.fault(FrameFault::Oversize, len as u32, codec.id());
            return Err(FvsError::wire(format!(
                "frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
            )));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &self.buf[HEADER_LEN..HEADER_LEN + len];
        let msg = match codec {
            WireCodec::Json => decode_payload(payload),
            WireCodec::Binary => decode_payload_binary(payload),
        };
        // Consume the frame whether or not the payload decoded: the
        // framing itself was sound, so the next frame may be fine.
        self.buf.drain(..HEADER_LEN + len);
        match &msg {
            Ok(_) => {
                self.last_fault = None;
                self.last_fault_len = 0;
                self.last_fault_codec = 0;
            }
            Err(_) => self.fault(FrameFault::Payload, len as u32, codec.id()),
        }
        msg.map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> NodeSummary {
        NodeSummary {
            node: 3,
            sent_at_s: 1.25,
            models: vec![
                Some(CpiModel::from_components(1.5, 2.0e-9)),
                None,
                Some(CpiModel::from_components(0.75, 0.0)),
            ],
            idle: vec![false, true, false],
            current: vec![FreqMhz(1000), FreqMhz(250), FreqMhz(850)],
            power_w: 312.5,
        }
    }

    #[test]
    fn summary_round_trips_exactly() {
        let msg = WireMsg::Summary(sample_summary());
        let frame = encode(&msg).unwrap();
        assert_eq!(&frame[..4], &MAGIC);
        let mut r = FrameReader::new();
        r.feed(&frame);
        let back = r.next_frame().unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn every_kind_round_trips() {
        let msgs = vec![
            WireMsg::Hello {
                node: 2,
                procs: 4,
                version: SCHEMA_VERSION,
                last_epoch: 3,
                codecs: CODEC_ALL,
            },
            WireMsg::HelloAck {
                accepted: true,
                version: SCHEMA_VERSION,
                epoch: 4,
                codec: WireCodec::Binary.id(),
            },
            WireMsg::Summary(sample_summary()),
            WireMsg::Ceiling(FrequencyCommand {
                node: 1,
                freqs: vec![FreqMhz(600), FreqMhz(1000)],
            }),
            WireMsg::Bye { node: 7 },
            WireMsg::Heartbeat { epoch: 9 },
        ];
        let mut r = FrameReader::new();
        for m in &msgs {
            r.feed(&encode(m).unwrap());
        }
        for m in &msgs {
            assert_eq!(r.next_frame().unwrap().as_ref(), Some(m));
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut r = FrameReader::new();
        let (head, tail) = frame.split_at(frame.len() - 1);
        for chunk in head.chunks(3) {
            r.feed(chunk);
            assert_eq!(r.next_frame().unwrap(), None);
        }
        r.feed(tail);
        assert_eq!(r.next_frame().unwrap(), Some(WireMsg::Bye { node: 1 }));
    }

    #[test]
    fn bad_magic_is_an_error_not_a_panic() {
        let mut frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        frame[0] = b'X';
        let mut r = FrameReader::new();
        r.feed(&frame);
        assert!(matches!(r.next_frame(), Err(FvsError::Wire(_))));
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut r = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC);
        junk.extend_from_slice(&u32::MAX.to_be_bytes());
        r.feed(&junk);
        assert!(matches!(r.next_frame(), Err(FvsError::Wire(_))));
    }

    #[test]
    fn corrupt_payload_consumes_the_frame_and_reports() {
        let good = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = b'!'; // break the JSON
        let mut r = FrameReader::new();
        r.feed(&bad);
        r.feed(&good);
        assert!(r.next_frame().is_err());
        // The stream is not poisoned: the following frame still decodes.
        assert_eq!(r.next_frame().unwrap(), Some(WireMsg::Bye { node: 1 }));
    }

    #[test]
    fn non_hello_frames_require_exact_version() {
        let frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let bumped = text.replace("\"schema_version\":1", "\"schema_version\":2");
        let err = decode_payload(bumped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("schema_version 2"), "{err}");
    }

    #[test]
    fn hello_decodes_under_foreign_versions() {
        let frame = encode(&WireMsg::Hello {
            node: 0,
            procs: 4,
            version: SCHEMA_VERSION,
            last_epoch: 0,
            codecs: CODEC_ALL,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let bumped = text.replace("\"schema_version\":1", "\"schema_version\":9");
        match decode_payload(bumped.as_bytes()).unwrap() {
            WireMsg::Hello { version, .. } => assert_eq!(version, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The epoch fields are version-1-compatible additions: frames from
    /// peers that predate them (no `last_epoch` / `epoch` key) still
    /// decode, defaulting to epoch 0.
    #[test]
    fn missing_epoch_fields_decode_as_zero() {
        let frame = encode(&WireMsg::Hello {
            node: 5,
            procs: 2,
            version: SCHEMA_VERSION,
            last_epoch: 7,
            codecs: CODEC_ALL,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(",\"last_epoch\":7", "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::Hello {
                node, last_epoch, ..
            } => {
                assert_eq!(node, 5);
                assert_eq!(last_epoch, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let frame = encode(&WireMsg::HelloAck {
            accepted: true,
            version: SCHEMA_VERSION,
            epoch: 3,
            codec: WireCodec::Json.id(),
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(",\"epoch\":3", "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::HelloAck {
                accepted, epoch, ..
            } => {
                assert!(accepted);
                assert_eq!(epoch, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Each error path stamps its classification so the reader's owner
    /// can emit the right `wire_fault` event before dropping the link.
    #[test]
    fn frame_faults_are_classified() {
        // Oversized length prefix.
        let mut r = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC);
        junk.extend_from_slice(&u32::MAX.to_be_bytes());
        r.feed(&junk);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Oversize));

        // Bad magic.
        let mut r = FrameReader::new();
        let mut frame = encode(&WireMsg::Bye { node: 1 }).unwrap();
        frame[0] = b'X';
        r.feed(&frame);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::BadMagic));

        // Corrupt payload, then a clean frame clears the classification.
        let mut r = FrameReader::new();
        let good = encode(&WireMsg::Bye { node: 1 }).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = b'!';
        r.feed(&bad);
        r.feed(&good);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Payload));
        assert!(r.next_frame().unwrap().is_some());
        assert_eq!(r.last_fault(), None);
    }

    #[test]
    fn binary_every_kind_round_trips() {
        let msgs = vec![
            WireMsg::Hello {
                node: 2,
                procs: 4,
                version: SCHEMA_VERSION,
                last_epoch: 3,
                codecs: CODEC_ALL,
            },
            WireMsg::HelloAck {
                accepted: false,
                version: SCHEMA_VERSION,
                epoch: 4,
                codec: WireCodec::Binary.id(),
            },
            WireMsg::Summary(sample_summary()),
            WireMsg::Ceiling(FrequencyCommand {
                node: 1,
                freqs: vec![FreqMhz(600), FreqMhz(1000)],
            }),
            WireMsg::Bye { node: 7 },
            WireMsg::Heartbeat { epoch: 9 },
        ];
        let mut r = FrameReader::new();
        for m in &msgs {
            let frame = encode_binary(m).unwrap();
            assert_eq!(&frame[..4], &MAGIC_V2);
            r.feed(&frame);
        }
        for m in &msgs {
            assert_eq!(r.next_frame().unwrap().as_ref(), Some(m));
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }

    /// The binary codec carries floats as raw bits, so even non-finite
    /// values — which JSON collapses to `null` — survive bit-exactly.
    #[test]
    fn binary_non_finite_floats_round_trip_bit_exactly() {
        let mut s = sample_summary();
        s.power_w = f64::NEG_INFINITY;
        s.sent_at_s = f64::from_bits(0x7ff8_dead_beef_0001); // payload NaN
        let bits = (s.power_w.to_bits(), s.sent_at_s.to_bits());
        let frame = encode_binary(&WireMsg::Summary(s)).unwrap();
        let mut r = FrameReader::new();
        r.feed(&frame);
        match r.next_frame().unwrap().unwrap() {
            WireMsg::Summary(back) => {
                assert_eq!(back.power_w.to_bits(), bits.0);
                assert_eq!(back.sent_at_s.to_bits(), bits.1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_codec_stream_decodes_frame_by_frame() {
        let a = WireMsg::Summary(sample_summary());
        let b = WireMsg::Heartbeat { epoch: 12 };
        let mut r = FrameReader::new();
        r.feed(&encode(&a).unwrap());
        r.feed(&encode_binary(&b).unwrap());
        r.feed(&encode_binary(&a).unwrap());
        r.feed(&encode(&b).unwrap());
        assert_eq!(r.next_frame().unwrap(), Some(a.clone()));
        assert_eq!(r.next_frame().unwrap(), Some(b.clone()));
        assert_eq!(r.next_frame().unwrap(), Some(a));
        assert_eq!(r.next_frame().unwrap(), Some(b));
    }

    /// `encode_with` pins the handshake to JSON regardless of the
    /// negotiated codec — a pre-FVS2 peer must be able to read it.
    #[test]
    fn handshake_frames_always_encode_as_json() {
        let hello = WireMsg::Hello {
            node: 1,
            procs: 4,
            version: SCHEMA_VERSION,
            last_epoch: 0,
            codecs: CODEC_ALL,
        };
        let ack = WireMsg::HelloAck {
            accepted: true,
            version: SCHEMA_VERSION,
            epoch: 1,
            codec: WireCodec::Binary.id(),
        };
        for m in [&hello, &ack] {
            let frame = encode_with(m, WireCodec::Binary).unwrap();
            assert_eq!(&frame[..4], &MAGIC);
        }
        let frame = encode_with(&WireMsg::Heartbeat { epoch: 1 }, WireCodec::Binary).unwrap();
        assert_eq!(&frame[..4], &MAGIC_V2);
    }

    /// Frames from peers predating negotiation carry no codec fields;
    /// they decode as JSON-only speakers.
    #[test]
    fn missing_codec_fields_default_to_json() {
        let frame = encode(&WireMsg::Hello {
            node: 5,
            procs: 2,
            version: SCHEMA_VERSION,
            last_epoch: 0,
            codecs: CODEC_ALL,
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(&format!(",\"codecs\":{CODEC_ALL}"), "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::Hello { codecs, .. } => assert_eq!(codecs, CODEC_JSON_BIT),
            other => panic!("unexpected {other:?}"),
        }
        let frame = encode(&WireMsg::HelloAck {
            accepted: true,
            version: SCHEMA_VERSION,
            epoch: 3,
            codec: WireCodec::Binary.id(),
        })
        .unwrap();
        let text = std::str::from_utf8(&frame[HEADER_LEN..]).unwrap();
        let legacy = text.replace(",\"codec\":2", "");
        match decode_payload(legacy.as_bytes()).unwrap() {
            WireMsg::HelloAck { codec, .. } => assert_eq!(codec, WireCodec::Json.id()),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Truncating a binary frame anywhere yields an error (or a wait
    /// for more bytes) — never a panic — and the claimed proc count of
    /// a fuzzed summary cannot force an oversized allocation.
    #[test]
    fn binary_truncation_and_fuzz_are_safe() {
        let frame = encode_binary(&WireMsg::Summary(sample_summary())).unwrap();
        for cut in HEADER_LEN..frame.len() {
            let mut truncated = frame[..cut].to_vec();
            // Patch the length so the reader treats it as complete.
            let len = (cut - HEADER_LEN) as u32;
            truncated[4..8].copy_from_slice(&len.to_be_bytes());
            let mut r = FrameReader::new();
            r.feed(&truncated);
            let _ = r.next_frame(); // must not panic
        }
        // An absurd proc count over a tiny payload is refused.
        let mut p = vec![BK_SUMMARY];
        put_u64(&mut p, 1);
        put_f64(&mut p, 0.0);
        put_f64(&mut p, 100.0);
        put_u16(&mut p, u16::MAX);
        assert!(decode_payload_binary(&p).is_err());
    }

    #[test]
    fn fault_diagnostics_carry_length_and_codec() {
        // Oversize binary frame: claimed length and codec id captured.
        let mut r = FrameReader::new();
        let mut junk = Vec::new();
        junk.extend_from_slice(&MAGIC_V2);
        junk.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
        r.feed(&junk);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Oversize));
        assert_eq!(r.last_fault_len(), (MAX_FRAME_LEN as u32) + 1);
        assert_eq!(r.last_fault_codec(), WireCodec::Binary.id());

        // Bad magic: neither length nor codec is trustworthy.
        let mut r = FrameReader::new();
        r.feed(b"XXXX\x00\x00\x00\x01z");
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault_len(), 0);
        assert_eq!(r.last_fault_codec(), 0);

        // Torn binary payload: observed length + binary codec id.
        let good = encode_binary(&WireMsg::Heartbeat { epoch: 1 }).unwrap();
        let mut bad = good.clone();
        bad[HEADER_LEN] = 0xEE; // unknown kind byte
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(r.next_frame().is_err());
        assert_eq!(r.last_fault(), Some(FrameFault::Payload));
        assert_eq!(r.last_fault_len(), (good.len() - HEADER_LEN) as u32);
        assert_eq!(r.last_fault_codec(), WireCodec::Binary.id());

        // A clean parse clears all three diagnostics.
        r.feed(&good);
        assert!(r.next_frame().unwrap().is_some());
        assert_eq!(r.last_fault(), None);
        assert_eq!(r.last_fault_len(), 0);
        assert_eq!(r.last_fault_codec(), 0);
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan() {
        let mut s = sample_summary();
        s.power_w = f64::INFINITY;
        s.sent_at_s = f64::NAN;
        let frame = encode(&WireMsg::Summary(s)).unwrap();
        let mut r = FrameReader::new();
        r.feed(&frame);
        match r.next_frame().unwrap().unwrap() {
            WireMsg::Summary(back) => {
                // The JSON encoding maps non-finite to null; decode maps
                // null back to NaN, which ingest validation rejects.
                assert!(back.power_w.is_nan());
                assert!(back.sent_at_s.is_nan());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
