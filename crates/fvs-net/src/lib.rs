//! The networked control plane: the paper's node/coordinator split over
//! real sockets.
//!
//! Everything before this crate exchanged [`fvs_cluster::NodeSummary`]
//! and [`fvs_cluster::FrequencyCommand`] through the in-process
//! [`fvs_cluster::ClusterSim`] delay queue. Here the same types travel a
//! length-prefixed, versioned JSON wire protocol ([`wire`]) between a
//! threaded TCP [`coordinator::CoordinatorServer`] wrapping the real
//! [`fvs_cluster::GlobalCoordinator`] and per-node
//! [`agent::NodeAgent`]s, so heartbeat timeouts, silent-node charging
//! and blind f_min commands run against genuine socket liveness. Built
//! entirely on `std::net` TCP and crossbeam threads — the vendored,
//! offline dependency set has no async runtime, and needs none.
//!
//! The crate also hosts [`FvsError`], the unified error type of the
//! public API surface (wire / I/O / config / validation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod chaos;
pub mod coordinator;
pub mod error;
pub mod obs;
pub mod snapshot;
pub mod wire;

pub use agent::{
    AgentConfig, AgentReport, AgentStats, NodeAgent, NodeAgentHandle, ReconnectLadder,
};
pub use chaos::{ChaosSide, ChaosStream, WireChaos};
pub use coordinator::{CoordinatorConfig, CoordinatorServer, CoordinatorStatus};
pub use error::FvsError;
pub use obs::{http_get, HealthReport, ObsHandles, ObsServer};
pub use snapshot::{Snapshot, SnapshotEpisode, SnapshotNode, SnapshotStore, SNAPSHOT_VERSION};
pub use wire::{
    decode_payload, encode, FrameFault, FrameReader, WireMsg, HEADER_LEN, MAGIC, MAX_FRAME_LEN,
    SCHEMA_VERSION,
};
