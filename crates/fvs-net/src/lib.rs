//! The networked control plane: the paper's node/coordinator split over
//! real sockets.
//!
//! Everything before this crate exchanged [`fvs_cluster::NodeSummary`]
//! and [`fvs_cluster::FrequencyCommand`] through the in-process
//! [`fvs_cluster::ClusterSim`] delay queue. Here the same types travel a
//! length-prefixed, versioned wire protocol ([`wire`], JSON `FVS1` with
//! a negotiated binary `FVS2` fast path) between a TCP
//! [`coordinator::CoordinatorServer`] wrapping the real
//! [`fvs_cluster::GlobalCoordinator`] and per-node
//! [`agent::NodeAgent`]s, so heartbeat timeouts, silent-node charging
//! and blind f_min commands run against genuine socket liveness. The
//! coordinator serves every connection from one readiness-driven
//! [`reactor`] thread (epoll via the vendored `netpoll` crate — thread
//! count is O(1) in connection count); each connection's codec, chaos
//! and queueing state lives in a [`transport::Transport`]. Built
//! entirely on `std::net` TCP — the vendored, offline dependency set
//! has no async runtime, and needs none.
//!
//! The crate also hosts [`FvsError`], the unified error type of the
//! public API surface (wire / I/O / config / validation), and
//! [`args::NetArgs`], the shared CLI flag surface of the net binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod args;
pub mod chaos;
pub mod coordinator;
pub mod error;
pub mod fleet;
pub mod obs;
pub mod reactor;
pub mod snapshot;
pub mod transport;
pub mod wire;

pub use agent::{
    AgentConfig, AgentReport, AgentStats, NodeAgent, NodeAgentHandle, ReconnectLadder,
};
pub use args::NetArgs;
pub use chaos::{ChaosSide, ChaosStream, WireChaos, WriteFault};
pub use coordinator::{CoordinatorConfig, CoordinatorServer, CoordinatorStatus};
pub use error::FvsError;
pub use fleet::{AgentFleet, FleetHandle, FleetStats};
pub use obs::{http_get, HealthReport, ObsHandles, ObsServer};
pub use reactor::{Reactor, LISTENER_TOKEN};
pub use snapshot::{Snapshot, SnapshotEpisode, SnapshotNode, SnapshotStore, SNAPSHOT_VERSION};
pub use transport::{FillStatus, Transport};
pub use wire::{
    decode_payload, decode_payload_binary, encode, encode_binary, encode_with, FrameFault,
    FrameReader, WireCodec, WireMsg, CODEC_ALL, CODEC_BINARY_BIT, CODEC_JSON_BIT, HEADER_LEN,
    MAGIC, MAGIC_V2, MAX_FRAME_LEN, SCHEMA_VERSION,
};

// The vendored readiness-polling layer, re-exported whole so embedders
// can reach the raw `Poller` (and `raise_nofile_limit`) without adding
// a dependency on the vendor crate themselves.
pub use netpoll;
