//! The unified error type of the public API surface.
//!
//! Everything that can fail across the stack — a malformed frame on the
//! wire, a socket error, a bad configuration, a summary that fails
//! validation — funnels into one [`FvsError`], so callers write
//! `Result<_, FvsError>` once instead of juggling `String`, `Option`
//! and `io::Error` per layer.

use std::fmt;
use std::io;

/// Unified error for the fvsst stack.
#[derive(Debug)]
pub enum FvsError {
    /// A frame failed to encode, decode, or version-negotiate.
    Wire(String),
    /// An operating-system I/O error (sockets, files).
    Io(io::Error),
    /// An invalid configuration (bad address, bad plan, bad settings).
    Config(String),
    /// Semantically invalid data that parsed fine (mismatched vectors,
    /// non-finite power, unknown experiment ids).
    Validation(String),
}

impl FvsError {
    /// A wire-layer error with the given message.
    pub fn wire(msg: impl Into<String>) -> Self {
        FvsError::Wire(msg.into())
    }

    /// A configuration error with the given message.
    pub fn config(msg: impl Into<String>) -> Self {
        FvsError::Config(msg.into())
    }

    /// A validation error with the given message.
    pub fn validation(msg: impl Into<String>) -> Self {
        FvsError::Validation(msg.into())
    }

    /// Stable lowercase category name (for metrics and logs).
    pub fn category(&self) -> &'static str {
        match self {
            FvsError::Wire(_) => "wire",
            FvsError::Io(_) => "io",
            FvsError::Config(_) => "config",
            FvsError::Validation(_) => "validation",
        }
    }
}

impl fmt::Display for FvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FvsError::Wire(msg) => write!(f, "wire error: {msg}"),
            FvsError::Io(e) => write!(f, "i/o error: {e}"),
            FvsError::Config(msg) => write!(f, "config error: {msg}"),
            FvsError::Validation(msg) => write!(f, "validation error: {msg}"),
        }
    }
}

impl std::error::Error for FvsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FvsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FvsError {
    fn from(e: io::Error) -> Self {
        FvsError::Io(e)
    }
}

impl From<serde_json::Error> for FvsError {
    fn from(e: serde_json::Error) -> Self {
        FvsError::Wire(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_category_and_message() {
        let e = FvsError::wire("bad magic");
        assert_eq!(e.category(), "wire");
        assert_eq!(e.to_string(), "wire error: bad magic");
        let e = FvsError::config("port 99999");
        assert_eq!(e.to_string(), "config error: port 99999");
        let e = FvsError::validation("power_w not finite");
        assert_eq!(e.category(), "validation");
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let io = io::Error::new(io::ErrorKind::ConnectionRefused, "nope");
        let e: FvsError = io.into();
        assert_eq!(e.category(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn json_errors_become_wire_errors() {
        let bad = serde_json::from_str("{not json").unwrap_err();
        let e: FvsError = bad.into();
        assert_eq!(e.category(), "wire");
    }
}
