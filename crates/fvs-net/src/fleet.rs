//! The agent fleet: thousands of node agents on one thread.
//!
//! [`NodeAgent`](crate::agent::NodeAgent) spends a thread per node —
//! honest for a handful of machines, hopeless for a 10k-connection
//! soak on one box. [`AgentFleet`] runs every agent as a small state
//! machine (connect-backoff → handshaking → running) multiplexed onto
//! one [`Reactor`], with a timer heap driving wall-clock ticks: each
//! running agent ticks its [`ClusterNode`] every `tick_s` of wall time
//! (the fleet is always in real-time mode — that is what makes a soak
//! against a live coordinator honest) and ships a summary every
//! `summary_every` ticks over its [`Transport`]. Codec negotiation,
//! epoch fencing, reconnect-ladder backoff and link timeouts behave
//! exactly as in the threaded agent — same handshake code, same
//! fencing rule — so the coordinator cannot tell a fleet member from a
//! standalone agent.
//!
//! Connects are staggered across a ramp window so 10k simultaneous SYNs
//! don't blow the accept backlog, and the ramp doubles as tick phase
//! stagger: agents connected at different times summarize at different
//! times, spreading uplink load across the period.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fvs_cluster::ClusterNode;

use crate::agent::{advertised_codecs, AgentConfig, ReconnectLadder};
use crate::chaos::{ChaosSide, ChaosStream};
use crate::error::FvsError;
use crate::reactor::Reactor;
use crate::transport::{FillStatus, Transport};
use crate::wire::{WireCodec, WireMsg};

/// How long a hello may wait for its ack before the connection is
/// abandoned (matches the threaded agent's handshake deadline).
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(2);
/// Per-attempt connect timeout: a coordinator that can't even complete
/// the TCP handshake within this is treated as down.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Disconnect a connection whose outbound queue exceeds this — the
/// coordinator has stopped reading and the honest move is to reconnect
/// rather than buffer unboundedly.
const MAX_QUEUED_BYTES: usize = 1 << 20;
/// Cap on timers fired per loop iteration, so a backlog of due ticks
/// can never starve the poller.
const MAX_TIMERS_PER_ITER: usize = 1024;

/// Live counters of a running fleet, updated by the fleet thread and
/// readable from anywhere.
#[derive(Debug, Default)]
pub struct FleetStats {
    connected: AtomicU64,
    summaries_sent: AtomicU64,
    ceilings_applied: AtomicU64,
    reconnects: AtomicU64,
    epochs_fenced: AtomicU64,
    version_rejects: AtomicU64,
    connect_failures: AtomicU64,
    binary_conns: AtomicU64,
    json_conns: AtomicU64,
}

impl FleetStats {
    /// Agents currently past a successful handshake.
    pub fn connected(&self) -> u64 {
        self.connected.load(Ordering::SeqCst)
    }

    /// Summaries shipped upstream across the fleet.
    pub fn summaries_sent(&self) -> u64 {
        self.summaries_sent.load(Ordering::SeqCst)
    }

    /// Ceiling commands applied across the fleet.
    pub fn ceilings_applied(&self) -> u64 {
        self.ceilings_applied.load(Ordering::SeqCst)
    }

    /// Connections re-established after an agent's first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::SeqCst)
    }

    /// Stale coordinators fenced across the fleet.
    pub fn epochs_fenced(&self) -> u64 {
        self.epochs_fenced.load(Ordering::SeqCst)
    }

    /// Agents permanently refused over schema version.
    pub fn version_rejects(&self) -> u64 {
        self.version_rejects.load(Ordering::SeqCst)
    }

    /// Failed connect attempts (refused, timed out, unreachable).
    pub fn connect_failures(&self) -> u64 {
        self.connect_failures.load(Ordering::SeqCst)
    }

    /// Handshakes that negotiated the binary codec.
    pub fn binary_conns(&self) -> u64 {
        self.binary_conns.load(Ordering::SeqCst)
    }

    /// Handshakes that settled on JSON.
    pub fn json_conns(&self) -> u64 {
        self.json_conns.load(Ordering::SeqCst)
    }
}

/// Handle to a running fleet thread.
pub struct FleetHandle {
    stop: Arc<AtomicBool>,
    stats: Arc<FleetStats>,
    thread: JoinHandle<()>,
}

impl FleetHandle {
    /// The fleet's live counters.
    pub fn stats(&self) -> Arc<FleetStats> {
        Arc::clone(&self.stats)
    }

    /// Orderly shutdown: connected agents say `Bye`, the thread joins,
    /// and the final counters are returned.
    pub fn stop(self) -> Arc<FleetStats> {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("fleet thread panicked");
        self.stats
    }
}

enum Phase {
    /// Waiting for the connect timer (ramp stagger or backoff rung).
    Backoff,
    /// Hello sent; the timer is the handshake deadline.
    Handshaking,
    /// Ticking and shipping summaries; the timer is the next tick.
    Running,
    /// Version-refused: permanently out of the game.
    Dead,
}

struct Slot {
    node: ClusterNode,
    phase: Phase,
    /// Bumped on every phase change; stale heap entries are skipped.
    gen: u64,
    token: Option<u64>,
    ladder: ReconnectLadder,
    last_epoch: u64,
    ticks: u32,
    last_rx: Instant,
    ever_connected: bool,
    connect_seq: u64,
}

/// Spawns and owns the one fleet thread. See the module docs.
pub struct AgentFleet;

impl AgentFleet {
    /// Launch agents for `nodes` against the coordinator at `addr`,
    /// staggering first connects across `ramp`.
    pub fn launch(
        nodes: Vec<ClusterNode>,
        addr: impl ToSocketAddrs,
        config: AgentConfig,
        ramp: Duration,
    ) -> Result<FleetHandle, FvsError> {
        if nodes.is_empty() {
            return Err(FvsError::config("a fleet needs at least one node"));
        }
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| FvsError::config("fleet address resolved to nothing"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FleetStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name("fvs-fleet".into())
            .spawn(move || {
                if let Err(e) = fleet_loop(nodes, addr, config, ramp, thread_stop, thread_stats) {
                    eprintln!("fvs-fleet: reactor failed: {e}");
                }
            })
            .map_err(FvsError::Io)?;
        Ok(FleetHandle {
            stop,
            stats,
            thread,
        })
    }
}

fn fleet_loop(
    nodes: Vec<ClusterNode>,
    addr: SocketAddr,
    config: AgentConfig,
    ramp: Duration,
    stop: Arc<AtomicBool>,
    stats: Arc<FleetStats>,
) -> io::Result<()> {
    let n = nodes.len();
    let chaos_start = Instant::now();
    let mut reactor: Reactor<usize> = Reactor::new()?;
    let mut slots: Vec<Slot> = nodes
        .into_iter()
        .map(|node| {
            let id = node.id as u64;
            Slot {
                node,
                phase: Phase::Backoff,
                gen: 0,
                token: None,
                ladder: ReconnectLadder::new(
                    config.backoff_base,
                    config.backoff_max,
                    config.jitter_seed ^ id.wrapping_mul(0x517C_C1B7_2722_0A95),
                ),
                last_epoch: 0,
                ticks: 0,
                last_rx: chaos_start,
                ever_connected: false,
                connect_seq: 0,
            }
        })
        .collect();

    // (due, slot index, generation) — min-heap via Reverse.
    let mut timers: BinaryHeap<Reverse<(Instant, usize, u64)>> = BinaryHeap::with_capacity(n);
    let start = Instant::now();
    for (i, slot) in slots.iter().enumerate() {
        let at = start + ramp.mul_f64(i as f64 / n as f64);
        timers.push(Reverse((at, i, slot.gen)));
    }
    let tick_wall = Duration::from_secs_f64(config.tick_s);
    let codecs = advertised_codecs(config.codec);

    while !stop.load(Ordering::SeqCst) {
        // Fire due timers (bounded per iteration; see the const).
        let mut fired = 0usize;
        let now = Instant::now();
        while fired < MAX_TIMERS_PER_ITER {
            let Some(&Reverse((when, idx, gen))) = timers.peek() else {
                break;
            };
            if when > now {
                break;
            }
            timers.pop();
            if slots[idx].gen != gen {
                continue; // the slot changed phase since this was armed
            }
            fired += 1;
            match slots[idx].phase {
                Phase::Backoff => {
                    connect_slot(
                        idx,
                        &mut slots[idx],
                        addr,
                        &config,
                        codecs,
                        chaos_start,
                        &stats,
                        &mut reactor,
                        &mut timers,
                    );
                }
                Phase::Handshaking => {
                    // Hello went unanswered: give up on this socket.
                    disconnect(idx, &mut slots[idx], &stats, &mut reactor, &mut timers);
                }
                Phase::Running => {
                    run_tick(
                        idx,
                        &mut slots[idx],
                        &config,
                        tick_wall,
                        when,
                        &stats,
                        &mut reactor,
                        &mut timers,
                    );
                }
                Phase::Dead => {}
            }
        }

        // Sleep until the next timer (or briefly, if timers are
        // backlogged) while watching for socket readiness.
        let timeout = if fired >= MAX_TIMERS_PER_ITER {
            Duration::ZERO
        } else {
            timers
                .peek()
                .map(|Reverse((when, _, _))| when.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50))
        };
        reactor.poll(Some(timeout))?;
        let events = reactor.drain_events();
        for ev in &events {
            let Some((_, &mut idx)) = reactor.get_mut(ev.token) else {
                continue; // removed earlier this batch
            };
            if ev.readable || ev.hangup {
                handle_readable(
                    idx,
                    &mut slots[idx],
                    &config,
                    tick_wall,
                    &stats,
                    &mut reactor,
                    &mut timers,
                );
            }
            if ev.writable {
                if let Some((transport, _)) = reactor.get_mut(ev.token) {
                    if transport.flush().is_err() {
                        disconnect(idx, &mut slots[idx], &stats, &mut reactor, &mut timers);
                    } else {
                        let _ = reactor.update_interest(ev.token);
                    }
                }
            }
        }
        reactor.recycle_events(events);
    }

    // Orderly exit: running agents say goodbye.
    for slot in &slots {
        if !matches!(slot.phase, Phase::Running) {
            continue;
        }
        let Some(token) = slot.token else { continue };
        if let Some((transport, _)) = reactor.get_mut(token) {
            transport.stream().set_nonblocking(false).ok();
            transport.send_best_effort(&WireMsg::Bye { node: slot.node.id });
        }
    }
    Ok(())
}

/// Arm a slot's next timer under a fresh generation.
fn arm(
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
    slot: &mut Slot,
    idx: usize,
    at: Instant,
) {
    slot.gen += 1;
    timers.push(Reverse((at, idx, slot.gen)));
}

#[allow(clippy::too_many_arguments)]
fn connect_slot(
    idx: usize,
    slot: &mut Slot,
    addr: SocketAddr,
    config: &AgentConfig,
    codecs: u8,
    chaos_start: Instant,
    stats: &FleetStats,
    reactor: &mut Reactor<usize>,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
) {
    let raw = match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
        Ok(s) => s,
        Err(_) => {
            stats.connect_failures.fetch_add(1, Ordering::SeqCst);
            let delay = slot.ladder.next_delay();
            arm(timers, slot, idx, Instant::now() + delay);
            return;
        }
    };
    slot.connect_seq += 1;
    let stream = ChaosStream::wrap(
        raw,
        &config.chaos,
        ChaosSide::Agent,
        slot.connect_seq,
        chaos_start,
        config.telemetry.clone(),
        None,
    );
    stream.set_node(slot.node.id);
    let _ = stream.set_nodelay(true);
    let mut transport = Transport::new(stream);
    let hello = WireMsg::Hello {
        node: slot.node.id,
        procs: slot.node.machine().num_cores(),
        version: config.version,
        last_epoch: slot.last_epoch,
        codecs,
    };
    // Socket is still blocking here, so hello + flush go out whole;
    // `Reactor::insert` flips it nonblocking.
    if transport.send(&hello).is_err() || transport.flush().is_err() {
        stats.connect_failures.fetch_add(1, Ordering::SeqCst);
        let delay = slot.ladder.next_delay();
        arm(timers, slot, idx, Instant::now() + delay);
        return;
    }
    match reactor.insert(transport, idx) {
        Ok(token) => {
            slot.token = Some(token);
            slot.phase = Phase::Handshaking;
            arm(timers, slot, idx, Instant::now() + HANDSHAKE_DEADLINE);
        }
        Err(_) => {
            stats.connect_failures.fetch_add(1, Ordering::SeqCst);
            let delay = slot.ladder.next_delay();
            arm(timers, slot, idx, Instant::now() + delay);
        }
    }
}

/// Tear a slot's connection down and climb the backoff ladder.
fn disconnect(
    idx: usize,
    slot: &mut Slot,
    stats: &FleetStats,
    reactor: &mut Reactor<usize>,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
) {
    if let Some(token) = slot.token.take() {
        reactor.remove(token);
    }
    if matches!(slot.phase, Phase::Running) {
        stats.connected.fetch_sub(1, Ordering::SeqCst);
    }
    slot.phase = Phase::Backoff;
    let delay = slot.ladder.next_delay();
    arm(timers, slot, idx, Instant::now() + delay);
}

/// Park a version-refused slot permanently.
fn park_dead(slot: &mut Slot, stats: &FleetStats, reactor: &mut Reactor<usize>) {
    if let Some(token) = slot.token.take() {
        reactor.remove(token);
    }
    if matches!(slot.phase, Phase::Running) {
        stats.connected.fetch_sub(1, Ordering::SeqCst);
    }
    slot.phase = Phase::Dead;
    slot.gen += 1; // orphan any armed timer
    stats.version_rejects.fetch_add(1, Ordering::SeqCst);
}

/// One wall-clock tick of a running agent: advance the machine, ship a
/// summary when the window closes, enforce backpressure and the link
/// timeout, re-arm the next tick.
#[allow(clippy::too_many_arguments)]
fn run_tick(
    idx: usize,
    slot: &mut Slot,
    config: &AgentConfig,
    tick_wall: Duration,
    when: Instant,
    stats: &FleetStats,
    reactor: &mut Reactor<usize>,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
) {
    let Some(token) = slot.token else {
        disconnect(idx, slot, stats, reactor, timers);
        return;
    };
    slot.node.tick(config.tick_s);
    slot.ticks += 1;
    let mut dead = slot.last_rx.elapsed() > config.link_timeout;
    if !dead {
        if let Some((transport, _)) = reactor.get_mut(token) {
            if slot.ticks.is_multiple_of(config.summary_every) {
                let summary = slot.node.summarize();
                if transport.send(&WireMsg::Summary(summary)).is_err() {
                    dead = true;
                } else {
                    stats.summaries_sent.fetch_add(1, Ordering::SeqCst);
                }
            }
            if !dead {
                dead = transport.flush().is_err() || transport.queued_bytes() > MAX_QUEUED_BYTES;
            }
            if !dead {
                let _ = reactor.update_interest(token);
            }
        } else {
            dead = true;
        }
    }
    if dead {
        disconnect(idx, slot, stats, reactor, timers);
    } else {
        // Drift-free cadence: schedule off the previous deadline, but
        // never pile further into the past than "now".
        let next = (when + tick_wall).max(Instant::now());
        arm(timers, slot, idx, next);
    }
}

/// Drain everything readable on a slot's socket and dispatch by phase.
#[allow(clippy::too_many_arguments)]
fn handle_readable(
    idx: usize,
    slot: &mut Slot,
    config: &AgentConfig,
    tick_wall: Duration,
    stats: &FleetStats,
    reactor: &mut Reactor<usize>,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
) {
    let Some(token) = slot.token else {
        return;
    };
    let Some((transport, _)) = reactor.get_mut(token) else {
        return;
    };
    match transport.fill() {
        Ok(FillStatus::Eof) | Err(_) => {
            disconnect(idx, slot, stats, reactor, timers);
            return;
        }
        Ok(_) => {}
    }
    loop {
        let Some((transport, _)) = reactor.get_mut(token) else {
            return;
        };
        match transport.next_msg() {
            Ok(Some(WireMsg::HelloAck {
                accepted,
                version,
                epoch,
                codec,
            })) => {
                if !matches!(slot.phase, Phase::Handshaking) {
                    continue;
                }
                if accepted {
                    if epoch < slot.last_epoch {
                        stats.epochs_fenced.fetch_add(1, Ordering::SeqCst);
                        disconnect(idx, slot, stats, reactor, timers);
                        return;
                    }
                    slot.last_epoch = epoch;
                    slot.last_rx = Instant::now();
                    let chosen = WireCodec::from_id(codec);
                    transport.set_codec(chosen);
                    match chosen {
                        WireCodec::Binary => stats.binary_conns.fetch_add(1, Ordering::SeqCst),
                        WireCodec::Json => stats.json_conns.fetch_add(1, Ordering::SeqCst),
                    };
                    if slot.ever_connected {
                        stats.reconnects.fetch_add(1, Ordering::SeqCst);
                    }
                    slot.ever_connected = true;
                    slot.ladder.reset();
                    slot.phase = Phase::Running;
                    slot.ticks = 0;
                    stats.connected.fetch_add(1, Ordering::SeqCst);
                    arm(timers, slot, idx, Instant::now() + tick_wall);
                } else if version == config.version && epoch < slot.last_epoch {
                    // Refused by a *stale* survivor speaking our schema:
                    // fence it and retry — the current coordinator may
                    // come back on this address.
                    stats.epochs_fenced.fetch_add(1, Ordering::SeqCst);
                    disconnect(idx, slot, stats, reactor, timers);
                    return;
                } else {
                    // A schema-version refusal is permanent.
                    park_dead(slot, stats, reactor);
                    return;
                }
            }
            Ok(Some(WireMsg::Ceiling(cmd))) => {
                if matches!(slot.phase, Phase::Running) && cmd.node == slot.node.id {
                    slot.last_rx = Instant::now();
                    slot.node.apply(&cmd.freqs);
                    stats.ceilings_applied.fetch_add(1, Ordering::SeqCst);
                }
            }
            Ok(Some(WireMsg::Heartbeat { epoch })) => {
                if epoch < slot.last_epoch {
                    stats.epochs_fenced.fetch_add(1, Ordering::SeqCst);
                    disconnect(idx, slot, stats, reactor, timers);
                    return;
                }
                slot.last_epoch = epoch;
                slot.last_rx = Instant::now();
            }
            Ok(Some(_)) => {}
            Ok(None) => return,
            Err(_) => {
                disconnect(idx, slot, stats, reactor, timers);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{CoordinatorConfig, CoordinatorServer};
    use fvs_sched::FvsstAlgorithm;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    fn wait_until(deadline_s: u64, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(deadline_s);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }

    #[test]
    fn fleet_connects_reports_and_applies_ceilings() {
        let n = 8;
        let server = CoordinatorServer::bind(
            "127.0.0.1:0",
            n,
            FvsstAlgorithm::p630(),
            CoordinatorConfig::default_lan().with_period_s(0.05),
        )
        .unwrap();
        let nodes: Vec<ClusterNode> = (0..n)
            .map(|i| {
                let mut b = MachineBuilder::p630();
                for core in 0..4 {
                    b = b.workload(core, WorkloadSpec::synthetic(0.0, 1.0e18));
                }
                ClusterNode::new(i, b.build(), None)
            })
            .collect();
        let config = AgentConfig::default_lan()
            .with_tick_s(0.02)
            .with_summary_every(2);
        let fleet = AgentFleet::launch(
            nodes,
            server.local_addr(),
            config,
            Duration::from_millis(100),
        )
        .unwrap();
        let stats = fleet.stats();
        assert!(
            wait_until(20, || stats.connected() == n as u64
                && stats.summaries_sent() > 2 * n as u64
                && stats.ceilings_applied() > 0),
            "fleet never converged: connected={} summaries={} ceilings={}",
            stats.connected(),
            stats.summaries_sent(),
            stats.ceilings_applied()
        );
        // Default preferences on both sides negotiate the binary path.
        assert_eq!(stats.binary_conns() + stats.json_conns(), n as u64);
        let final_stats = fleet.stop();
        let status = server.shutdown().unwrap();
        assert!(status.nodes_reporting > 0);
        assert_eq!(final_stats.version_rejects(), 0);
    }
}
