//! The node agent: one machine's measurement daemon on a socket.
//!
//! A [`NodeAgent`] runs a [`ClusterNode`] (machine + local predictor —
//! the same per-core sampling path the multi-threaded daemon's
//! collectors feed) on its own thread: tick the machine, close the
//! measurement window every `summary_every` ticks, ship the
//! [`NodeSummary`] upstream, and apply whatever frequency ceilings come
//! back. When the link drops the agent reconnects with the exponential
//! backoff discipline of the degradation ladder — base, 2×, 4×, … up to
//! a ceiling, reset on the first successful handshake — while the
//! machine keeps running at its last-commanded frequencies (exactly the
//! mute-but-running scenario the coordinator's conservative charging
//! defends against).

use crate::error::FvsError;
use crate::wire::{encode, FrameReader, WireMsg, SCHEMA_VERSION};
use fvs_cluster::ClusterNode;
use fvs_sim::Pacer;
use fvs_telemetry::Tracer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one node agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Simulated seconds each machine tick advances.
    pub tick_s: f64,
    /// Ticks per summary (the paper's `n`: window per report).
    pub summary_every: u32,
    /// Wall-clock pacing per tick (zero = free-running).
    pub pace: Duration,
    /// Real-time mode: pace each tick to exactly `tick_s` of wall time
    /// (absolute deadlines, drift-free), so one simulated second takes
    /// one wall second — the honest way to soak a live coordinator on
    /// the paper's real `t = 10 ms` sampling cadence. Overrides `pace`.
    pub timed: bool,
    /// First reconnect delay of the backoff ladder.
    pub backoff_base: Duration,
    /// Ceiling of the backoff ladder.
    pub backoff_max: Duration,
    /// Schema version to announce (tests speak wrong versions on
    /// purpose; everything real uses [`SCHEMA_VERSION`]).
    pub version: u32,
    /// Causal span tracer: `node.apply` spans, one per ceiling applied
    /// to the machine.
    pub tracer: Tracer,
}

impl AgentConfig {
    /// Paper-flavoured defaults: 10 ms ticks, summary every 10 ticks,
    /// 2 ms pacing, 50 ms → 800 ms backoff ladder.
    pub fn default_lan() -> Self {
        AgentConfig {
            tick_s: 0.01,
            summary_every: 10,
            pace: Duration::from_millis(2),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(800),
            timed: false,
            version: SCHEMA_VERSION,
            tracer: Tracer::disabled(),
        }
    }

    /// Enable or disable wall-clock real-time pacing (see
    /// [`AgentConfig::timed`]).
    pub fn with_timed(mut self, timed: bool) -> Self {
        self.timed = timed;
        self
    }

    /// Override the simulated tick length.
    pub fn with_tick_s(mut self, tick_s: f64) -> Self {
        self.tick_s = tick_s;
        self
    }

    /// Override the ticks-per-summary window.
    pub fn with_summary_every(mut self, ticks: u32) -> Self {
        self.summary_every = ticks.max(1);
        self
    }

    /// Override the wall-clock pacing.
    pub fn with_pace(mut self, pace: Duration) -> Self {
        self.pace = pace;
        self
    }

    /// Override the backoff ladder.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self
    }

    /// Announce a different schema version (version-negotiation tests).
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Attach a causal span tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn validate(&self) -> Result<(), FvsError> {
        if !(self.tick_s.is_finite() && self.tick_s > 0.0) {
            return Err(FvsError::config("tick_s must be finite and positive"));
        }
        if self.summary_every == 0 {
            return Err(FvsError::config("summary_every must be at least 1"));
        }
        if self.backoff_base > self.backoff_max {
            return Err(FvsError::config("backoff_base exceeds backoff_max"));
        }
        Ok(())
    }
}

/// What the agent thread hands back when it exits.
#[derive(Debug, Clone)]
pub struct AgentReport {
    /// The node this agent drove.
    pub node: usize,
    /// Summaries shipped upstream.
    pub summaries_sent: u64,
    /// Ceiling commands applied to the machine.
    pub ceilings_applied: u64,
    /// Times the connection was (re-)established after the first.
    pub reconnects: u64,
    /// The coordinator refused our schema version.
    pub version_rejected: bool,
    /// Node power when the agent stopped (W).
    pub final_power_w: f64,
}

/// Live counters of a running agent, updated in place by the agent
/// thread and readable from any thread — the node binary's `/healthz`
/// endpoint reads these without joining the thread.
#[derive(Debug, Default)]
pub struct AgentStats {
    connected: AtomicBool,
    summaries_sent: AtomicU64,
    ceilings_applied: AtomicU64,
    reconnects: AtomicU64,
    /// Latest node power as f64 bits.
    power_bits: AtomicU64,
}

impl AgentStats {
    /// Currently connected (past a successful handshake).
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Summaries shipped upstream so far.
    pub fn summaries_sent(&self) -> u64 {
        self.summaries_sent.load(Ordering::SeqCst)
    }

    /// Ceiling commands applied to the machine so far.
    pub fn ceilings_applied(&self) -> u64 {
        self.ceilings_applied.load(Ordering::SeqCst)
    }

    /// Times the connection was re-established after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::SeqCst)
    }

    /// The node's power at the last summary window (W).
    pub fn power_w(&self) -> f64 {
        f64::from_bits(self.power_bits.load(Ordering::SeqCst))
    }
}

struct Flags {
    /// Orderly shutdown: send `Bye`, then exit.
    stop: AtomicBool,
    /// Crash simulation: drop everything on the floor and exit.
    kill: AtomicBool,
}

/// Handle to a running agent thread.
pub struct NodeAgentHandle {
    flags: Arc<Flags>,
    stats: Arc<AgentStats>,
    thread: JoinHandle<AgentReport>,
}

impl NodeAgentHandle {
    /// Whether the agent thread has already exited on its own (version
    /// refusal is the one self-terminating path).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// The agent's live counters (shareable; plain atomics).
    pub fn stats(&self) -> Arc<AgentStats> {
        Arc::clone(&self.stats)
    }

    /// Orderly shutdown: the agent says `Bye` and returns its report.
    pub fn stop(self) -> AgentReport {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("agent thread panicked")
    }

    /// Crash the agent: the socket just goes dead, no goodbye — from
    /// the coordinator's side this is indistinguishable from a node
    /// failure, which is the point.
    pub fn kill(self) -> AgentReport {
        self.flags.kill.store(true, Ordering::SeqCst);
        self.thread.join().expect("agent thread panicked")
    }
}

/// Spawns and owns one node-agent thread.
pub struct NodeAgent;

impl NodeAgent {
    /// Start an agent driving `node` against the coordinator at `addr`.
    pub fn spawn(
        node: ClusterNode,
        addr: impl Into<String>,
        config: AgentConfig,
    ) -> Result<NodeAgentHandle, FvsError> {
        config.validate()?;
        let addr = addr.into();
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            kill: AtomicBool::new(false),
        });
        let stats = Arc::new(AgentStats::default());
        let thread_flags = Arc::clone(&flags);
        let thread_stats = Arc::clone(&stats);
        let thread =
            std::thread::spawn(move || agent_loop(node, &addr, config, thread_flags, thread_stats));
        Ok(NodeAgentHandle {
            flags,
            stats,
            thread,
        })
    }
}

/// Sleep `total` in small slices so stop/kill stay responsive.
fn interruptible_sleep(total: Duration, flags: &Flags) {
    let slice = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if flags.stop.load(Ordering::SeqCst) || flags.kill.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

enum Handshake {
    Accepted,
    Refused,
    Dead,
}

/// Send `Hello`, wait briefly for the coordinator's verdict.
fn handshake(stream: &mut TcpStream, node: usize, procs: usize, version: u32) -> Handshake {
    let hello = WireMsg::Hello {
        node,
        procs,
        version,
    };
    let Ok(frame) = encode(&hello) else {
        return Handshake::Dead;
    };
    if stream.write_all(&frame).is_err() {
        return Handshake::Dead;
    }
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => return Handshake::Dead,
            Ok(n) => {
                reader.feed(&buf[..n]);
                match reader.next_frame() {
                    Ok(Some(WireMsg::HelloAck { accepted: true, .. })) => {
                        return Handshake::Accepted
                    }
                    Ok(Some(WireMsg::HelloAck {
                        accepted: false, ..
                    })) => return Handshake::Refused,
                    Ok(Some(_)) | Ok(None) => continue,
                    Err(_) => return Handshake::Dead,
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return Handshake::Dead,
        }
    }
    Handshake::Dead
}

fn agent_loop(
    mut node: ClusterNode,
    addr: &str,
    config: AgentConfig,
    flags: Arc<Flags>,
    stats: Arc<AgentStats>,
) -> AgentReport {
    let node_id = node.id;
    let procs = node.machine().num_cores();
    let mut report = AgentReport {
        node: node_id,
        summaries_sent: 0,
        ceilings_applied: 0,
        reconnects: 0,
        version_rejected: false,
        final_power_w: 0.0,
    };
    let mut backoff = config.backoff_base;
    let mut ever_connected = false;

    'outer: loop {
        if flags.stop.load(Ordering::SeqCst) || flags.kill.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                // The reconnect ladder: base, 2×, 4×, … up to the cap.
                interruptible_sleep(backoff, &flags);
                backoff = (backoff * 2).min(config.backoff_max);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        match handshake(&mut stream, node_id, procs, config.version) {
            Handshake::Accepted => {}
            Handshake::Refused => {
                // A version refusal is permanent: retrying with the
                // same schema can never succeed, so don't storm.
                report.version_rejected = true;
                break 'outer;
            }
            Handshake::Dead => {
                interruptible_sleep(backoff, &flags);
                backoff = (backoff * 2).min(config.backoff_max);
                continue;
            }
        }
        if ever_connected {
            report.reconnects += 1;
            stats.reconnects.fetch_add(1, Ordering::SeqCst);
        }
        ever_connected = true;
        stats.connected.store(true, Ordering::SeqCst);
        backoff = config.backoff_base;

        let mut reader = FrameReader::new();
        let mut buf = [0u8; 4096];
        let mut ticks = 0u32;
        // Real-time mode: anchor the pacer at connection time so every
        // tick lands on an absolute deadline from here on out.
        let mut pacer = config
            .timed
            .then(|| Pacer::new(Duration::from_secs_f64(config.tick_s)));
        loop {
            if flags.kill.load(Ordering::SeqCst) {
                // Crash: no Bye, the socket just stops.
                break 'outer;
            }
            if flags.stop.load(Ordering::SeqCst) {
                if let Ok(frame) = encode(&WireMsg::Bye { node: node_id }) {
                    let _ = stream.write_all(&frame);
                }
                break 'outer;
            }

            node.tick(config.tick_s);
            ticks += 1;
            if ticks.is_multiple_of(config.summary_every) {
                let summary = node.summarize();
                stats
                    .power_bits
                    .store(summary.power_w.to_bits(), Ordering::SeqCst);
                let Ok(frame) = encode(&WireMsg::Summary(summary)) else {
                    continue;
                };
                if stream.write_all(&frame).is_err() {
                    // Link dropped mid-summary: climb the ladder.
                    break;
                }
                report.summaries_sent += 1;
                stats.summaries_sent.fetch_add(1, Ordering::SeqCst);
            }

            // Drain whatever ceilings arrived; the 1 ms read timeout
            // doubles as pacing slack.
            let mut link_dead = false;
            match stream.read(&mut buf) {
                Ok(0) => link_dead = true, // coordinator went away
                Ok(n) => {
                    reader.feed(&buf[..n]);
                    loop {
                        match reader.next_frame() {
                            Ok(Some(WireMsg::Ceiling(cmd))) => {
                                if cmd.node == node_id {
                                    let _apply = config.tracer.span("node.apply");
                                    node.apply(&cmd.freqs);
                                    report.ceilings_applied += 1;
                                    stats.ceilings_applied.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            Ok(Some(_)) => {}
                            Ok(None) => break,
                            Err(_) => {
                                // Desynchronised downlink: reconnect.
                                link_dead = true;
                                break;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => link_dead = true,
            }
            if link_dead {
                break;
            }

            if let Some(pacer) = pacer.as_mut() {
                pacer.pace();
            } else if !config.pace.is_zero() {
                std::thread::sleep(config.pace);
            }
        }
        // Only reachable when the link dropped (exits via 'outer skip
        // this): reflect the disconnect before climbing the ladder.
        stats.connected.store(false, Ordering::SeqCst);
    }

    stats.connected.store(false, Ordering::SeqCst);
    report.final_power_w = node.power_w();
    stats
        .power_bits
        .store(report.final_power_w.to_bits(), Ordering::SeqCst);
    report
}
