//! The node agent: one machine's measurement daemon on a socket.
//!
//! A [`NodeAgent`] runs a [`ClusterNode`] (machine + local predictor —
//! the same per-core sampling path the multi-threaded daemon's
//! collectors feed) on its own thread: tick the machine, close the
//! measurement window every `summary_every` ticks, ship the
//! [`NodeSummary`] upstream, and apply whatever frequency ceilings come
//! back. When the link drops the agent reconnects with the exponential
//! backoff discipline of the degradation ladder — a seedable,
//! equal-jitter [`ReconnectLadder`]: base, 2×, 4×, … up to a ceiling,
//! each rung drawn uniformly from [rung/2, rung] so a herd of agents
//! losing one coordinator does not reconnect in lockstep — while the
//! machine keeps running at its last-commanded frequencies (exactly the
//! mute-but-running scenario the coordinator's conservative charging
//! defends against).
//!
//! Epoch fencing: the agent remembers the highest coordinator epoch it
//! has ever acknowledged and refuses to serve a coordinator presenting
//! a lower one — whether at handshake (a refused hello, or an ack
//! carrying a stale epoch) or mid-connection (a stale heartbeat). A
//! fenced coordinator is retried through the ladder, because the fence
//! is about *which* coordinator is current, not a permanent protocol
//! mismatch; only a schema-version refusal is terminal.

use crate::chaos::{ChaosSide, ChaosStream};
use crate::error::FvsError;
use crate::transport::{FillStatus, Transport};
use crate::wire::{WireCodec, WireMsg, CODEC_ALL, CODEC_JSON_BIT, SCHEMA_VERSION};
use crate::WireChaos;
use fvs_cluster::ClusterNode;
use fvs_sim::Pacer;
use fvs_telemetry::{Telemetry, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Seedable equal-jitter exponential backoff: rung `k` sleeps a
/// uniform draw from `[base·2ᵏ/2, base·2ᵏ]`, capped at `max`. Pure
/// state machine — the caller does the sleeping — so the jitter
/// distribution is unit-testable without a clock.
#[derive(Debug)]
pub struct ReconnectLadder {
    base: Duration,
    max: Duration,
    rung: Duration,
    rng: StdRng,
}

impl ReconnectLadder {
    /// A ladder climbing from `base` to `max`, jittered by `seed`.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        ReconnectLadder {
            base,
            max: max.max(base),
            rung: base,
            rng: StdRng::seed_from_u64(seed ^ 0xBACC_0FF5_EED5_0DA5),
        }
    }

    /// The next delay to sleep: equal-jitter on the current rung, then
    /// climb (doubling, capped at the ceiling).
    pub fn next_delay(&mut self) -> Duration {
        let jitter = 0.5 + 0.5 * self.rng.gen::<f64>();
        let delay = self.rung.mul_f64(jitter);
        self.rung = (self.rung * 2).min(self.max);
        delay
    }

    /// The rung the *next* `next_delay` will jitter around.
    pub fn rung(&self) -> Duration {
        self.rung
    }

    /// Back to the bottom rung (called on a successful handshake).
    pub fn reset(&mut self) {
        self.rung = self.base;
    }
}

/// Tunables of one node agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Simulated seconds each machine tick advances.
    pub tick_s: f64,
    /// Ticks per summary (the paper's `n`: window per report).
    pub summary_every: u32,
    /// Wall-clock pacing per tick (zero = free-running).
    pub pace: Duration,
    /// Real-time mode: pace each tick to exactly `tick_s` of wall time
    /// (absolute deadlines, drift-free), so one simulated second takes
    /// one wall second — the honest way to soak a live coordinator on
    /// the paper's real `t = 10 ms` sampling cadence. Overrides `pace`.
    pub timed: bool,
    /// First reconnect delay of the backoff ladder.
    pub backoff_base: Duration,
    /// Ceiling of the backoff ladder.
    pub backoff_max: Duration,
    /// Seed for the ladder's jitter (mixed with the node id, so a
    /// fleet sharing one config still spreads out).
    pub jitter_seed: u64,
    /// Declare the link dead when nothing — ceiling, heartbeat,
    /// anything — arrives for this long, and reconnect. Heartbeats
    /// from the coordinator make this time-bounded even on rounds that
    /// command the node nothing.
    pub link_timeout: Duration,
    /// Schema version to announce (tests speak wrong versions on
    /// purpose; everything real uses [`SCHEMA_VERSION`]).
    pub version: u32,
    /// Preferred wire codec. JSON is always advertised (it is the
    /// handshake encoding and the floor every peer speaks); preferring
    /// [`WireCodec::Binary`] additionally advertises the `FVS2` fast
    /// path, which the coordinator picks when it too prefers binary.
    pub codec: WireCodec,
    /// Wire-chaos injection on this agent's socket (quiet = pure
    /// passthrough).
    pub chaos: WireChaos,
    /// Causal span tracer: `node.apply` spans, one per ceiling applied
    /// to the machine.
    pub tracer: Tracer,
    /// Event journal (wire-fault events injected by `chaos` land
    /// here).
    pub telemetry: Telemetry,
}

impl AgentConfig {
    /// Paper-flavoured defaults: 10 ms ticks, summary every 10 ticks,
    /// 2 ms pacing, 50 ms → 800 ms backoff ladder.
    pub fn default_lan() -> Self {
        AgentConfig {
            tick_s: 0.01,
            summary_every: 10,
            pace: Duration::from_millis(2),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(800),
            jitter_seed: 0,
            link_timeout: Duration::from_secs(3),
            timed: false,
            version: SCHEMA_VERSION,
            codec: WireCodec::Binary,
            chaos: WireChaos::none(),
            tracer: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Enable or disable wall-clock real-time pacing (see
    /// [`AgentConfig::timed`]).
    pub fn with_timed(mut self, timed: bool) -> Self {
        self.timed = timed;
        self
    }

    /// Override the simulated tick length.
    pub fn with_tick_s(mut self, tick_s: f64) -> Self {
        self.tick_s = tick_s;
        self
    }

    /// Override the ticks-per-summary window.
    pub fn with_summary_every(mut self, ticks: u32) -> Self {
        self.summary_every = ticks.max(1);
        self
    }

    /// Override the wall-clock pacing.
    pub fn with_pace(mut self, pace: Duration) -> Self {
        self.pace = pace;
        self
    }

    /// Override the backoff ladder.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self
    }

    /// Seed the reconnect jitter.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Override the dead-link timeout.
    pub fn with_link_timeout(mut self, timeout: Duration) -> Self {
        self.link_timeout = timeout;
        self
    }

    /// Announce a different schema version (version-negotiation tests).
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Set the preferred wire codec (see [`AgentConfig::codec`]).
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Inject wire chaos on this agent's socket.
    pub fn with_chaos(mut self, chaos: WireChaos) -> Self {
        self.chaos = chaos;
        self
    }

    /// Attach a causal span tracer.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach an event journal.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn validate(&self) -> Result<(), FvsError> {
        if !(self.tick_s.is_finite() && self.tick_s > 0.0) {
            return Err(FvsError::config("tick_s must be finite and positive"));
        }
        if self.summary_every == 0 {
            return Err(FvsError::config("summary_every must be at least 1"));
        }
        if self.backoff_base > self.backoff_max {
            return Err(FvsError::config("backoff_base exceeds backoff_max"));
        }
        if self.link_timeout.is_zero() {
            return Err(FvsError::config("link_timeout must be positive"));
        }
        Ok(())
    }
}

/// What the agent thread hands back when it exits.
#[derive(Debug, Clone)]
pub struct AgentReport {
    /// The node this agent drove.
    pub node: usize,
    /// Summaries shipped upstream.
    pub summaries_sent: u64,
    /// Ceiling commands applied to the machine.
    pub ceilings_applied: u64,
    /// Times the connection was (re-)established after the first.
    pub reconnects: u64,
    /// Stale coordinators refused (handshake or heartbeat epoch below
    /// the highest this agent has acknowledged).
    pub epochs_fenced: u64,
    /// The coordinator refused our schema version.
    pub version_rejected: bool,
    /// Node power when the agent stopped (W).
    pub final_power_w: f64,
}

/// Live counters of a running agent, updated in place by the agent
/// thread and readable from any thread — the node binary's `/healthz`
/// endpoint reads these without joining the thread.
#[derive(Debug, Default)]
pub struct AgentStats {
    connected: AtomicBool,
    summaries_sent: AtomicU64,
    ceilings_applied: AtomicU64,
    reconnects: AtomicU64,
    epochs_fenced: AtomicU64,
    /// Latest node power as f64 bits.
    power_bits: AtomicU64,
    /// Codec id negotiated on the current connection (0 = none yet).
    codec_id: AtomicU64,
}

impl AgentStats {
    /// Currently connected (past a successful handshake).
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Summaries shipped upstream so far.
    pub fn summaries_sent(&self) -> u64 {
        self.summaries_sent.load(Ordering::SeqCst)
    }

    /// Ceiling commands applied to the machine so far.
    pub fn ceilings_applied(&self) -> u64 {
        self.ceilings_applied.load(Ordering::SeqCst)
    }

    /// Times the connection was re-established after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::SeqCst)
    }

    /// Stale coordinators fenced so far.
    pub fn epochs_fenced(&self) -> u64 {
        self.epochs_fenced.load(Ordering::SeqCst)
    }

    /// The node's power at the last summary window (W).
    pub fn power_w(&self) -> f64 {
        f64::from_bits(self.power_bits.load(Ordering::SeqCst))
    }

    /// The codec negotiated on the current connection, if any.
    pub fn negotiated_codec(&self) -> Option<WireCodec> {
        match self.codec_id.load(Ordering::SeqCst) as u8 {
            0 => None,
            id => Some(WireCodec::from_id(id)),
        }
    }
}

struct Flags {
    /// Orderly shutdown: send `Bye`, then exit.
    stop: AtomicBool,
    /// Crash simulation: drop everything on the floor and exit.
    kill: AtomicBool,
}

/// Handle to a running agent thread.
pub struct NodeAgentHandle {
    flags: Arc<Flags>,
    stats: Arc<AgentStats>,
    thread: JoinHandle<AgentReport>,
}

impl NodeAgentHandle {
    /// Whether the agent thread has already exited on its own (version
    /// refusal is the one self-terminating path).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// The agent's live counters (shareable; plain atomics).
    pub fn stats(&self) -> Arc<AgentStats> {
        Arc::clone(&self.stats)
    }

    /// Orderly shutdown: the agent says `Bye` and returns its report.
    pub fn stop(self) -> AgentReport {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("agent thread panicked")
    }

    /// Crash the agent: the socket just goes dead, no goodbye — from
    /// the coordinator's side this is indistinguishable from a node
    /// failure, which is the point.
    pub fn kill(self) -> AgentReport {
        self.flags.kill.store(true, Ordering::SeqCst);
        self.thread.join().expect("agent thread panicked")
    }
}

/// Spawns and owns one node-agent thread.
pub struct NodeAgent;

impl NodeAgent {
    /// Start an agent driving `node` against the coordinator at `addr`.
    pub fn spawn(
        node: ClusterNode,
        addr: impl Into<String>,
        config: AgentConfig,
    ) -> Result<NodeAgentHandle, FvsError> {
        config.validate()?;
        let addr = addr.into();
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            kill: AtomicBool::new(false),
        });
        let stats = Arc::new(AgentStats::default());
        let thread_flags = Arc::clone(&flags);
        let thread_stats = Arc::clone(&stats);
        let thread =
            std::thread::spawn(move || agent_loop(node, &addr, config, thread_flags, thread_stats));
        Ok(NodeAgentHandle {
            flags,
            stats,
            thread,
        })
    }
}

/// Sleep `total` in small slices so stop/kill stay responsive.
fn interruptible_sleep(total: Duration, flags: &Flags) {
    let slice = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if flags.stop.load(Ordering::SeqCst) || flags.kill.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

pub(crate) enum Handshake {
    /// Accepted; the coordinator's epoch (to remember as highest-seen)
    /// and the codec it chose from our advertisement.
    Accepted(u64, WireCodec),
    /// Refused over schema version: permanent, stop retrying.
    RefusedVersion,
    /// Refused (or acked) by a coordinator whose epoch is below our
    /// highest-seen: a stale survivor. Retry through the ladder — the
    /// *current* coordinator may come back on this address.
    Fenced,
    Dead,
}

/// The codec advertisement bitmask for a preference: JSON is always on
/// the table; preferring binary adds the `FVS2` bit.
pub(crate) fn advertised_codecs(prefer: WireCodec) -> u8 {
    match prefer {
        WireCodec::Json => CODEC_JSON_BIT,
        WireCodec::Binary => CODEC_ALL,
    }
}

/// Send `Hello`, wait briefly for the coordinator's verdict. On accept,
/// the transport's write codec is switched to the negotiated one.
pub(crate) fn handshake(
    transport: &mut Transport,
    node: usize,
    procs: usize,
    version: u32,
    last_epoch: u64,
    codecs: u8,
) -> Handshake {
    let hello = WireMsg::Hello {
        node,
        procs,
        version,
        last_epoch,
        codecs,
    };
    if transport.send(&hello).is_err() || transport.flush().is_err() {
        return Handshake::Dead;
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        match transport.fill() {
            Ok(FillStatus::Eof) | Err(_) => return Handshake::Dead,
            Ok(_) => {}
        }
        loop {
            match transport.next_msg() {
                Ok(Some(WireMsg::HelloAck {
                    accepted: true,
                    epoch,
                    codec,
                    ..
                })) => {
                    if epoch < last_epoch {
                        // An old-build coordinator (epoch 0) — or a
                        // stale one that doesn't know to refuse us.
                        // Either way, not the coordinator we last
                        // obeyed: fence it ourselves.
                        return Handshake::Fenced;
                    }
                    // An unknown codec id from a newer peer degrades to
                    // JSON — the floor both sides always speak.
                    let chosen = WireCodec::from_id(codec);
                    transport.set_codec(chosen);
                    return Handshake::Accepted(epoch, chosen);
                }
                Ok(Some(WireMsg::HelloAck {
                    accepted: false,
                    version: their_version,
                    epoch,
                    ..
                })) => {
                    if their_version == version && epoch < last_epoch {
                        return Handshake::Fenced;
                    }
                    return Handshake::RefusedVersion;
                }
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => return Handshake::Dead,
            }
        }
    }
    Handshake::Dead
}

fn agent_loop(
    mut node: ClusterNode,
    addr: &str,
    config: AgentConfig,
    flags: Arc<Flags>,
    stats: Arc<AgentStats>,
) -> AgentReport {
    let node_id = node.id;
    let procs = node.machine().num_cores();
    let mut report = AgentReport {
        node: node_id,
        summaries_sent: 0,
        ceilings_applied: 0,
        reconnects: 0,
        epochs_fenced: 0,
        version_rejected: false,
        final_power_w: 0.0,
    };
    let mut ladder = ReconnectLadder::new(
        config.backoff_base,
        config.backoff_max,
        config.jitter_seed ^ (node_id as u64).wrapping_mul(0x517C_C1B7_2722_0A95),
    );
    let mut ever_connected = false;
    // Highest coordinator epoch ever acknowledged: the fence.
    let mut last_epoch = 0u64;
    let chaos_start = Instant::now();
    let mut connect_seq = 0u64;
    let fence = |report: &mut AgentReport| {
        report.epochs_fenced += 1;
        stats.epochs_fenced.fetch_add(1, Ordering::SeqCst);
    };

    'outer: loop {
        if flags.stop.load(Ordering::SeqCst) || flags.kill.load(Ordering::SeqCst) {
            break;
        }
        let raw = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                // The reconnect ladder: jittered base, 2×, 4×, … cap.
                interruptible_sleep(ladder.next_delay(), &flags);
                continue;
            }
        };
        connect_seq += 1;
        let stream = ChaosStream::wrap(
            raw,
            &config.chaos,
            ChaosSide::Agent,
            connect_seq,
            chaos_start,
            config.telemetry.clone(),
            None,
        );
        stream.set_node(node_id);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        let mut transport = Transport::new(stream);
        match handshake(
            &mut transport,
            node_id,
            procs,
            config.version,
            last_epoch,
            advertised_codecs(config.codec),
        ) {
            Handshake::Accepted(epoch, codec) => {
                last_epoch = epoch;
                stats.codec_id.store(codec.id() as u64, Ordering::SeqCst);
            }
            Handshake::RefusedVersion => {
                // A version refusal is permanent: retrying with the
                // same schema can never succeed, so don't storm.
                report.version_rejected = true;
                break 'outer;
            }
            Handshake::Fenced => {
                fence(&mut report);
                interruptible_sleep(ladder.next_delay(), &flags);
                continue;
            }
            Handshake::Dead => {
                interruptible_sleep(ladder.next_delay(), &flags);
                continue;
            }
        }
        if ever_connected {
            report.reconnects += 1;
            stats.reconnects.fetch_add(1, Ordering::SeqCst);
        }
        ever_connected = true;
        stats.connected.store(true, Ordering::SeqCst);
        ladder.reset();

        let mut ticks = 0u32;
        // Dead-link detection: any frame (ceiling or heartbeat) feeds
        // this; silence past `link_timeout` forces a reconnect.
        let mut last_rx = Instant::now();
        // Real-time mode: anchor the pacer at connection time so every
        // tick lands on an absolute deadline from here on out.
        let mut pacer = config
            .timed
            .then(|| Pacer::new(Duration::from_secs_f64(config.tick_s)));
        loop {
            if flags.kill.load(Ordering::SeqCst) {
                // Crash: no Bye, the socket just stops.
                break 'outer;
            }
            if flags.stop.load(Ordering::SeqCst) {
                transport.send_best_effort(&WireMsg::Bye { node: node_id });
                break 'outer;
            }

            node.tick(config.tick_s);
            ticks += 1;
            if ticks.is_multiple_of(config.summary_every) {
                let summary = node.summarize();
                stats
                    .power_bits
                    .store(summary.power_w.to_bits(), Ordering::SeqCst);
                if transport.send(&WireMsg::Summary(summary)).is_err() || transport.flush().is_err()
                {
                    // Link dropped mid-summary: climb the ladder.
                    break;
                }
                report.summaries_sent += 1;
                stats.summaries_sent.fetch_add(1, Ordering::SeqCst);
            } else {
                // Keep chaos-delayed frames moving between summaries.
                if transport.flush().is_err() {
                    break;
                }
            }

            // Drain whatever ceilings arrived; the 1 ms read timeout
            // doubles as pacing slack.
            let mut link_dead = false;
            match transport.fill() {
                Ok(FillStatus::Eof) => link_dead = true, // coordinator went away
                Ok(FillStatus::Progress) => {
                    last_rx = Instant::now();
                    loop {
                        match transport.next_msg() {
                            Ok(Some(WireMsg::Ceiling(cmd))) => {
                                if cmd.node == node_id {
                                    let _apply = config.tracer.span("node.apply");
                                    node.apply(&cmd.freqs);
                                    report.ceilings_applied += 1;
                                    stats.ceilings_applied.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            Ok(Some(WireMsg::Heartbeat { epoch })) => {
                                if epoch < last_epoch {
                                    // A stale coordinator is feeding
                                    // this link: fence mid-connection.
                                    fence(&mut report);
                                    link_dead = true;
                                    break;
                                }
                                last_epoch = epoch;
                            }
                            Ok(Some(_)) => {}
                            Ok(None) => break,
                            Err(_) => {
                                // Desynchronised downlink: reconnect.
                                link_dead = true;
                                break;
                            }
                        }
                    }
                }
                Ok(FillStatus::Idle) => {}
                Err(_) => link_dead = true,
            }
            if last_rx.elapsed() > config.link_timeout {
                link_dead = true;
            }
            if link_dead {
                break;
            }

            if let Some(pacer) = pacer.as_mut() {
                pacer.pace();
            } else if !config.pace.is_zero() {
                std::thread::sleep(config.pace);
            }
        }
        // Only reachable when the link dropped (exits via 'outer skip
        // this): reflect the disconnect before climbing the ladder.
        stats.connected.store(false, Ordering::SeqCst);
        stats.codec_id.store(0, Ordering::SeqCst);
    }

    stats.connected.store(false, Ordering::SeqCst);
    report.final_power_w = node.power_w();
    stats
        .power_bits
        .store(report.final_power_w.to_bits(), Ordering::SeqCst);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_climbs_doubles_and_caps() {
        let mut ladder =
            ReconnectLadder::new(Duration::from_millis(50), Duration::from_millis(400), 7);
        let expected_rungs = [50u64, 100, 200, 400, 400, 400];
        for &rung_ms in &expected_rungs {
            let rung = Duration::from_millis(rung_ms);
            assert_eq!(ladder.rung(), rung);
            let d = ladder.next_delay();
            assert!(
                d >= rung / 2 && d <= rung,
                "delay {d:?} outside [{rung:?}/2, {rung:?}]"
            );
        }
        ladder.reset();
        assert_eq!(ladder.rung(), Duration::from_millis(50));
    }

    /// Satellite: the jitter actually spreads a fleet out. Across many
    /// seeds the first-rung delays must cover the [base/2, base] range
    /// instead of clustering — we check both ends of the range get
    /// hits and that not everyone draws the same delay.
    #[test]
    fn jitter_spreads_distinct_seeds_across_the_rung() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(1);
        let delays: Vec<Duration> = (0u64..64)
            .map(|seed| ReconnectLadder::new(base, max, seed).next_delay())
            .collect();
        for d in &delays {
            assert!(*d >= base / 2 && *d <= base);
        }
        let lower_half = delays.iter().filter(|d| **d < base * 3 / 4).count();
        let upper_half = delays.len() - lower_half;
        assert!(
            lower_half >= 10 && upper_half >= 10,
            "jitter is not spreading: {lower_half} low vs {upper_half} high"
        );
        let first = delays[0];
        assert!(
            delays.iter().any(|d| *d != first),
            "every seed drew the same delay"
        );
    }

    #[test]
    fn same_seed_same_jitter_sequence() {
        let mk = || {
            let mut l =
                ReconnectLadder::new(Duration::from_millis(80), Duration::from_millis(640), 42);
            (0..6).map(|_| l.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
