//! Coordinator crash-recovery snapshots.
//!
//! A [`Snapshot`] captures everything the coordinator must not forget
//! across a crash: the fencing epoch, the *enforced* budget, each
//! node's last summary (with its age), the last commanded ceiling, the
//! dead flag and learned shape, and any open budget-deadline episode.
//! [`SnapshotStore`] persists it atomically (temp file + rename) so a
//! crash mid-write leaves the previous snapshot intact.
//!
//! On-disk format: one header line `FVSSNAP v1 <fnv1a64-hex>\n`
//! followed by the body JSON. The checksum covers the exact body
//! bytes, so truncation or a single flipped bit is detected and the
//! whole file is rejected — the caller then cold-starts with
//! worst-case charging, which is always safe, merely slower to
//! converge. Every decode failure is a clean [`FvsError`]; nothing in
//! this module panics on hostile bytes.
//!
//! Floats: the wire codec maps non-finite floats to JSON `null`, which
//! is the right lossy choice for summaries in flight but would erase
//! the distinction between an unlimited budget (`+inf`) and a poisoned
//! one (`NaN`) at rest. Snapshot-level floats therefore use a tagged
//! encoding — finite numbers as numbers, `"inf"` / `"-inf"` as
//! strings, NaN as `null` — and round-trip bit-class-exactly. Floats
//! *inside* a stored summary keep wire parity (non-finite → NaN).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::FvsError;
use crate::wire;
use fvs_cluster::{NodeRestore, NodeSummary};
use fvs_telemetry::OpenEpisode;
use serde::{Serialize, Value};

/// Snapshot format version (the `v1` in the header line).
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_PREFIX: &str = "FVSSNAP v1 ";

/// Per-node persisted state: [`NodeRestore`] plus the summary's age at
/// snapshot time, so the restorer can re-stamp it against its own
/// clock (absolute coordinator timestamps do not survive a restart).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotNode {
    /// Last accepted summary, if any.
    pub summary: Option<NodeSummary>,
    /// How old that summary was when the snapshot was taken, seconds.
    pub age_s: f64,
    /// Power implied by the last commanded frequency vector.
    pub commanded_w: f64,
    /// Whether the node had been declared dead.
    pub dead: bool,
    /// Learned processor count (`None` until a summary revealed it).
    pub shape: Option<usize>,
}

impl SnapshotNode {
    /// The restore payload for [`fvs_cluster::GlobalCoordinator`].
    pub fn to_restore(&self) -> NodeRestore {
        NodeRestore {
            summary: self.summary.clone(),
            commanded_w: self.commanded_w,
            dead: self.dead,
            shape: self.shape,
        }
    }
}

/// An open budget-deadline episode, ages instead of absolute times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotEpisode {
    /// Seconds between the budget drop and the snapshot.
    pub age_s: f64,
    /// The dropped-to budget being chased.
    pub budget_w: f64,
    /// Scheduling rounds spent inside the episode so far.
    pub rounds: u32,
    /// Whether the deadline-violation event already fired.
    pub violation_emitted: bool,
}

impl SnapshotEpisode {
    /// Capture an exported tracker episode at `now_s` coordinator time.
    pub fn from_open(ep: &OpenEpisode, now_s: f64) -> Self {
        SnapshotEpisode {
            age_s: (now_s - ep.dropped_at_s).max(0.0),
            budget_w: ep.budget_w,
            rounds: ep.rounds,
            violation_emitted: ep.violation_emitted,
        }
    }

    /// Rebase onto a fresh clock where `now_s` is the restore instant.
    pub fn to_open(&self, now_s: f64) -> OpenEpisode {
        OpenEpisode {
            dropped_at_s: now_s - self.age_s.max(0.0),
            budget_w: self.budget_w,
            rounds: self.rounds,
            violation_emitted: self.violation_emitted,
        }
    }
}

/// Versioned, checksummed image of the coordinator's volatile state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Fencing epoch the coordinator was serving when captured.
    pub epoch: u64,
    /// Budget being enforced (the write-ahead fact: persisted *before*
    /// the scheduler acts on a change, so a crash can never un-enforce
    /// a drop).
    pub budget_w: f64,
    /// Coordinator clock at capture, seconds since its start.
    pub taken_at_s: f64,
    /// Scheduling rounds completed.
    pub rounds: u64,
    /// Per-node state, indexed by node id.
    pub nodes: Vec<SnapshotNode>,
    /// Open ΔT episode, if a budget drop was still being chased.
    pub episode: Option<SnapshotEpisode>,
}

/// FNV-1a 64-bit over the body bytes — tiny, dependency-free, and
/// plenty to catch truncation and bit rot (this is integrity checking
/// against accidents, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Tagged float encoding: finite → number, ±inf → string, NaN → null.
fn float_value(x: f64) -> Value {
    if x.is_finite() {
        Value::Float(x)
    } else if x.is_infinite() {
        Value::String(if x > 0.0 { "inf" } else { "-inf" }.to_string())
    } else {
        Value::Null
    }
}

fn float_field(v: &Value, key: &str) -> Result<f64, FvsError> {
    match v.get(key) {
        None => Err(FvsError::wire(format!("snapshot: missing field `{key}`"))),
        Some(Value::Null) => Ok(f64::NAN),
        Some(Value::String(s)) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(FvsError::wire(format!(
                "snapshot: field `{key}` has unknown float tag `{other}`"
            ))),
        },
        Some(x) => x
            .as_f64()
            .ok_or_else(|| FvsError::wire(format!("snapshot: field `{key}` is not a number"))),
    }
}

fn node_value(n: &SnapshotNode) -> Value {
    wire::obj(vec![
        (
            "summary",
            match &n.summary {
                Some(s) => s.to_json(),
                None => Value::Null,
            },
        ),
        ("age_s", float_value(n.age_s)),
        ("commanded_w", float_value(n.commanded_w)),
        ("dead", Value::Bool(n.dead)),
        (
            "shape",
            match n.shape {
                Some(p) => Value::UInt(p as u64),
                None => Value::Null,
            },
        ),
    ])
}

fn decode_node(v: &Value) -> Result<SnapshotNode, FvsError> {
    if !v.is_object() {
        return Err(FvsError::wire("snapshot: node entry is not an object"));
    }
    let summary = match v.get("summary") {
        None | Some(Value::Null) => None,
        Some(s) => Some(wire::decode_summary(s)?),
    };
    let shape = match v.get("shape") {
        None | Some(Value::Null) => None,
        Some(s) => Some(
            s.as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| FvsError::wire("snapshot: field `shape` is not an index"))?,
        ),
    };
    Ok(SnapshotNode {
        summary,
        age_s: float_field(v, "age_s")?,
        commanded_w: float_field(v, "commanded_w")?,
        dead: wire::bool_field(v, "dead")?,
        shape,
    })
}

fn episode_value(ep: &SnapshotEpisode) -> Value {
    wire::obj(vec![
        ("age_s", float_value(ep.age_s)),
        ("budget_w", float_value(ep.budget_w)),
        ("rounds", Value::UInt(u64::from(ep.rounds))),
        ("violation_emitted", Value::Bool(ep.violation_emitted)),
    ])
}

fn decode_episode(v: &Value) -> Result<SnapshotEpisode, FvsError> {
    if !v.is_object() {
        return Err(FvsError::wire("snapshot: episode is not an object"));
    }
    let rounds = v
        .get("rounds")
        .and_then(Value::as_u64)
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| FvsError::wire("snapshot: episode `rounds` is not a u32"))?;
    Ok(SnapshotEpisode {
        age_s: float_field(v, "age_s")?,
        budget_w: float_field(v, "budget_w")?,
        rounds,
        violation_emitted: wire::bool_field(v, "violation_emitted")?,
    })
}

impl Snapshot {
    /// Encode to the on-disk representation (header line + body JSON).
    pub fn encode(&self) -> Result<String, FvsError> {
        let body = wire::obj(vec![
            ("snapshot_version", Value::UInt(u64::from(SNAPSHOT_VERSION))),
            ("epoch", Value::UInt(self.epoch)),
            ("budget_w", float_value(self.budget_w)),
            ("taken_at_s", float_value(self.taken_at_s)),
            ("rounds", Value::UInt(self.rounds)),
            (
                "nodes",
                Value::Array(self.nodes.iter().map(node_value).collect()),
            ),
            (
                "episode",
                match &self.episode {
                    Some(ep) => episode_value(ep),
                    None => Value::Null,
                },
            ),
        ]);
        let body = serde_json::to_string(&body)?;
        Ok(format!(
            "{HEADER_PREFIX}{:016x}\n{body}",
            fnv1a64(body.as_bytes())
        ))
    }

    /// Decode the on-disk representation, verifying the checksum. Any
    /// defect — bad header, wrong version, checksum mismatch (bit flip
    /// or truncation), malformed JSON, missing fields — is a clean
    /// `Err`, never a panic.
    pub fn decode(text: &str) -> Result<Snapshot, FvsError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| FvsError::wire("snapshot: missing header line"))?;
        let sum_hex = header
            .strip_prefix(HEADER_PREFIX)
            .ok_or_else(|| FvsError::wire("snapshot: bad or unsupported header"))?;
        let want = u64::from_str_radix(sum_hex, 16)
            .map_err(|_| FvsError::wire("snapshot: checksum is not hex"))?;
        let got = fnv1a64(body.as_bytes());
        if want != got {
            return Err(FvsError::wire(format!(
                "snapshot: checksum mismatch (want {want:016x}, got {got:016x}) — \
                 file is truncated or corrupt"
            )));
        }
        let v = serde_json::from_str(body)?;
        let version = v
            .get("snapshot_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| FvsError::wire("snapshot: missing `snapshot_version`"))?;
        if version != u64::from(SNAPSHOT_VERSION) {
            return Err(FvsError::wire(format!(
                "snapshot: version {version} is not supported (this build reads v{SNAPSHOT_VERSION})"
            )));
        }
        let epoch = v
            .get("epoch")
            .and_then(Value::as_u64)
            .ok_or_else(|| FvsError::wire("snapshot: missing `epoch`"))?;
        let rounds = v
            .get("rounds")
            .and_then(Value::as_u64)
            .ok_or_else(|| FvsError::wire("snapshot: missing `rounds`"))?;
        let nodes = v
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| FvsError::wire("snapshot: `nodes` is not an array"))?
            .iter()
            .map(decode_node)
            .collect::<Result<Vec<_>, _>>()?;
        let episode = match v.get("episode") {
            None | Some(Value::Null) => None,
            Some(e) => Some(decode_episode(e)?),
        };
        Ok(Snapshot {
            epoch,
            budget_w: float_field(&v, "budget_w")?,
            taken_at_s: float_field(&v, "taken_at_s")?,
            rounds,
            nodes,
            episode,
        })
    }
}

/// Atomic file persistence for [`Snapshot`]s.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    path: PathBuf,
}

impl SnapshotStore {
    /// A store writing to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SnapshotStore { path: path.into() }
    }

    /// Where snapshots land.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persist atomically: write a sibling temp file, fsync, rename.
    /// A crash at any point leaves either the old snapshot or the new
    /// one — never a torn file (and a torn rename target would fail
    /// the checksum anyway).
    pub fn save(&self, snapshot: &Snapshot) -> Result<(), FvsError> {
        let text = snapshot.encode()?;
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    /// Load and verify the snapshot. `Err` covers both "no file" and
    /// "file is damaged"; the caller treats either as a cold start.
    pub fn load(&self) -> Result<Snapshot, FvsError> {
        let text = fs::read_to_string(&self.path)?;
        Snapshot::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_model::{CpiModel, FreqMhz};

    fn sample_summary(node: usize) -> NodeSummary {
        NodeSummary {
            node,
            sent_at_s: 4.5,
            models: vec![
                Some(CpiModel {
                    cpi0: 1.2,
                    mem_time_per_instr: 3.4e-9,
                }),
                None,
            ],
            idle: vec![false, true],
            current: vec![FreqMhz(1400), FreqMhz(1000)],
            power_w: 231.5,
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            epoch: 3,
            budget_w: 1200.0,
            taken_at_s: 17.25,
            rounds: 42,
            nodes: vec![
                SnapshotNode {
                    summary: Some(sample_summary(0)),
                    age_s: 0.75,
                    commanded_w: 410.0,
                    dead: false,
                    shape: Some(2),
                },
                SnapshotNode {
                    summary: None,
                    age_s: f64::INFINITY,
                    commanded_w: 0.0,
                    dead: true,
                    shape: None,
                },
            ],
            episode: Some(SnapshotEpisode {
                age_s: 1.5,
                budget_w: 900.0,
                rounds: 7,
                violation_emitted: false,
            }),
        }
    }

    #[test]
    fn full_snapshot_round_trips() {
        let snap = sample_snapshot();
        let text = snap.encode().unwrap();
        let back = Snapshot::decode(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn non_finite_top_level_floats_survive_distinctly() {
        let mut snap = sample_snapshot();
        snap.budget_w = f64::INFINITY;
        snap.nodes[0].commanded_w = f64::NEG_INFINITY;
        snap.nodes[0].age_s = f64::NAN;
        let back = Snapshot::decode(&snap.encode().unwrap()).unwrap();
        assert_eq!(back.budget_w, f64::INFINITY);
        assert_eq!(back.nodes[0].commanded_w, f64::NEG_INFINITY);
        assert!(back.nodes[0].age_s.is_nan());
    }

    #[test]
    fn bit_flips_and_truncation_are_rejected_cleanly() {
        let text = sample_snapshot().encode().unwrap();
        // Flip one bit in every body position: all must fail, none may
        // panic. (Header positions may legitimately still parse if the
        // flip lands in the checksum hex and happens to re-match —
        // impossible here, but we only assert on body flips.)
        let body_start = text.find('\n').unwrap() + 1;
        let bytes = text.as_bytes();
        for at in (body_start..bytes.len()).step_by(7) {
            let mut corrupt = bytes.to_vec();
            corrupt[at] ^= 0x20;
            let s = String::from_utf8_lossy(&corrupt).into_owned();
            assert!(Snapshot::decode(&s).is_err(), "flip at {at} not caught");
        }
        for keep in [0, body_start - 1, body_start + 5, bytes.len() - 1] {
            assert!(Snapshot::decode(&text[..keep]).is_err());
        }
    }

    #[test]
    fn foreign_versions_and_headers_are_refused() {
        let snap = sample_snapshot();
        let text = snap.encode().unwrap();
        let forged = text.replace("\"snapshot_version\":1", "\"snapshot_version\":2");
        // Version swap changes the body → checksum catches it first;
        // re-seal with a fresh checksum to reach the version check.
        let body = forged.split_once('\n').unwrap().1;
        let resealed = format!("{HEADER_PREFIX}{:016x}\n{body}", fnv1a64(body.as_bytes()));
        let err = Snapshot::decode(&resealed).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
        assert!(Snapshot::decode("GARBAGE").is_err());
        assert!(Snapshot::decode("").is_err());
    }

    #[test]
    fn store_saves_atomically_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("fvs-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let store = SnapshotStore::new(dir.join("coord.snap"));
        assert!(store.load().is_err(), "no file yet");
        let mut snap = sample_snapshot();
        store.save(&snap).unwrap();
        assert_eq!(store.load().unwrap(), snap);
        snap.epoch = 4;
        snap.budget_w = 800.0;
        store.save(&snap).unwrap();
        assert_eq!(store.load().unwrap().epoch, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn episode_rebases_across_clocks() {
        let ep = OpenEpisode {
            dropped_at_s: 10.0,
            budget_w: 900.0,
            rounds: 3,
            violation_emitted: true,
        };
        let snap_ep = SnapshotEpisode::from_open(&ep, 11.5);
        assert!((snap_ep.age_s - 1.5).abs() < 1e-12);
        let back = snap_ep.to_open(0.25);
        assert!((back.dropped_at_s - (0.25 - 1.5)).abs() < 1e-12);
        assert_eq!(back.rounds, 3);
        assert!(back.violation_emitted);
    }
}
