//! The unified transport: one connection's codec, chaos, framing and
//! queueing state behind a single API.
//!
//! Historically the coordinator and agent each hand-rolled their frame
//! plumbing — a `ChaosStream` here, a `FrameReader` there, `write_all`
//! calls sprinkled through both loops. [`Transport`] owns all of it for
//! one connection:
//!
//! * **Codec seam** — frames go out under the negotiated [`WireCodec`]
//!   (handshake frames always JSON, see [`encode_with`]); incoming
//!   frames decode by magic, so both codecs are always readable.
//! * **Chaos as a layer** — outgoing frames take their fault decision
//!   from [`ChaosStream::decide_write_fault`] at enqueue time, which is
//!   what makes fault injection compose with nonblocking writes: a
//!   partial write retried later must not re-roll the dice, and a
//!   chaos-delayed frame must not block frames behind it.
//! * **Queueing** — writes never block. Bytes that don't fit the socket
//!   buffer wait in an outbound queue with a partial-write offset;
//!   [`Transport::flush`] drains what the socket will take. On a
//!   blocking socket (the standalone agent) the drain is total, so the
//!   old semantics hold unchanged.
//!
//! The same type serves both ends: the coordinator's reactor drives
//! thousands of these off readiness events; each agent drives one off
//! its tick loop.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::time::Instant;

use crate::chaos::{ChaosStream, WriteFault};
use crate::error::FvsError;
use crate::wire::{encode_with, FrameFault, FrameReader, WireCodec, WireMsg};

/// What [`Transport::fill`] observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// Bytes arrived and were buffered; call [`Transport::next_msg`].
    Progress,
    /// Nothing available right now (`WouldBlock` / read timeout).
    Idle,
    /// The peer closed the connection (orderly EOF).
    Eof,
}

/// One connection's transport state. See the module docs.
#[derive(Debug)]
pub struct Transport {
    stream: ChaosStream,
    reader: FrameReader,
    codec: WireCodec,
    /// Complete frames (post-fault-decision) awaiting socket space.
    outq: VecDeque<Vec<u8>>,
    /// Bytes of `outq.front()` already written.
    out_pos: usize,
    /// Total bytes across `outq` (backpressure accounting).
    queued: usize,
    /// Chaos-delayed frames and their due times, promoted into `outq`
    /// by [`Transport::flush`]. Kept separate so a held frame never
    /// blocks the frames behind it.
    delayed: Vec<(Instant, Vec<u8>)>,
    /// Frames successfully enqueued (i.e. sent, as far as the caller
    /// is concerned — chaos drops count, since the caller can't tell).
    frames_tx: u64,
    /// Total bytes [`Transport::fill`] has read off the socket.
    bytes_rx: u64,
}

impl Transport {
    /// Wrap a connection. The write codec starts as JSON — the only
    /// encoding legal before negotiation completes.
    pub fn new(stream: ChaosStream) -> Self {
        Transport {
            stream,
            reader: FrameReader::new(),
            codec: WireCodec::Json,
            outq: VecDeque::new(),
            out_pos: 0,
            queued: 0,
            delayed: Vec::new(),
            frames_tx: 0,
            bytes_rx: 0,
        }
    }

    /// The underlying chaos-wrapped socket (for `set_node`,
    /// `peer_addr`, timeouts and shutdown).
    pub fn stream(&self) -> &ChaosStream {
        &self.stream
    }

    /// Switch the write codec once negotiation picks one. Reads are
    /// unaffected — the frame magic decides per frame.
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = codec;
    }

    /// The negotiated write codec.
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// Frames handed to [`Transport::send`] so far.
    pub fn frames_tx(&self) -> u64 {
        self.frames_tx
    }

    /// Total bytes read off the socket so far (metrics delta source).
    pub fn bytes_rx(&self) -> u64 {
        self.bytes_rx
    }

    /// Bytes sitting in the outbound queue (excluding delayed frames).
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Whether [`Transport::flush`] has socket work to do right now —
    /// the reactor's cue to poll for write readiness.
    pub fn wants_write(&self) -> bool {
        !self.outq.is_empty()
    }

    /// When the earliest chaos-delayed frame comes due, if any — the
    /// cue to call [`Transport::flush`] again even without new sends.
    pub fn next_delay_due(&self) -> Option<Instant> {
        self.delayed.iter().map(|(due, _)| *due).min()
    }

    /// Encode `msg` under the negotiated codec, take the chaos fault
    /// decision, and queue the surviving bytes. Never blocks; call
    /// [`Transport::flush`] to move the queue onto the socket.
    ///
    /// An `Err` means the connection is unusable (encode failure or a
    /// chaos reset that already shut the socket down).
    pub fn send(&mut self, msg: &WireMsg) -> Result<(), FvsError> {
        let frame = encode_with(msg, self.codec)?;
        self.frames_tx += 1;
        match self.stream.decide_write_fault(&frame) {
            WriteFault::Deliver => self.enqueue(frame),
            WriteFault::Drop => {}
            WriteFault::Corrupt(bytes) => self.enqueue(bytes),
            WriteFault::Duplicate => {
                self.enqueue(frame.clone());
                self.enqueue(frame);
            }
            WriteFault::Delay(hold) => self.delayed.push((Instant::now() + hold, frame)),
            WriteFault::Reset => {
                return Err(FvsError::Io(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos reset the connection",
                )))
            }
        }
        Ok(())
    }

    fn enqueue(&mut self, bytes: Vec<u8>) {
        self.queued += bytes.len();
        self.outq.push_back(bytes);
    }

    /// Promote due delayed frames, then write as much of the queue as
    /// the socket accepts. On a nonblocking socket this returns at
    /// `WouldBlock` with the remainder queued; on a blocking socket it
    /// drains everything promoted. Errors mean the connection is dead.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.delayed.is_empty() {
            let now = Instant::now();
            let mut i = 0;
            while i < self.delayed.len() {
                if self.delayed[i].0 <= now {
                    let (_, frame) = self.delayed.remove(i);
                    self.enqueue(frame);
                } else {
                    i += 1;
                }
            }
        }
        while let Some(front) = self.outq.front() {
            match self.stream.write_raw(&front[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.out_pos += n;
                    if self.out_pos == front.len() {
                        self.queued -= front.len();
                        self.out_pos = 0;
                        self.outq.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Read whatever the socket has into the frame buffer. Loops until
    /// the socket runs dry (`WouldBlock` or a read timeout), the peer
    /// closes, or an error surfaces.
    pub fn fill(&mut self) -> io::Result<FillStatus> {
        let mut buf = [0u8; 4096];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut buf) {
                // EOF right after fresh bytes (peer wrote, then closed):
                // report the progress first so the caller parses what
                // arrived; the next call reports the EOF.
                Ok(0) if progressed => return Ok(FillStatus::Progress),
                Ok(0) => return Ok(FillStatus::Eof),
                Ok(n) => {
                    self.reader.feed(&buf[..n]);
                    self.bytes_rx += n as u64;
                    progressed = true;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(if progressed {
                        FillStatus::Progress
                    } else {
                        FillStatus::Idle
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Parse the next buffered frame; `Ok(None)` means more bytes are
    /// needed. On `Err`, [`Transport::last_fault`] (and its length and
    /// codec companions) classify the failure for telemetry.
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, FvsError> {
        self.reader.next_frame()
    }

    /// Classification of the most recent [`Transport::next_msg`] error.
    pub fn last_fault(&self) -> Option<FrameFault> {
        self.reader.last_fault()
    }

    /// Observed length of the faulting frame (see
    /// [`FrameReader::last_fault_len`]).
    pub fn last_fault_len(&self) -> u32 {
        self.reader.last_fault_len()
    }

    /// Codec id of the faulting frame (see
    /// [`FrameReader::last_fault_codec`]).
    pub fn last_fault_codec(&self) -> u8 {
        self.reader.last_fault_codec()
    }

    /// Best-effort goodbye: send + flush, ignoring failures (the peer
    /// may already be gone).
    pub fn send_best_effort(&mut self, msg: &WireMsg) {
        let _ = self.send(msg);
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosSide, WireChaos};
    use crate::wire::SCHEMA_VERSION;
    use fvs_faults::WireFaultPlan;
    use fvs_telemetry::Telemetry;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn transport_pair(chaos: &WireChaos) -> (Transport, Transport) {
        let (a, b) = pair();
        let tx = Transport::new(ChaosStream::wrap(
            a,
            chaos,
            ChaosSide::Agent,
            0,
            Instant::now(),
            Telemetry::disabled(),
            None,
        ));
        let rx = Transport::new(ChaosStream::passthrough(b));
        (tx, rx)
    }

    fn recv_one(rx: &mut Transport) -> WireMsg {
        let deadline = Instant::now() + Duration::from_secs(5);
        rx.stream()
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        while Instant::now() < deadline {
            if let Some(msg) = rx.next_msg().unwrap() {
                return msg;
            }
            let _ = rx.fill().unwrap();
        }
        panic!("no frame within deadline");
    }

    #[test]
    fn frames_cross_in_both_codecs() {
        let (mut tx, mut rx) = transport_pair(&WireChaos::none());
        tx.send(&WireMsg::Heartbeat { epoch: 1 }).unwrap();
        tx.flush().unwrap();
        assert_eq!(recv_one(&mut rx), WireMsg::Heartbeat { epoch: 1 });

        tx.set_codec(WireCodec::Binary);
        tx.send(&WireMsg::Heartbeat { epoch: 2 }).unwrap();
        tx.flush().unwrap();
        // The receiver never negotiated binary — the magic carries it.
        assert_eq!(recv_one(&mut rx), WireMsg::Heartbeat { epoch: 2 });
    }

    #[test]
    fn nonblocking_sender_queues_past_a_full_socket() {
        let (mut tx, mut rx) = transport_pair(&WireChaos::none());
        tx.stream().set_nonblocking(true).unwrap();
        // Stuff the socket until writes stop landing, then some more.
        let msg = WireMsg::Hello {
            node: 1,
            procs: 64,
            version: SCHEMA_VERSION,
            last_epoch: 0,
            codecs: crate::wire::CODEC_ALL,
        };
        let mut sent = 0u64;
        while tx.queued_bytes() == 0 && sent < 200_000 {
            tx.send(&msg).unwrap();
            tx.flush().unwrap();
            sent += 1;
        }
        assert!(tx.queued_bytes() > 0, "loopback buffers are not infinite");
        for _ in 0..100 {
            tx.send(&msg).unwrap();
        }
        sent += 100;
        // Drain the receiver; the sender's queue must fully unwind.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = 0u64;
        rx.stream()
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        while got < sent && Instant::now() < deadline {
            tx.flush().unwrap();
            let _ = rx.fill().unwrap();
            while let Some(m) = rx.next_msg().unwrap() {
                assert_eq!(m, msg);
                got += 1;
            }
        }
        assert_eq!(got, sent);
        assert_eq!(tx.queued_bytes(), 0);
    }

    /// A chaos-delayed frame must not block frames sent after it — the
    /// transport reorders (that's what a delay fault *means*), and the
    /// held frame arrives once due.
    #[test]
    fn delayed_frames_do_not_block_the_queue() {
        let chaos = WireChaos::new(
            WireFaultPlan {
                delay_rate: 1.0,
                delay_s: 0.08,
                ..WireFaultPlan::none()
            },
            11,
        );
        let (mut tx, mut rx) = transport_pair(&chaos);
        tx.send(&WireMsg::Heartbeat { epoch: 1 }).unwrap();
        tx.flush().unwrap();
        assert!(tx.next_delay_due().is_some());
        assert!(!tx.wants_write(), "held frame must not occupy the queue");
        std::thread::sleep(Duration::from_millis(120));
        tx.flush().unwrap();
        assert_eq!(recv_one(&mut rx), WireMsg::Heartbeat { epoch: 1 });
        assert!(tx.next_delay_due().is_none());
    }

    /// Chaos reset surfaces as a send error and the socket is dead.
    #[test]
    fn chaos_reset_surfaces_on_send() {
        let chaos = WireChaos::new(
            WireFaultPlan {
                reset_rate: 1.0,
                ..WireFaultPlan::none()
            },
            3,
        );
        let (mut tx, _rx) = transport_pair(&chaos);
        let err = tx.send(&WireMsg::Heartbeat { epoch: 1 }).unwrap_err();
        assert!(matches!(err, FvsError::Io(_)), "{err}");
    }

    /// Same plan + seed ⇒ the enqueue-time fault decisions match the
    /// blocking `Write` path's, frame for frame (shared RNG draws).
    #[test]
    fn fault_decisions_match_blocking_path() {
        let plan = WireFaultPlan {
            drop_rate: 0.3,
            duplicate_rate: 0.2,
            corrupt_rate: 0.1,
            ..WireFaultPlan::none()
        };
        let run_transport = |seed: u64| -> Vec<u8> {
            let chaos = WireChaos::new(plan.clone(), seed);
            let (mut tx, rx) = transport_pair(&chaos);
            for i in 0..60u64 {
                let _ = tx.send(&WireMsg::Heartbeat { epoch: i });
                tx.flush().unwrap();
            }
            drop(tx);
            let mut bytes = Vec::new();
            rx.stream()
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut buf = [0u8; 4096];
            use std::io::Read;
            let mut raw = rx;
            loop {
                match raw.stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => bytes.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            bytes
        };
        let run_blocking = |seed: u64| -> Vec<u8> {
            let chaos = WireChaos::new(plan.clone(), seed);
            let (a, b) = pair();
            let mut tx = ChaosStream::wrap(
                a,
                &chaos,
                ChaosSide::Agent,
                0,
                Instant::now(),
                Telemetry::disabled(),
                None,
            );
            use std::io::Write;
            for i in 0..60u64 {
                let frame = encode_with(&WireMsg::Heartbeat { epoch: i }, WireCodec::Json).unwrap();
                let _ = tx.write_all(&frame);
            }
            drop(tx);
            let mut rx = b;
            rx.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut bytes = Vec::new();
            use std::io::Read;
            let mut buf = [0u8; 4096];
            loop {
                match rx.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => bytes.extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            }
            bytes
        };
        assert_eq!(run_transport(99), run_blocking(99));
    }
}
