//! The readiness reactor: many connections, one thread.
//!
//! A [`Reactor`] owns a `netpoll` poller plus a slab of
//! [`Transport`]s, each paired with caller-supplied per-connection
//! state (the coordinator hangs handshake/deadline bookkeeping here;
//! the soak fleet hangs whole agent state machines). Tokens are slab
//! indices, so event dispatch is an array lookup — no hashing on the
//! hot path — and a freed slot's storage is reused by the next accept.
//!
//! The reactor registers every connection read-interested and toggles
//! write interest to follow [`Transport::wants_write`]: a connection
//! with an empty outbound queue never wakes the poller for writability
//! (level-triggered `EPOLLOUT` on an idle socket would busy-spin).
//!
//! One extra descriptor — the coordinator's listener — registers under
//! the reserved [`LISTENER_TOKEN`], far above any slab index.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

use netpoll::{Interest, PollEvent, Poller};

use crate::transport::Transport;

/// Token reserved for the accept listener (never a slab index).
pub const LISTENER_TOKEN: u64 = u64::MAX;

struct Entry<T> {
    transport: Transport,
    data: T,
    /// Last interest registered with the poller, to skip no-op
    /// `modify` syscalls.
    writable: bool,
}

/// A slab of connections multiplexed onto one poller. See the module
/// docs.
pub struct Reactor<T> {
    poller: Poller,
    slots: Vec<Option<Entry<T>>>,
    free: Vec<usize>,
    events: Vec<PollEvent>,
    count: usize,
}

impl<T> Reactor<T> {
    /// An empty reactor.
    pub fn new() -> io::Result<Reactor<T>> {
        Ok(Reactor {
            poller: Poller::new()?,
            slots: Vec::new(),
            free: Vec::new(),
            events: Vec::new(),
            count: 0,
        })
    }

    /// Live connections.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the reactor holds no connections.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Register the accept listener under [`LISTENER_TOKEN`]. The
    /// listener must already be nonblocking.
    pub fn register_listener(&self, listener: &impl AsRawFd) -> io::Result<()> {
        self.poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
    }

    /// Adopt a connection: switch it nonblocking, register it with the
    /// poller, and store it with its per-connection state. Returns the
    /// connection's token.
    pub fn insert(&mut self, transport: Transport, data: T) -> io::Result<u64> {
        transport.stream().set_nonblocking(true)?;
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        let token = slot as u64;
        let writable = transport.wants_write();
        let interest = if writable {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if let Err(e) = self
            .poller
            .register(transport.stream().as_raw_fd(), token, interest)
        {
            self.free.push(slot);
            return Err(e);
        }
        self.slots[slot] = Some(Entry {
            transport,
            data,
            writable,
        });
        self.count += 1;
        Ok(token)
    }

    /// Drop a connection, deregistering it from the poller. Returns
    /// its transport and state (the socket closes when the transport
    /// drops, unless the caller keeps it).
    pub fn remove(&mut self, token: u64) -> Option<(Transport, T)> {
        let slot = usize::try_from(token).ok()?;
        let entry = self.slots.get_mut(slot)?.take()?;
        let _ = self.poller.deregister(entry.transport.stream().as_raw_fd());
        self.free.push(slot);
        self.count -= 1;
        Some((entry.transport, entry.data))
    }

    /// Mutable access to one connection.
    pub fn get_mut(&mut self, token: u64) -> Option<(&mut Transport, &mut T)> {
        let slot = usize::try_from(token).ok()?;
        let entry = self.slots.get_mut(slot)?.as_mut()?;
        Some((&mut entry.transport, &mut entry.data))
    }

    /// Re-sync this connection's poller interest with its transport's
    /// queue state. Call after sends and flushes.
    pub fn update_interest(&mut self, token: u64) -> io::Result<()> {
        let slot = match usize::try_from(token) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let Some(entry) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(());
        };
        let wants = entry.transport.wants_write();
        if wants == entry.writable {
            return Ok(());
        }
        let interest = if wants {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        self.poller
            .modify(entry.transport.stream().as_raw_fd(), token, interest)?;
        entry.writable = wants;
        Ok(())
    }

    /// Every live token (snapshot — safe to `remove` while iterating
    /// the result). Used for periodic sweeps, not the event path.
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Block until readiness or timeout; the events are left in an
    /// internal buffer (take them with [`Reactor::drain_events`]).
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let mut events = std::mem::take(&mut self.events);
        let n = self.poller.wait(&mut events, timeout)?;
        self.events = events;
        Ok(n)
    }

    /// Take the events from the last [`Reactor::poll`].
    pub fn drain_events(&mut self) -> Vec<PollEvent> {
        std::mem::take(&mut self.events)
    }

    /// Return an event buffer for reuse (avoids reallocating per poll).
    pub fn recycle_events(&mut self, mut events: Vec<PollEvent>) {
        events.clear();
        self.events = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosStream;
    use crate::wire::WireMsg;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn slab_reuses_slots_and_tracks_count() {
        let mut r: Reactor<u32> = Reactor::new().unwrap();
        let (a1, _k1) = pair();
        let (a2, _k2) = pair();
        let t1 = r
            .insert(Transport::new(ChaosStream::passthrough(a1)), 1)
            .unwrap();
        let t2 = r
            .insert(Transport::new(ChaosStream::passthrough(a2)), 2)
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_ne!(t1, t2);
        let (_, data) = r.remove(t1).unwrap();
        assert_eq!(data, 1);
        assert_eq!(r.len(), 1);
        let (a3, _k3) = pair();
        let t3 = r
            .insert(Transport::new(ChaosStream::passthrough(a3)), 3)
            .unwrap();
        assert_eq!(t3, t1, "freed slot is reused");
        assert_eq!(r.tokens().len(), 2);
        assert!(r.get_mut(t2).is_some());
        assert!(r.remove(999).is_none());
    }

    #[test]
    fn readable_event_carries_the_right_token() {
        let mut r: Reactor<()> = Reactor::new().unwrap();
        let (server, mut client) = pair();
        let token = r
            .insert(Transport::new(ChaosStream::passthrough(server)), ())
            .unwrap();

        use std::io::Write;
        let frame = crate::wire::encode(&WireMsg::Heartbeat { epoch: 5 }).unwrap();
        client.write_all(&frame).unwrap();

        let n = r.poll(Some(Duration::from_secs(2))).unwrap();
        assert!(n >= 1);
        let events = r.drain_events();
        assert!(events.iter().any(|e| e.token == token && e.readable));

        let (transport, _) = r.get_mut(token).unwrap();
        assert!(matches!(
            transport.fill().unwrap(),
            crate::transport::FillStatus::Progress
        ));
        assert_eq!(
            transport.next_msg().unwrap(),
            Some(WireMsg::Heartbeat { epoch: 5 })
        );
        r.recycle_events(events);
    }

    #[test]
    fn write_interest_follows_the_queue() {
        let mut r: Reactor<()> = Reactor::new().unwrap();
        let (server, _client) = pair();
        let token = r
            .insert(Transport::new(ChaosStream::passthrough(server)), ())
            .unwrap();
        // Idle connection: no writable wakeups even though the socket
        // could accept bytes (write interest is off).
        let n = r.poll(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "idle connection must not wake the poller");

        // Queue a frame without flushing: interest flips on and the
        // poller reports writability.
        let (transport, _) = r.get_mut(token).unwrap();
        transport.send(&WireMsg::Heartbeat { epoch: 1 }).unwrap();
        assert!(transport.wants_write());
        r.update_interest(token).unwrap();
        let n = r.poll(Some(Duration::from_secs(2))).unwrap();
        assert!(n >= 1);
        let events = r.drain_events();
        assert!(events.iter().any(|e| e.token == token && e.writable));

        // Flush; interest flips back off.
        let (transport, _) = r.get_mut(token).unwrap();
        transport.flush().unwrap();
        assert!(!transport.wants_write());
        r.update_interest(token).unwrap();
        r.recycle_events(events);
        let n = r.poll(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
    }
}
