//! Wire-level chaos injection: [`ChaosStream`] wraps a `TcpStream` and
//! enforces a [`WireFaultPlan`] on it.
//!
//! Faults are injected at *write* granularity — in this codebase every
//! `write_all` call carries exactly one encoded frame, so per-frame
//! drop / delay / duplication / corruption / reset rates apply cleanly.
//! Each endpoint wraps its own socket, which covers both directions:
//! the agent's writes are the uplink, the coordinator's writes are the
//! downlink. Scripted partitions additionally blackhole the *read*
//! path, so a one-way partition behaves like the real thing: an
//! uplink-dead node keeps receiving commands it can never acknowledge,
//! a downlink-dead node keeps reporting while ignoring every ceiling.
//!
//! Determinism: same plan + same seed + same frame sequence → the same
//! fault decisions, exactly like [`fvs_faults::FaultInjector`]. A quiet
//! plan builds no injection state at all — reads and writes forward
//! straight to the inner stream, byte-identically (the differential
//! test in this module proves it).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fvs_faults::WireFaultPlan;
use fvs_telemetry::{Counter, SchedEvent, Telemetry, WireFaultKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which endpoint of the connection this stream belongs to — decides
/// which partition direction applies to its reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSide {
    /// The node agent: writes are uplink, reads are downlink.
    Agent,
    /// The coordinator: writes are downlink, reads are uplink.
    Coordinator,
}

/// A wire-chaos configuration: the plan plus the base seed. Carried by
/// the agent and coordinator configs; quiet by default.
#[derive(Debug, Clone, Default)]
pub struct WireChaos {
    /// What to inject.
    pub plan: WireFaultPlan,
    /// Base RNG seed; each connection mixes in its own stream id so
    /// reconnects see fresh (but reproducible) fault sequences.
    pub seed: u64,
}

impl WireChaos {
    /// No chaos: streams built from this are pure passthroughs.
    pub fn none() -> Self {
        WireChaos::default()
    }

    /// Chaos with the given plan and seed.
    pub fn new(plan: WireFaultPlan, seed: u64) -> Self {
        WireChaos { plan, seed }
    }

    /// Whether the plan can never fire.
    pub fn is_quiet(&self) -> bool {
        self.plan.is_quiet()
    }
}

/// The node index before a hello names it.
const NODE_UNKNOWN: usize = usize::MAX;

/// Seed mixer, in the `FaultInjector` idiom (a fixed xor so seed 0 is
/// still a real stream).
const SEED_MIX: u64 = 0xC4A0_5BAD_F00D_5EED;

#[derive(Debug)]
struct ChaosCore {
    plan: WireFaultPlan,
    side: ChaosSide,
    /// Partition windows are measured from here.
    start: Instant,
    /// Node this connection belongs to (`NODE_UNKNOWN` pre-hello; the
    /// coordinator learns it from the hello and calls `set_node`).
    node: AtomicUsize,
    rng: Mutex<StdRng>,
    /// Frames held back by delay faults, with their due times.
    pending: Mutex<Vec<(Instant, Vec<u8>)>>,
    injected: AtomicU64,
    telemetry: Telemetry,
    counter: Option<Arc<Counter>>,
}

impl ChaosCore {
    fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn node(&self) -> usize {
        self.node.load(Ordering::Relaxed)
    }

    /// Record one injected fault: the atomic count, the optional
    /// `net.wire_faults_injected` counter, and a `wire_fault` journal
    /// event flagged `injected` (distinguishing it from organic
    /// corruption the frame decoder reports). `frame_len`/`codec` are
    /// the size and sniffed codec of the frame the fault hit (0 when
    /// no frame was in hand, e.g. a blackholed read).
    fn note(&self, kind: WireFaultKind, frame_len: u32, codec: u8) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.counter {
            c.inc();
        }
        if self.telemetry.enabled() {
            let node = self.node();
            self.telemetry.emit(SchedEvent::WireFault {
                t_s: self.now_s(),
                node: if node == NODE_UNKNOWN {
                    u32::MAX
                } else {
                    node as u32
                },
                kind,
                injected: true,
                frame_len,
                codec,
            });
        }
    }

    fn fires(&self, rng: &mut StdRng, rate: f64) -> bool {
        rate > 0.0 && rng.gen::<f64>() < rate
    }

    /// Whether a scripted partition blackholes this stream's writes
    /// right now, and the event kind to report if so.
    fn write_partition(&self, now_s: f64) -> Option<WireFaultKind> {
        let node = self.node();
        for p in &self.plan.partitions {
            if !p.active(node, now_s) {
                continue;
            }
            let (blocked, kind) = match self.side {
                ChaosSide::Agent => (p.direction.blocks_uplink(), WireFaultKind::PartitionUp),
                ChaosSide::Coordinator => {
                    (p.direction.blocks_downlink(), WireFaultKind::PartitionDown)
                }
            };
            if blocked {
                return Some(kind);
            }
        }
        None
    }

    /// Whether a scripted partition blackholes this stream's reads
    /// right now, and the event kind to report if so.
    fn read_partition(&self, now_s: f64) -> Option<WireFaultKind> {
        let node = self.node();
        for p in &self.plan.partitions {
            if !p.active(node, now_s) {
                continue;
            }
            let (blocked, kind) = match self.side {
                ChaosSide::Agent => (p.direction.blocks_downlink(), WireFaultKind::PartitionDown),
                ChaosSide::Coordinator => (p.direction.blocks_uplink(), WireFaultKind::PartitionUp),
            };
            if blocked {
                return Some(kind);
            }
        }
        None
    }

    /// Deliver delayed frames whose hold has expired. Called
    /// opportunistically from both paths, so a busy stream drains its
    /// queue promptly.
    fn flush_due(&self, inner: &mut TcpStream) -> io::Result<()> {
        let mut pending = self.pending.lock().unwrap();
        if pending.is_empty() {
            return Ok(());
        }
        let now = Instant::now();
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, frame) = pending.remove(i);
                inner.write_all(&frame)?;
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

/// Identify a written frame for fault telemetry: its total size and the
/// codec its magic claims (0 when the buffer is too short or foreign).
fn sniff_frame(buf: &[u8]) -> (u32, u8) {
    let len = u32::try_from(buf.len()).unwrap_or(u32::MAX);
    if buf.len() < 4 {
        return (len, 0);
    }
    let codec = if buf[..4] == crate::wire::MAGIC {
        crate::wire::WireCodec::Json.id()
    } else if buf[..4] == crate::wire::MAGIC_V2 {
        crate::wire::WireCodec::Binary.id()
    } else {
        0
    };
    (len, codec)
}

/// The fault a [`ChaosStream`] decided to apply to one outgoing frame.
///
/// The blocking [`Write`] impl applies these internally; the
/// nonblocking `Transport` asks for the decision up front (via
/// [`ChaosStream::decide_write_fault`]) and applies it at enqueue time,
/// because a partial write under `WouldBlock` cannot be retried through
/// a wrapper that re-rolls fault dice per call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFault {
    /// Write the frame as-is.
    Deliver,
    /// Pretend success, send nothing (drop faults and active partition
    /// windows — the caller cannot tell the difference, as intended).
    Drop,
    /// Write these bytes instead (truncated or bit-flipped).
    Corrupt(Vec<u8>),
    /// Write the frame twice.
    Duplicate,
    /// Hold the frame back this long, then deliver it.
    Delay(Duration),
    /// The connection was reset (the socket is already shut down);
    /// surface `ConnectionReset` to the caller.
    Reset,
}

/// A `TcpStream` wrapper that injects [`WireFaultPlan`] faults.
///
/// Built from a quiet plan it holds no injection state: every read and
/// write forwards directly to the inner stream (byte-identical — the
/// acceptance differential test). Clones share the fault state, so the
/// coordinator's reader and writer halves of one connection see one
/// coherent fault stream.
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    core: Option<Arc<ChaosCore>>,
}

impl ChaosStream {
    /// Wrap with no chaos at all (alias for a quiet plan).
    pub fn passthrough(inner: TcpStream) -> Self {
        ChaosStream { inner, core: None }
    }

    /// Wrap `inner` under `chaos`. `stream_id` disambiguates
    /// connections (reconnect attempts, accept sequence) so each gets
    /// its own reproducible fault stream; `start` anchors the partition
    /// clock (share one `Instant` across streams to script
    /// cluster-wide windows); injected faults are journaled through
    /// `telemetry` and counted on `counter` when given.
    pub fn wrap(
        inner: TcpStream,
        chaos: &WireChaos,
        side: ChaosSide,
        stream_id: u64,
        start: Instant,
        telemetry: Telemetry,
        counter: Option<Arc<Counter>>,
    ) -> Self {
        if chaos.is_quiet() {
            return ChaosStream::passthrough(inner);
        }
        let seed = chaos.seed ^ SEED_MIX ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ChaosStream {
            inner,
            core: Some(Arc::new(ChaosCore {
                plan: chaos.plan.clone(),
                side,
                start,
                node: AtomicUsize::new(NODE_UNKNOWN),
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                pending: Mutex::new(Vec::new()),
                injected: AtomicU64::new(0),
                telemetry,
                counter,
            })),
        }
    }

    /// Name the node this connection belongs to (the coordinator calls
    /// this once the hello arrives; partitions target nodes by index).
    pub fn set_node(&self, node: usize) {
        if let Some(core) = &self.core {
            core.node.store(node, Ordering::Relaxed);
        }
    }

    /// Injected faults so far on this stream (shared across clones).
    pub fn injected(&self) -> u64 {
        self.core
            .as_ref()
            .map(|c| c.injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Clone sharing both the socket and the fault state.
    pub fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: self.inner.try_clone()?,
            core: self.core.clone(),
        })
    }

    /// Passthrough to [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// Passthrough to [`TcpStream::set_nonblocking`].
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        self.inner.set_nonblocking(on)
    }

    /// Decide what fault (if any) hits one outgoing frame, drawing the
    /// same RNG sequence the blocking [`Write`] path would — plan +
    /// seed + frame sequence determinism holds across both paths. The
    /// fault is journaled here; the caller applies the decision. On
    /// [`WriteFault::Reset`] the socket has already been shut down.
    pub fn decide_write_fault(&mut self, frame: &[u8]) -> WriteFault {
        let Some(core) = self.core.clone() else {
            return WriteFault::Deliver;
        };
        let (len, codec) = sniff_frame(frame);
        if let Some(kind) = core.write_partition(core.now_s()) {
            core.note(kind, len, codec);
            return WriteFault::Drop;
        }
        let decision = {
            let mut rng = core.rng.lock().unwrap();
            if core.fires(&mut rng, core.plan.reset_rate) {
                Some(WireFaultKind::Reset)
            } else if core.fires(&mut rng, core.plan.drop_rate) {
                Some(WireFaultKind::Drop)
            } else if core.fires(&mut rng, core.plan.corrupt_rate) {
                Some(WireFaultKind::Corrupt)
            } else if core.fires(&mut rng, core.plan.duplicate_rate) {
                Some(WireFaultKind::Duplicate)
            } else if core.fires(&mut rng, core.plan.delay_rate) {
                Some(WireFaultKind::Delay)
            } else {
                None
            }
        };
        match decision {
            Some(WireFaultKind::Reset) => {
                core.note(WireFaultKind::Reset, len, codec);
                let _ = self.inner.shutdown(Shutdown::Both);
                WriteFault::Reset
            }
            Some(WireFaultKind::Drop) => {
                core.note(WireFaultKind::Drop, len, codec);
                WriteFault::Drop
            }
            Some(WireFaultKind::Corrupt) => {
                core.note(WireFaultKind::Corrupt, len, codec);
                let corrupted = {
                    let mut rng = core.rng.lock().unwrap();
                    let mut bytes = frame.to_vec();
                    if rng.gen::<f64>() < 0.5 && bytes.len() > 1 {
                        // Truncate: the tail never arrives.
                        let keep = rng.gen_range(1..bytes.len());
                        bytes.truncate(keep);
                    } else if !bytes.is_empty() {
                        // Flip one bit somewhere in the frame.
                        let at = rng.gen_range(0..bytes.len());
                        let bit = rng.gen_range(0u32..8);
                        bytes[at] ^= 1 << bit;
                    }
                    bytes
                };
                WriteFault::Corrupt(corrupted)
            }
            Some(WireFaultKind::Duplicate) => {
                core.note(WireFaultKind::Duplicate, len, codec);
                WriteFault::Duplicate
            }
            Some(WireFaultKind::Delay) => {
                core.note(WireFaultKind::Delay, len, codec);
                WriteFault::Delay(Duration::from_secs_f64(core.plan.delay_s.max(0.0)))
            }
            _ => WriteFault::Deliver,
        }
    }

    /// One raw `write` on the inner socket — no fault logic, no
    /// `write_all` loop. The nonblocking `Transport` uses this to
    /// drain its queue, tracking partial-write offsets itself.
    pub fn write_raw(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    /// Passthrough to [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.inner.set_nodelay(on)
    }

    /// Passthrough to [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// Passthrough to [`TcpStream::peer_addr`].
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.inner.peer_addr()
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(core) = self.core.clone() else {
            return self.inner.read(buf);
        };
        // Opportunistically deliver delayed frames (best effort — a
        // closed peer surfaces on the next real write).
        let _ = core.flush_due(&mut self.inner);
        let n = self.inner.read(buf)?;
        if n > 0 {
            if let Some(kind) = core.read_partition(core.now_s()) {
                // Drain-and-discard: the bytes vanish as if the link
                // were down, and the caller sees its usual timeout.
                core.note(kind, 0, 0);
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "chaos partition blackholed the read",
                ));
            }
        }
        Ok(n)
    }
}

impl Write for ChaosStream {
    /// One call = one frame. Always consumes the whole buffer (so the
    /// caller's `write_all` issues exactly one call per frame) and
    /// applies at most one fault class per frame, checked in severity
    /// order: partition, reset, drop, corrupt, duplicate, delay. The
    /// decision comes from [`ChaosStream::decide_write_fault`], so the
    /// blocking and nonblocking paths share one fault stream.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(core) = self.core.clone() else {
            return self.inner.write(buf);
        };
        core.flush_due(&mut self.inner)?;
        match self.decide_write_fault(buf) {
            WriteFault::Deliver => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            WriteFault::Drop => Ok(buf.len()), // blackholed or dropped
            WriteFault::Corrupt(bytes) => {
                self.inner.write_all(&bytes)?;
                Ok(buf.len())
            }
            WriteFault::Duplicate => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            WriteFault::Delay(hold) => {
                let due = Instant::now() + hold;
                core.pending.lock().unwrap().push((due, buf.to_vec()));
                Ok(buf.len())
            }
            WriteFault::Reset => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos reset the connection",
            )),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl AsRawFd for ChaosStream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn read_exact_with_timeout(stream: &mut TcpStream, n: usize) -> Vec<u8> {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = vec![0u8; n];
        stream.read_exact(&mut out).unwrap();
        out
    }

    /// The acceptance differential: a `none`-plan `ChaosStream` is
    /// byte-identical to the bare stream, frame for frame.
    #[test]
    fn quiet_chaos_stream_is_byte_identical_to_bare() {
        let frames: Vec<Vec<u8>> = (0u8..50)
            .map(|i| (0..=i).map(|b| b.wrapping_mul(7) ^ i).collect())
            .collect();
        let total: usize = frames.iter().map(|f| f.len()).sum();

        let (bare_tx, mut bare_rx) = pair();
        let mut bare_tx = bare_tx;
        for f in &frames {
            bare_tx.write_all(f).unwrap();
        }
        let bare_bytes = read_exact_with_timeout(&mut bare_rx, total);

        let (chaos_tx, mut chaos_rx) = pair();
        let mut chaos_tx = ChaosStream::wrap(
            chaos_tx,
            &WireChaos::none(),
            ChaosSide::Agent,
            0,
            Instant::now(),
            Telemetry::disabled(),
            None,
        );
        for f in &frames {
            chaos_tx.write_all(f).unwrap();
        }
        let chaos_bytes = read_exact_with_timeout(&mut chaos_rx, total);

        assert_eq!(bare_bytes, chaos_bytes);
        assert_eq!(chaos_tx.injected(), 0);
    }

    /// Same plan + same seed + same frames → the same surviving byte
    /// stream and the same injected-fault count; a different seed gives
    /// a different fault stream.
    #[test]
    fn fault_stream_is_deterministic_in_the_seed() {
        let plan = WireFaultPlan {
            drop_rate: 0.3,
            duplicate_rate: 0.2,
            ..WireFaultPlan::none()
        };
        let run = |seed: u64| -> (Vec<u8>, u64) {
            let (tx, mut rx) = pair();
            let mut tx = ChaosStream::wrap(
                tx,
                &WireChaos::new(plan.clone(), seed),
                ChaosSide::Agent,
                7,
                Instant::now(),
                Telemetry::disabled(),
                None,
            );
            for i in 0u8..100 {
                tx.write_all(&[i; 8]).unwrap();
            }
            let injected = tx.injected();
            drop(tx);
            rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut bytes = Vec::new();
            let _ = rx.read_to_end(&mut bytes);
            (bytes, injected)
        };
        let (a_bytes, a_injected) = run(42);
        let (b_bytes, b_injected) = run(42);
        assert_eq!(a_bytes, b_bytes);
        assert_eq!(a_injected, b_injected);
        assert!(a_injected > 0, "rates this high must fire in 100 frames");
        let (c_bytes, _) = run(43);
        assert_ne!(a_bytes, c_bytes, "different seed, different stream");
    }

    /// An uplink partition window blackholes writes from the agent side
    /// while it is active and heals afterwards.
    #[test]
    fn uplink_partition_blackholes_agent_writes_then_heals() {
        let plan = WireFaultPlan::parse("partition_up=3@0:0.2").unwrap();
        let start = Instant::now();
        let (tx, mut rx) = pair();
        let tx_raw = tx;
        let mut tx = ChaosStream::wrap(
            tx_raw,
            &WireChaos::new(plan, 1),
            ChaosSide::Agent,
            0,
            start,
            Telemetry::disabled(),
            None,
        );
        tx.set_node(3);
        tx.write_all(b"gone").unwrap(); // inside the window: blackholed
        assert!(tx.injected() >= 1);
        while start.elapsed() < Duration::from_millis(250) {
            std::thread::sleep(Duration::from_millis(10));
        }
        tx.write_all(b"back").unwrap(); // healed
        let bytes = read_exact_with_timeout(&mut rx, 4);
        assert_eq!(&bytes, b"back");
    }

    /// A delayed frame is held and delivered late, not lost.
    #[test]
    fn delayed_frames_arrive_late_not_never() {
        let plan = WireFaultPlan {
            delay_rate: 1.0,
            delay_s: 0.05,
            ..WireFaultPlan::none()
        };
        let (tx, mut rx) = pair();
        let mut tx = ChaosStream::wrap(
            tx,
            &WireChaos::new(plan, 5),
            ChaosSide::Agent,
            0,
            Instant::now(),
            Telemetry::disabled(),
            None,
        );
        tx.write_all(b"held").unwrap();
        std::thread::sleep(Duration::from_millis(80));
        // The next write flushes the due queue first (and is itself
        // delayed in turn by the rate-1.0 plan).
        tx.write_all(b"next").unwrap();
        let bytes = read_exact_with_timeout(&mut rx, 4);
        assert_eq!(&bytes, b"held");
        assert_eq!(tx.injected(), 2, "both writes hit the delay fault");
    }

    /// Injected faults are journaled as `wire_fault` events flagged
    /// `injected:true`.
    #[test]
    fn injected_faults_are_journaled() {
        let telemetry = Telemetry::memory(64);
        let plan = WireFaultPlan {
            drop_rate: 1.0,
            ..WireFaultPlan::none()
        };
        let (tx, _rx) = pair();
        let mut tx = ChaosStream::wrap(
            tx,
            &WireChaos::new(plan, 9),
            ChaosSide::Coordinator,
            0,
            Instant::now(),
            telemetry.clone(),
            None,
        );
        tx.set_node(2);
        tx.write_all(b"x").unwrap();
        let events = telemetry.events();
        assert!(events.iter().any(|e| matches!(
            e,
            SchedEvent::WireFault {
                node: 2,
                kind: WireFaultKind::Drop,
                injected: true,
                ..
            }
        )));
    }
}
