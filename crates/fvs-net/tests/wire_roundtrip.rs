//! Property tests for the wire codec: arbitrary summaries and commands
//! round-trip bit-identically, and no amount of truncation or byte
//! corruption — including the structured corruption streams of
//! fvs-faults — makes the decoder panic.

use fvs_cluster::{FrequencyCommand, NodeSummary};
use fvs_faults::{apply_counter_fault, CounterFaultKind, FaultInjector, FaultPlan};
use fvs_model::{CounterDelta, CpiModel, FreqMhz};
use fvs_net::{encode, FrameReader, WireMsg, HEADER_LEN};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_model() -> impl Strategy<Value = Option<CpiModel>> {
    (0.1f64..10.0, 0.0f64..50.0e-9, any::<bool>())
        .prop_map(|(cpi0, m, has)| has.then(|| CpiModel::from_components(cpi0, m)))
}

fn arb_freq() -> impl Strategy<Value = FreqMhz> {
    prop::sample::select(vec![250u32, 500, 650, 800, 950, 1000]).prop_map(FreqMhz)
}

fn arb_summary() -> impl Strategy<Value = NodeSummary> {
    (
        0usize..64,
        0.0f64..1.0e4,
        prop::collection::vec((arb_model(), any::<bool>(), arb_freq()), 1..9),
        0.0f64..5000.0,
    )
        .prop_map(|(node, sent_at_s, procs, power_w)| {
            let models = procs.iter().map(|(m, _, _)| *m).collect();
            let idle = procs.iter().map(|(_, i, _)| *i).collect();
            let current = procs.iter().map(|(_, _, f)| *f).collect();
            NodeSummary {
                node,
                sent_at_s,
                models,
                idle,
                current,
                power_w,
            }
        })
}

fn arb_command() -> impl Strategy<Value = FrequencyCommand> {
    (0usize..64, prop::collection::vec(arb_freq(), 1..9))
        .prop_map(|(node, freqs)| FrequencyCommand { node, freqs })
}

fn decode_one(frame: &[u8]) -> WireMsg {
    let mut r = FrameReader::new();
    r.feed(frame);
    r.next_frame()
        .expect("clean frame decodes")
        .expect("complete frame yields a message")
}

/// Bit-identical equality for the float fields (plain `==` would be
/// fooled by -0.0 and would reject NaN; the wire must preserve bits of
/// every finite value exactly).
fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → frame → decode is the identity on summaries, down to
    /// the float bit patterns.
    #[test]
    fn summary_round_trips_bit_identical(s in arb_summary()) {
        let msg = WireMsg::Summary(s.clone());
        let back = decode_one(&encode(&msg).unwrap());
        let WireMsg::Summary(b) = back else { panic!("wrong kind") };
        prop_assert_eq!(b.node, s.node);
        prop_assert!(same_bits(b.sent_at_s, s.sent_at_s));
        prop_assert!(same_bits(b.power_w, s.power_w));
        prop_assert_eq!(&b.idle, &s.idle);
        prop_assert_eq!(&b.current, &s.current);
        prop_assert_eq!(b.models.len(), s.models.len());
        for (bm, sm) in b.models.iter().zip(&s.models) {
            match (bm, sm) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert!(same_bits(x.cpi0, y.cpi0));
                    prop_assert!(same_bits(x.mem_time_per_instr, y.mem_time_per_instr));
                }
                _ => prop_assert!(false, "model presence changed in transit"),
            }
        }
    }

    /// encode → frame → decode is the identity on commands.
    #[test]
    fn command_round_trips(c in arb_command()) {
        let msg = WireMsg::Ceiling(c);
        let back = decode_one(&encode(&msg).unwrap());
        prop_assert_eq!(back, msg);
    }

    /// Every truncation of a valid frame either waits for more bytes or
    /// errors — never panics, never fabricates a message.
    #[test]
    fn truncated_frames_never_panic(s in arb_summary(), cut in 0usize..10_000) {
        let frame = encode(&WireMsg::Summary(s)).unwrap();
        let cut = cut % frame.len();
        let mut r = FrameReader::new();
        r.feed(&frame[..cut]);
        match r.next_frame() {
            Ok(None) => {}       // waiting for the rest
            Ok(Some(_)) => prop_assert!(false, "message out of a truncated frame"),
            Err(_) => {}         // header happened to be cut mid-magic: fine
        }
        // Feeding the remainder completes the frame cleanly when the
        // reader did not reject the prefix.
        r.feed(&frame[cut..]);
        let _ = r.next_frame();
    }

    /// Random byte flips anywhere in the frame are rejected or decode
    /// to *something* — but never panic. Uses a seeded RNG so failures
    /// replay.
    #[test]
    fn corrupt_frames_never_panic(s in arb_summary(), seed in 0u64..1_000_000, flips in 1usize..8) {
        let frame = encode(&WireMsg::Summary(s)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bad = frame.clone();
        for _ in 0..flips {
            let i = rng.gen_range(0..bad.len());
            bad[i] ^= 1 << rng.gen_range(0u32..8);
        }
        let mut r = FrameReader::new();
        r.feed(&bad);
        // Drain until the reader is done or errors; any outcome but a
        // panic is acceptable.
        for _ in 0..4 {
            match r.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Summaries whose counters went through the fvs-faults corruption
    /// stream (NaN / spike / stuck / stale deltas feeding the models)
    /// still encode and decode without panicking: the codec is
    /// corruption-agnostic, and validation stays the coordinator's job.
    #[test]
    fn fault_corrupted_summaries_transit_safely(s in arb_summary(), seed in 0u64..100_000) {
        let plan = FaultPlan {
            counter_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, seed);
        let mut s = s;
        let prev = CounterDelta::default();
        for slot in s.models.iter_mut() {
            if let Some(kind) = inj.counter_fault() {
                // Drive the model through a corrupted delta the same way
                // a faulty node would: NaN deltas produce NaN models.
                let mut delta = CounterDelta {
                    instructions: 1.0e6,
                    cycles: 2.0e6,
                    ..prev
                };
                apply_counter_fault(kind, &mut delta, &prev);
                if matches!(kind, CounterFaultKind::Nan) {
                    *slot = Some(CpiModel::from_components(delta.cycles, 0.0));
                }
            }
        }
        // Also corrupt the scalar fields the way a broken sensor would.
        if seed % 3 == 0 { s.power_w = f64::NAN; }
        if seed % 5 == 0 { s.sent_at_s = f64::INFINITY; }
        let frame = encode(&WireMsg::Summary(s)).unwrap();
        let decoded = decode_one(&frame);
        prop_assert!(matches!(decoded, WireMsg::Summary(_)));
    }

    /// A corrupt length prefix can claim any size; the reader must
    /// reject oversized claims before allocating and never panic on
    /// undersized ones.
    #[test]
    fn corrupt_length_prefix_is_safe(s in arb_summary(), len_bits in any::<u32>()) {
        let mut frame = encode(&WireMsg::Summary(s)).unwrap();
        frame[4..HEADER_LEN].copy_from_slice(&len_bits.to_be_bytes());
        let mut r = FrameReader::new();
        r.feed(&frame);
        match r.next_frame() {
            Ok(None) => {}      // claims more bytes than fed: waits forever, caller's timeout handles it
            Ok(Some(_)) => {}   // claimed a shorter-but-valid JSON prefix: implausible but harmless
            Err(_) => {}        // oversized or garbled: rejected
        }
    }
}
