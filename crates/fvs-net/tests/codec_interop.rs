//! Cross-codec interop: the negotiated binary codec (`FVS2`) and the
//! JSON fallback (`FVS1`) must agree on every message.
//!
//! Three layers of proof, mirroring how a mixed-version fleet actually
//! exercises the wire:
//!
//! 1. **Property tests** (256 cases each): any summary or command
//!    encodes under both codecs and decodes back bit-identically —
//!    same node ids, same float bit patterns including `-0.0`. For
//!    non-finite floats the codecs' documented contracts diverge and
//!    both are pinned here: binary preserves the exact NaN payload
//!    bits, JSON canonicalizes every non-finite value to quiet NaN.
//! 2. **Fuzz**: truncating or bit-flipping binary frames through the
//!    same [`FrameReader`] the transport uses never panics.
//! 3. **A mixed fleet over real sockets**: JSON-pinned and
//!    binary-preferring agents against one coordinator, verifying the
//!    per-connection negotiation lands every agent on the right codec
//!    (and that a JSON-pinned coordinator downgrades everyone).

use fvs_cluster::{ClusterNode, FrequencyCommand, NodeSummary};
use fvs_model::{CpiModel, FreqMhz};
use fvs_net::{
    decode_payload, decode_payload_binary, encode_with, AgentConfig, AgentFleet, CoordinatorConfig,
    CoordinatorServer, FrameReader, WireCodec, WireMsg, HEADER_LEN,
};
use fvs_sched::FvsstAlgorithm;
use fvs_sim::MachineBuilder;
use fvs_workloads::WorkloadSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Finite floats with awkward bit patterns the wire must not normalise:
/// negative zero, subnormals, and full-precision values.
fn arb_finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6f64..1.0e6,
        Just(-0.0),
        Just(0.0),
        Just(f64::MIN_POSITIVE / 2.0), // subnormal
        Just(f64::MAX),
    ]
}

/// Non-finite floats with distinguishable payloads, to pin the codecs'
/// divergent contracts.
fn arb_nonfinite() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::from_bits(0x7ff8_dead_beef_0001)), // payload NaN
    ]
}

fn arb_freq() -> impl Strategy<Value = FreqMhz> {
    prop::sample::select(vec![250u32, 500, 650, 800, 950, 1000]).prop_map(FreqMhz)
}

fn arb_summary<F>(mk_float: fn() -> F) -> impl Strategy<Value = NodeSummary>
where
    F: Strategy<Value = f64> + 'static,
{
    (
        0usize..1024,
        mk_float(),
        prop::collection::vec(
            // (has_model, cpi0, mem, idle, freq): a hand-rolled Option
            // since the vendored proptest has no `prop::option`.
            (
                any::<bool>(),
                mk_float(),
                mk_float(),
                any::<bool>(),
                arb_freq(),
            ),
            1..9,
        ),
        mk_float(),
    )
        .prop_map(|(node, sent_at_s, procs, power_w)| NodeSummary {
            node,
            sent_at_s,
            models: procs
                .iter()
                .map(|(has, cpi0, mem, _, _)| has.then(|| CpiModel::from_components(*cpi0, *mem)))
                .collect(),
            idle: procs.iter().map(|(_, _, _, i, _)| *i).collect(),
            current: procs.iter().map(|(_, _, _, _, f)| *f).collect(),
            power_w,
        })
}

fn arb_command() -> impl Strategy<Value = FrequencyCommand> {
    (0usize..1024, prop::collection::vec(arb_freq(), 1..9))
        .prop_map(|(node, freqs)| FrequencyCommand { node, freqs })
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Decode one frame through the codec-specific payload path, the same
/// split the transport makes after reading the magic.
fn transcode(msg: &WireMsg, codec: WireCodec) -> WireMsg {
    let frame = encode_with(msg, codec).expect("encode");
    let payload = &frame[HEADER_LEN..];
    match codec {
        WireCodec::Binary => decode_payload_binary(payload).expect("binary decode"),
        WireCodec::Json => decode_payload(payload).expect("json decode"),
    }
}

fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Bit-exact summary equality (plain `==` is fooled by -0.0 / NaN).
fn assert_summary_bits(got: &WireMsg, want: &NodeSummary) {
    let WireMsg::Summary(got) = got else {
        panic!("kind changed in transit");
    };
    assert_eq!(got.node, want.node);
    assert!(same_bits(got.sent_at_s, want.sent_at_s));
    assert!(same_bits(got.power_w, want.power_w));
    assert_eq!(got.idle, want.idle);
    assert_eq!(got.current, want.current);
    assert_eq!(got.models.len(), want.models.len());
    for (g, w) in got.models.iter().zip(&want.models) {
        match (g, w) {
            (None, None) => {}
            (Some(g), Some(w)) => {
                assert!(same_bits(g.cpi0, w.cpi0));
                assert!(same_bits(g.mem_time_per_instr, w.mem_time_per_instr));
            }
            _ => panic!("model presence changed in transit"),
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Cross-codec property tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Finite summaries round-trip bit-identically under BOTH codecs:
    /// a fleet mixing FVS1 and FVS2 connections feeds the coordinator
    /// byte-for-byte the same numbers.
    #[test]
    fn finite_summaries_agree_across_codecs(s in arb_summary(arb_finite)) {
        let msg = WireMsg::Summary(s.clone());
        assert_summary_bits(&transcode(&msg, WireCodec::Binary), &s);
        assert_summary_bits(&transcode(&msg, WireCodec::Json), &s);
    }

    /// Commands (the fan-out direction) agree across codecs too; their
    /// fields are integral so plain equality is exact.
    #[test]
    fn commands_agree_across_codecs(c in arb_command()) {
        let msg = WireMsg::Ceiling(c);
        prop_assert_eq!(transcode(&msg, WireCodec::Binary), msg.clone());
        prop_assert_eq!(transcode(&msg, WireCodec::Json), msg);
    }

    /// Non-finite floats: binary preserves the exact bit pattern
    /// (payload NaNs included); JSON canonicalizes every non-finite
    /// value to quiet NaN via `null`. Both outcomes are contracts —
    /// ingest validation treats any NaN the same — and this pins them.
    #[test]
    fn nonfinite_contracts_hold(s in arb_summary(arb_nonfinite)) {
        let msg = WireMsg::Summary(s.clone());
        assert_summary_bits(&transcode(&msg, WireCodec::Binary), &s);
        let WireMsg::Summary(j) = transcode(&msg, WireCodec::Json) else {
            panic!("kind changed in transit");
        };
        let json_ok = |got: f64, sent: f64| {
            if sent.is_finite() { same_bits(got, sent) } else { got.is_nan() }
        };
        prop_assert!(json_ok(j.sent_at_s, s.sent_at_s));
        prop_assert!(json_ok(j.power_w, s.power_w));
        for (g, w) in j.models.iter().zip(&s.models) {
            if let (Some(g), Some(w)) = (g, w) {
                prop_assert!(json_ok(g.cpi0, w.cpi0));
                prop_assert!(json_ok(g.mem_time_per_instr, w.mem_time_per_instr));
            }
        }
    }

    // -----------------------------------------------------------------------
    // 2. Fuzz: the binary frame path never panics
    // -----------------------------------------------------------------------

    /// Every truncation of a binary frame either waits for more bytes
    /// or errors — never panics, never fabricates a message — and the
    /// remainder completes cleanly when the prefix was accepted.
    #[test]
    fn truncated_binary_frames_never_panic(
        s in arb_summary(arb_finite),
        cut in 0usize..10_000,
    ) {
        let frame = encode_with(&WireMsg::Summary(s), WireCodec::Binary).unwrap();
        let cut = cut % frame.len();
        let mut r = FrameReader::new();
        r.feed(&frame[..cut]);
        match r.next_frame() {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "message out of a truncated frame"),
            Err(_) => {}
        }
        r.feed(&frame[cut..]);
        let _ = r.next_frame();
    }

    /// Random bit flips anywhere in a binary frame — magic, length,
    /// kind, float bodies — are rejected or decode to something, but
    /// never panic and never loop. Seeded so failures replay.
    #[test]
    fn corrupt_binary_frames_never_panic(
        s in arb_summary(arb_finite),
        seed in 0u64..1_000_000,
        flips in 1usize..8,
    ) {
        let frame = encode_with(&WireMsg::Summary(s), WireCodec::Binary).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bad = frame.clone();
        for _ in 0..flips {
            let i = rng.gen_range(0..bad.len());
            bad[i] ^= 1 << rng.gen_range(0u32..8);
        }
        let mut r = FrameReader::new();
        r.feed(&bad);
        for _ in 0..4 {
            match r.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A frame re-tagged with the *other* codec's magic must not decode
    /// as a valid message by accident — the payload formats are
    /// disjoint enough that misnegotiation surfaces as an error, not
    /// silent garbage. (Empty-body frames are exempt: a zero-length
    /// payload is invalid under both codecs.)
    #[test]
    fn cross_tagged_frames_do_not_silently_decode(s in arb_summary(arb_finite)) {
        let frame = encode_with(&WireMsg::Summary(s), WireCodec::Binary).unwrap();
        // Binary payload pushed through the JSON decoder: the payload
        // starts with a kind byte (1..=4), never the '{' JSON needs.
        prop_assert!(decode_payload(&frame[HEADER_LEN..]).is_err());
    }
}

// ---------------------------------------------------------------------------
// 3. Mixed fleet over real sockets
// ---------------------------------------------------------------------------

fn nodes(ids: std::ops::Range<usize>) -> Vec<ClusterNode> {
    ids.map(|i| {
        let mut b = MachineBuilder::p630();
        for core in 0..4 {
            b = b.workload(core, WorkloadSpec::synthetic(50.0, 1.0e18));
        }
        ClusterNode::new(i, b.build(), None)
    })
    .collect()
}

fn wait_until(deadline_s: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(deadline_s);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// A coordinator preferring binary, fed by one JSON-pinned fleet and
/// one binary-preferring fleet: each connection lands on exactly the
/// codec its hello advertised, and summaries from both dialects ingest
/// into the same scheduling rounds.
#[test]
fn mixed_fleet_negotiates_per_connection() {
    let per_fleet = 6;
    let server = CoordinatorServer::bind(
        "127.0.0.1:0",
        2 * per_fleet,
        FvsstAlgorithm::p630(),
        CoordinatorConfig::default_lan().with_period_s(0.05),
    )
    .unwrap();

    let base = AgentConfig::default_lan()
        .with_tick_s(0.02)
        .with_summary_every(2);
    let json_fleet = AgentFleet::launch(
        nodes(0..per_fleet),
        server.local_addr(),
        base.clone().with_codec(WireCodec::Json),
        Duration::from_millis(50),
    )
    .unwrap();
    let bin_fleet = AgentFleet::launch(
        nodes(per_fleet..2 * per_fleet),
        server.local_addr(),
        base.with_codec(WireCodec::Binary),
        Duration::from_millis(50),
    )
    .unwrap();

    let (js, bs) = (json_fleet.stats(), bin_fleet.stats());
    assert!(
        wait_until(20, || js.connected() == per_fleet as u64
            && bs.connected() == per_fleet as u64
            && js.ceilings_applied() > 0
            && bs.ceilings_applied() > 0),
        "mixed fleet never converged: json={} binary={}",
        js.connected(),
        bs.connected(),
    );

    let js = json_fleet.stop();
    let bs = bin_fleet.stop();
    let status = server.shutdown().unwrap();

    // The negotiation split: JSON-pinned agents never got binary, and
    // binary-preferring agents all got the fast path.
    assert_eq!(js.json_conns(), per_fleet as u64);
    assert_eq!(js.binary_conns(), 0);
    assert_eq!(bs.binary_conns(), per_fleet as u64);
    assert_eq!(bs.json_conns(), 0);
    assert_eq!(js.version_rejects() + bs.version_rejects(), 0);
    assert!(status.nodes_reporting > 0);
}

/// A JSON-pinned coordinator (`--codec json`) downgrades even
/// binary-preferring agents: preference is coordinator-side policy,
/// the agent's advertisement is only a capability mask.
#[test]
fn json_pinned_coordinator_downgrades_everyone() {
    let n = 4;
    let server = CoordinatorServer::bind(
        "127.0.0.1:0",
        n,
        FvsstAlgorithm::p630(),
        CoordinatorConfig::default_lan()
            .with_period_s(0.05)
            .with_codec(WireCodec::Json),
    )
    .unwrap();
    let fleet = AgentFleet::launch(
        nodes(0..n),
        server.local_addr(),
        AgentConfig::default_lan()
            .with_tick_s(0.02)
            .with_summary_every(2)
            .with_codec(WireCodec::Binary),
        Duration::from_millis(50),
    )
    .unwrap();
    let stats = fleet.stats();
    assert!(
        wait_until(20, || stats.connected() == n as u64
            && stats.ceilings_applied() > 0),
        "fleet never converged: connected={}",
        stats.connected(),
    );
    let stats = fleet.stop();
    server.shutdown().unwrap();
    assert_eq!(stats.json_conns(), n as u64);
    assert_eq!(stats.binary_conns(), 0);
}
