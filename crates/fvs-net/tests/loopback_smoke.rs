//! Socket-level mechanics over 127.0.0.1: handshake, version
//! negotiation, command flow, and the reconnect ladder. The full
//! cluster scenario (budget drop + dead node + ΔT compliance) lives in
//! the workspace-root `net_loopback` integration test.

use fvs_net::{AgentConfig, CoordinatorConfig, CoordinatorServer, NodeAgent, SCHEMA_VERSION};
use fvs_sched::FvsstAlgorithm;
use fvs_sim::MachineBuilder;
use fvs_workloads::WorkloadSpec;
use std::time::{Duration, Instant};

fn cpu_bound_node(id: usize) -> fvs_cluster::ClusterNode {
    let mut b = MachineBuilder::p630();
    for core in 0..4 {
        b = b.workload(core, WorkloadSpec::synthetic(0.0, 1.0e18));
    }
    fvs_cluster::ClusterNode::new(id, b.build(), None)
}

fn fast_agent() -> AgentConfig {
    AgentConfig::default_lan()
        .with_tick_s(0.01)
        .with_summary_every(2)
        .with_pace(Duration::from_millis(1))
        .with_backoff(Duration::from_millis(20), Duration::from_millis(100))
}

#[test]
fn agent_reports_and_receives_ceilings() {
    let server = CoordinatorServer::bind(
        "127.0.0.1:0",
        1,
        FvsstAlgorithm::p630(),
        CoordinatorConfig::default_lan()
            .with_period_s(0.02)
            .with_heartbeat_timeout_s(0.5)
            .with_initial_budget_w(f64::INFINITY),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let agent = NodeAgent::spawn(cpu_bound_node(0), addr, fast_agent()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        let st = server.status();
        if st.nodes_reporting == 1 && st.rounds > 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let st = server.status();
    assert_eq!(st.nodes_reporting, 1, "agent never reported: {st:?}");
    assert_eq!(st.dead_nodes, 0);

    let report = agent.stop();
    assert!(report.summaries_sent > 0);
    assert!(
        report.ceilings_applied > 0,
        "no ceiling ever arrived: {report:?}"
    );
    assert!(!report.version_rejected);
    server.shutdown().unwrap();
}

#[test]
fn wrong_schema_version_is_refused_not_retried() {
    let server = CoordinatorServer::bind(
        "127.0.0.1:0",
        1,
        FvsstAlgorithm::p630(),
        CoordinatorConfig::default_lan().with_period_s(0.05),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let agent = NodeAgent::spawn(
        cpu_bound_node(0),
        addr,
        fast_agent().with_version(SCHEMA_VERSION + 1),
    )
    .unwrap();
    // The refusal is permanent, so the agent exits on its own.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !agent.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(agent.is_finished(), "refused agent should self-terminate");
    let report = agent.stop();
    assert!(report.version_rejected);
    assert_eq!(report.summaries_sent, 0);
    let st = server.shutdown().unwrap();
    assert_eq!(st.nodes_reporting, 0);
}

#[test]
fn agent_survives_a_coordinator_restart() {
    let config = CoordinatorConfig::default_lan()
        .with_period_s(0.02)
        .with_heartbeat_timeout_s(0.5);
    let server =
        CoordinatorServer::bind("127.0.0.1:0", 1, FvsstAlgorithm::p630(), config.clone()).unwrap();
    let addr = server.local_addr().to_string();
    let agent = NodeAgent::spawn(cpu_bound_node(0), addr.clone(), fast_agent()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.status().nodes_reporting < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.status().nodes_reporting, 1);
    // Kill the coordinator; the agent climbs its backoff ladder.
    drop(server);
    std::thread::sleep(Duration::from_millis(100));
    // Rebind the same port and wait for the agent to find us again.
    let server = CoordinatorServer::bind(&addr, 1, FvsstAlgorithm::p630(), config).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.status().nodes_reporting < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.status().nodes_reporting,
        1,
        "agent never reconnected"
    );
    let report = agent.stop();
    assert!(report.reconnects >= 1, "ladder never climbed: {report:?}");
    server.shutdown().unwrap();
}
