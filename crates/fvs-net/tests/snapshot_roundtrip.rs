//! Property tests for the crash-recovery snapshot codec: arbitrary
//! snapshots — non-finite floats included — round-trip through
//! encode/decode, and truncated or bit-flipped files are rejected with
//! a clean error, never a panic and never a silently different
//! snapshot.

use fvs_cluster::NodeSummary;
use fvs_model::{CpiModel, FreqMhz};
use fvs_net::{Snapshot, SnapshotEpisode, SnapshotNode};
use proptest::prelude::*;

/// Any f64, with the non-finite specials drawn often enough to matter.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6f64..1.0e6,
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(-0.0f64),
    ]
}

fn arb_model() -> impl Strategy<Value = Option<CpiModel>> {
    (arb_f64(), arb_f64(), any::<bool>()).prop_map(|(cpi0, m, has)| {
        has.then_some(CpiModel {
            cpi0,
            mem_time_per_instr: m,
        })
    })
}

fn arb_summary() -> impl Strategy<Value = Option<NodeSummary>> {
    (
        0usize..64,
        arb_f64(),
        prop::collection::vec(
            (
                arb_model(),
                any::<bool>(),
                prop::sample::select(vec![250u32, 650, 1000, 1400]),
            ),
            1..6,
        ),
        arb_f64(),
        any::<bool>(),
    )
        .prop_map(|(node, sent_at_s, procs, power_w, has)| {
            has.then(|| NodeSummary {
                node,
                sent_at_s,
                models: procs.iter().map(|(m, _, _)| *m).collect(),
                idle: procs.iter().map(|(_, i, _)| *i).collect(),
                current: procs.iter().map(|(_, _, f)| FreqMhz(*f)).collect(),
                power_w,
            })
        })
}

fn arb_node() -> impl Strategy<Value = SnapshotNode> {
    (
        arb_summary(),
        arb_f64(),
        arb_f64(),
        any::<bool>(),
        (any::<bool>(), 0usize..16),
    )
        .prop_map(
            |(summary, age_s, commanded_w, dead, (has_shape, procs))| SnapshotNode {
                summary,
                age_s,
                commanded_w,
                dead,
                shape: has_shape.then_some(procs),
            },
        )
}

fn arb_episode() -> impl Strategy<Value = Option<SnapshotEpisode>> {
    (
        arb_f64(),
        arb_f64(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(age_s, budget_w, rounds, violation_emitted, has)| {
            has.then_some(SnapshotEpisode {
                age_s,
                budget_w,
                rounds,
                violation_emitted,
            })
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        any::<u64>(),
        arb_f64(),
        arb_f64(),
        any::<u64>(),
        prop::collection::vec(arb_node(), 0..6),
        arb_episode(),
    )
        .prop_map(
            |(epoch, budget_w, taken_at_s, rounds, nodes, episode)| Snapshot {
                epoch,
                budget_w,
                taken_at_s,
                rounds,
                nodes,
                episode,
            },
        )
}

/// Snapshot-level floats round-trip bit-class-exactly: finite values
/// keep their bits, ±inf keeps its sign, every NaN comes back NaN.
fn same_float(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

/// Summary-internal floats keep wire parity instead: non-finite
/// collapses to NaN in transit, finite is bit-exact.
fn same_wire_float(sent: f64, back: f64) -> bool {
    if sent.is_finite() {
        sent.to_bits() == back.to_bits()
    } else {
        back.is_nan()
    }
}

fn assert_summary_matches(sent: &Option<NodeSummary>, back: &Option<NodeSummary>) {
    match (sent, back) {
        (None, None) => {}
        (Some(s), Some(b)) => {
            assert_eq!(b.node, s.node);
            assert!(same_wire_float(s.sent_at_s, b.sent_at_s));
            assert!(same_wire_float(s.power_w, b.power_w));
            assert_eq!(b.idle, s.idle);
            assert_eq!(b.current, s.current);
            assert_eq!(b.models.len(), s.models.len());
            for (bm, sm) in b.models.iter().zip(&s.models) {
                match (bm, sm) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert!(same_wire_float(y.cpi0, x.cpi0));
                        assert!(same_wire_float(y.mem_time_per_instr, x.mem_time_per_instr));
                    }
                    _ => panic!("model presence changed across the snapshot"),
                }
            }
        }
        _ => panic!("summary presence changed across the snapshot"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on snapshots, with the two-tier
    /// float contract: top-level floats keep their non-finite class
    /// (inf stays inf, NaN stays NaN), summary-internal floats keep
    /// wire parity (non-finite → NaN).
    #[test]
    fn snapshot_round_trips(snap in arb_snapshot()) {
        let text = snap.encode().unwrap();
        let back = Snapshot::decode(&text).unwrap();
        prop_assert_eq!(back.epoch, snap.epoch);
        prop_assert_eq!(back.rounds, snap.rounds);
        prop_assert!(same_float(snap.budget_w, back.budget_w));
        prop_assert!(same_float(snap.taken_at_s, back.taken_at_s));
        prop_assert_eq!(back.nodes.len(), snap.nodes.len());
        for (b, s) in back.nodes.iter().zip(&snap.nodes) {
            prop_assert!(same_float(s.age_s, b.age_s));
            prop_assert!(same_float(s.commanded_w, b.commanded_w));
            prop_assert_eq!(b.dead, s.dead);
            prop_assert_eq!(b.shape, s.shape);
            assert_summary_matches(&s.summary, &b.summary);
        }
        match (&snap.episode, &back.episode) {
            (None, None) => {}
            (Some(s), Some(b)) => {
                prop_assert!(same_float(s.age_s, b.age_s));
                prop_assert!(same_float(s.budget_w, b.budget_w));
                prop_assert_eq!(b.rounds, s.rounds);
                prop_assert_eq!(b.violation_emitted, s.violation_emitted);
            }
            _ => prop_assert!(false, "episode presence changed across the snapshot"),
        }
    }

    /// Every truncation of a valid snapshot file is a clean `Err`: the
    /// checksum covers the exact body bytes, so a partial write can
    /// never restore as a shorter-but-valid snapshot.
    #[test]
    fn truncated_files_are_rejected_cleanly(snap in arb_snapshot(), cut in 0usize..100_000) {
        let text = snap.encode().unwrap();
        let cut = cut % text.len();
        // Truncating at a char boundary is enough: real torn writes are
        // byte-aligned and the reader takes &str from read_to_string.
        if text.is_char_boundary(cut) {
            prop_assert!(Snapshot::decode(&text[..cut]).is_err());
        }
    }

    /// A single flipped bit anywhere in the body fails the checksum —
    /// decode errors cleanly, never panics, never yields a snapshot.
    #[test]
    fn bit_flipped_files_are_rejected_cleanly(
        snap in arb_snapshot(),
        at in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let text = snap.encode().unwrap();
        let body_start = text.find('\n').unwrap() + 1;
        let mut bytes = text.into_bytes();
        let at = body_start + (at % (bytes.len() - body_start));
        bytes[at] ^= 1 << bit;
        let s = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(Snapshot::decode(&s).is_err(), "flip at {} survived", at);
    }
}
