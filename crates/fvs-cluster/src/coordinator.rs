//! The global coordinator: Figure 3 across all nodes.

use fvs_model::{CpiModel, FreqMhz};
use fvs_sched::{CacheStats, FvsstAlgorithm, ModelTolerance, ProcInput, ScheduleCache};
use fvs_telemetry::{Counter, Gauge, SchedEvent, Telemetry, Tracer};
use serde::{Deserialize, Serialize};

/// What a node ships to the coordinator each scheduling period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Sending node.
    pub node: usize,
    /// Send timestamp (s).
    pub sent_at_s: f64,
    /// Per-processor fitted models (None = uninformative window).
    pub models: Vec<Option<CpiModel>>,
    /// Per-processor idle signals.
    pub idle: Vec<bool>,
    /// Per-processor current frequencies.
    pub current: Vec<FreqMhz>,
    /// Node aggregate power at send time (W) — the coordinator's
    /// compliance telemetry.
    pub power_w: f64,
}

/// What the coordinator ships back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyCommand {
    /// Target node.
    pub node: usize,
    /// Frequency per processor of that node.
    pub freqs: Vec<FreqMhz>,
}

/// Default heartbeat timeout: a node silent for longer is presumed dead
/// and charged conservatively. Five paper-default scheduling periods
/// (T = 100 ms) — long enough for latency jitter, short against ΔT.
pub const DEFAULT_HEARTBEAT_TIMEOUT_S: f64 = 0.5;

/// Default conservative charge for a node that has *never* reported: a
/// full p630 node at maximum frequency (4 × 140 W).
pub const DEFAULT_WORST_CASE_NODE_W: f64 = 560.0;

/// One node's coordinator-side charging state, as exported into (and
/// restored from) a crash-recovery snapshot: the last summary held, the
/// last-commanded power ceiling, the dead flag and the learned
/// processor-count shape. Everything conservative charging needs — a
/// resumed coordinator that restores these keeps charging a silent node
/// `max(last reported, last commanded)` (or worst-case if it knows
/// nothing) exactly as if it had never crashed.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRestore {
    /// The newest summary held for the node (its `sent_at_s` is on the
    /// exporter's clock; rebase before restoring).
    pub summary: Option<NodeSummary>,
    /// Ceiling of the frequencies last commanded (W).
    pub commanded_w: f64,
    /// Whether the node was already declared dead.
    pub dead: bool,
    /// Learned per-node processor count (for blind fail-safe commands).
    pub shape: Option<usize>,
}

/// Runs the two-pass algorithm over every processor of every node under
/// the single global budget.
#[derive(Debug)]
pub struct GlobalCoordinator {
    algorithm: FvsstAlgorithm,
    latest: Vec<Option<NodeSummary>>,
    // Reused across rounds so the steady-state global computation does
    // not allocate; nodes with phase-stable models hit the fingerprint
    // cache and skip their per-processor rebuild entirely.
    cache: ScheduleCache,
    coords: Vec<(usize, usize)>,
    procs: Vec<ProcInput>,
    rounds: u64,
    telemetry: Telemetry,
    tracer: Tracer,
    metrics: Option<CoordMetrics>,
    /// A node silent for longer than this is declared dead.
    heartbeat_timeout_s: f64,
    /// Conservative charge for a node that has never reported (W).
    worst_case_node_w: f64,
    /// One-shot dead declarations (reset when the node reports again).
    dead: Vec<bool>,
    /// Power reserved for silent nodes in the last round (W).
    reserved_w: f64,
    /// Per-node ceiling of the frequencies last *commanded* (W). A node
    /// can die after commands were issued but before any summary
    /// reflects them, so its last report may understate what it is now
    /// drawing; dead nodes are charged the max of both.
    commanded_w: Vec<f64>,
    /// Per-node processor count, learned from any uplink arrival — even
    /// a rejected one, as long as its vectors agree. Lets the
    /// coordinator send blind fail-safe commands to a node it can hear
    /// nothing useful from.
    shape: Vec<Option<usize>>,
    /// Nodes charged (not scheduled) in the last computation — they
    /// receive blind fail-safe commands. Reused across rounds.
    blind: Vec<usize>,
}

/// Metric handles, created once at construction so scheduling rounds
/// never touch the registry mutex.
#[derive(Debug)]
struct CoordMetrics {
    rounds: std::sync::Arc<Counter>,
    summaries_ingested: std::sync::Arc<Counter>,
    summaries_stale: std::sync::Arc<Counter>,
    summaries_rejected: std::sync::Arc<Counter>,
    commands_sent: std::sync::Arc<Counter>,
    reported_power_watts: std::sync::Arc<Gauge>,
    nodes_reporting: std::sync::Arc<Gauge>,
    reserved_watts: std::sync::Arc<Gauge>,
}

impl GlobalCoordinator {
    /// Coordinator for `nodes` nodes.
    pub fn new(algorithm: FvsstAlgorithm, nodes: usize) -> Self {
        Self::with_telemetry(algorithm, nodes, Telemetry::disabled())
    }

    /// Coordinator that journals one [`SchedEvent::ClusterRound`] per
    /// global round and keeps `cluster.*` counters/gauges (summaries
    /// ingested and dropped as stale, commands fanned out, reported
    /// aggregate power).
    pub fn with_telemetry(algorithm: FvsstAlgorithm, nodes: usize, telemetry: Telemetry) -> Self {
        let metrics = telemetry.registry().map(|r| {
            let scope = r.scoped("cluster");
            CoordMetrics {
                rounds: scope.counter("rounds"),
                summaries_ingested: scope.counter("summaries_ingested"),
                summaries_stale: scope.counter("summaries_stale"),
                summaries_rejected: scope.counter("summaries_rejected"),
                commands_sent: scope.counter("commands_sent"),
                reported_power_watts: scope.gauge("reported_power_watts"),
                nodes_reporting: scope.gauge("nodes_reporting"),
                reserved_watts: scope.gauge("reserved_watts"),
            }
        });
        GlobalCoordinator {
            algorithm,
            latest: vec![None; nodes],
            cache: ScheduleCache::with_tolerance(ModelTolerance::PHASE_DEFAULT),
            coords: Vec::new(),
            procs: Vec::new(),
            rounds: 0,
            telemetry,
            tracer: Tracer::disabled(),
            metrics,
            heartbeat_timeout_s: DEFAULT_HEARTBEAT_TIMEOUT_S,
            worst_case_node_w: DEFAULT_WORST_CASE_NODE_W,
            dead: vec![false; nodes],
            reserved_w: 0.0,
            commanded_w: vec![0.0; nodes],
            shape: vec![None; nodes],
            blind: Vec::new(),
        }
    }

    /// Override the heartbeat timeout after which a silent node is
    /// declared dead and charged conservatively.
    pub fn with_heartbeat_timeout(mut self, timeout_s: f64) -> Self {
        self.heartbeat_timeout_s = timeout_s;
        self
    }

    /// Override the conservative charge for nodes that have never
    /// reported (heterogeneous clusters with bigger machines).
    pub fn with_worst_case_node_w(mut self, watts: f64) -> Self {
        self.worst_case_node_w = watts;
        self
    }

    /// Attach a causal span tracer: each global round records
    /// `cluster.round` with `cluster.liveness_sweep`, the two-pass
    /// spans (`sched.pass1` / `sched.cache_probe` / `sched.pass2`) and
    /// `cluster.emit_commands` as children.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Cache effectiveness counters for the global computation.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The conservative charge for a node that has never reported (W).
    pub fn worst_case_node_w(&self) -> f64 {
        self.worst_case_node_w
    }

    /// Ingest a (possibly stale) node summary; newer summaries replace
    /// older ones. Returns `true` when the summary was accepted and
    /// stored (fresh and well-formed), `false` when it was rejected or
    /// lost to a newer one already held.
    ///
    /// The uplink is not trusted: a summary with a non-finite timestamp
    /// or power, an out-of-range node index, or mismatched per-processor
    /// vectors is rejected whole, and any individual model with
    /// non-finite components is degraded to `None` (the processor is
    /// scheduled as unmodelled, holding its current frequency). Nothing
    /// a node ships can make the global computation produce a NaN.
    pub fn ingest(&mut self, mut summary: NodeSummary) -> bool {
        let n_procs = summary.models.len();
        // Even a summary rejected for corrupt content reveals the node's
        // processor count — enough to fail-safe it later.
        if summary.node < self.latest.len()
            && summary.idle.len() == n_procs
            && summary.current.len() == n_procs
        {
            self.shape[summary.node] = Some(n_procs);
        }
        if summary.node >= self.latest.len()
            || !summary.sent_at_s.is_finite()
            || !summary.power_w.is_finite()
            || summary.power_w < 0.0
            || summary.idle.len() != n_procs
            || summary.current.len() != n_procs
        {
            if let Some(m) = &self.metrics {
                m.summaries_rejected.inc();
            }
            if self.telemetry.enabled() {
                self.telemetry.emit(SchedEvent::SampleQuarantined {
                    t_s: summary.sent_at_s,
                    proc: summary.node as u32,
                    value: summary.power_w,
                });
            }
            return false;
        }
        for (p, slot) in summary.models.iter_mut().enumerate() {
            if let Some(model) = slot {
                if !model.is_valid() {
                    if self.telemetry.enabled() {
                        self.telemetry.emit(SchedEvent::SampleQuarantined {
                            t_s: summary.sent_at_s,
                            proc: p as u32,
                            value: model.cpi0,
                        });
                    }
                    *slot = None;
                }
            }
        }
        let slot = &mut self.latest[summary.node];
        let newer = slot
            .as_ref()
            .map(|old| summary.sent_at_s >= old.sent_at_s)
            .unwrap_or(true);
        if let Some(m) = &self.metrics {
            if newer {
                m.summaries_ingested.inc();
            } else {
                m.summaries_stale.inc();
            }
        }
        if newer {
            *slot = Some(summary);
        }
        newer
    }

    /// How many nodes have reported at least once.
    pub fn nodes_reporting(&self) -> usize {
        self.latest.iter().filter(|s| s.is_some()).count()
    }

    /// Sum of the latest reported node powers (telemetry view; lags
    /// reality by the message latency).
    pub fn reported_power_w(&self) -> f64 {
        self.latest.iter().flatten().map(|s| s.power_w).sum()
    }

    /// Power reserved for silent or never-reported nodes in the last
    /// round (W) — subtracted from the global budget before scheduling
    /// the live nodes.
    pub fn reserved_w(&self) -> f64 {
        self.reserved_w
    }

    /// Nodes currently presumed dead (silent past the heartbeat
    /// timeout, or never heard from once the timeout has elapsed).
    pub fn dead_nodes(&self) -> usize {
        self.dead.iter().filter(|d| **d).count()
    }

    /// Run the global computation at time `now_s` and emit one command
    /// per live node.
    ///
    /// Graceful degradation for the silent: a node whose last summary
    /// is older than the heartbeat timeout cannot be commanded, so its
    /// last-reported power is *charged against the budget* and the live
    /// nodes are scheduled under what remains; a node that never
    /// reported at all is charged the worst-case node power. Either way
    /// the cluster's true draw cannot exceed the global budget because
    /// of a node the coordinator cannot see.
    pub fn schedule(&mut self, budget_w: f64, now_s: f64) -> Vec<FrequencyCommand> {
        let _round_span = self.tracer.span("cluster.round");
        self.compute(budget_w, now_s);
        let commands = {
            let _emit_span = self.tracer.span("cluster.emit_commands");
            self.emit_commands()
        };
        let (feasible, predicted_power_w) = {
            let d = self.cache.decision();
            (d.feasible, d.predicted_power_w)
        };
        let round = self.rounds;
        self.rounds += 1;
        if self.telemetry.enabled() {
            self.telemetry.emit(SchedEvent::ClusterRound {
                round,
                nodes: self.nodes_reporting() as u32,
                procs: self.procs.len() as u32,
                budget_w,
                predicted_power_w,
                feasible,
            });
            if let Some(m) = &self.metrics {
                m.rounds.inc();
                m.commands_sent.add(commands.len() as u64);
                m.reported_power_watts.set(self.reported_power_w());
                m.nodes_reporting.set(self.nodes_reporting() as f64);
                m.reserved_watts.set(self.reserved_w);
            }
        }
        commands
    }

    /// The liveness sweep plus the cached two-pass computation, without
    /// emitting commands: flattens live processors into the reusable
    /// `ProcInput` list, charges silent and never-reported nodes against
    /// the budget, and runs `schedule_cached` under what remains. The
    /// decision lands in [`schedule_cache`](Self::schedule_cache); the
    /// hierarchy layer calls this to refresh a rack's aggregate before
    /// its sub-budget is known, then [`recompute_budget`] +
    /// [`emit_commands`] once it is.
    ///
    /// [`recompute_budget`]: Self::recompute_budget
    /// [`emit_commands`]: Self::emit_commands
    pub(crate) fn compute(&mut self, budget_w: f64, now_s: f64) {
        let sweep_span = self.tracer.span("cluster.liveness_sweep");
        self.coords.clear();
        self.procs.clear();
        self.blind.clear();
        let mut reserved_w = 0.0;
        for (node_idx, slot) in self.latest.iter().enumerate() {
            match slot {
                Some(s) if now_s - s.sent_at_s <= self.heartbeat_timeout_s => {
                    self.dead[node_idx] = false;
                    for p in 0..s.models.len() {
                        self.coords.push((node_idx, p));
                        self.procs.push(ProcInput {
                            model: s.models[p],
                            idle: s.idle[p],
                            current: s.current[p],
                        });
                    }
                }
                Some(s) => {
                    // Silent past the timeout: hold the larger of what it
                    // last reported drawing and the ceiling of what it was
                    // last commanded (it may have gone silent after a
                    // boost command but before any summary reflected it).
                    let charged_w = s.power_w.max(self.commanded_w[node_idx]);
                    reserved_w += charged_w;
                    self.blind.push(node_idx);
                    if !self.dead[node_idx] {
                        self.dead[node_idx] = true;
                        self.telemetry.emit(SchedEvent::NodeDeclaredDead {
                            t_s: now_s,
                            node: node_idx as u32,
                            last_seen_s: s.sent_at_s,
                            charged_w,
                        });
                    }
                }
                None if now_s > self.heartbeat_timeout_s => {
                    // Never heard from and overdue: assume the worst.
                    reserved_w += self.worst_case_node_w;
                    self.blind.push(node_idx);
                    if !self.dead[node_idx] {
                        self.dead[node_idx] = true;
                        self.telemetry.emit(SchedEvent::NodeDeclaredDead {
                            t_s: now_s,
                            node: node_idx as u32,
                            last_seen_s: f64::NAN,
                            charged_w: self.worst_case_node_w,
                        });
                    }
                }
                None => {
                    // Startup grace: overdue only once the timeout has
                    // elapsed, but still charged conservatively so the
                    // first rounds cannot overshoot on its account.
                    reserved_w += self.worst_case_node_w;
                }
            }
        }
        drop(sweep_span);
        self.reserved_w = reserved_w;
        let effective_budget_w = (budget_w - reserved_w).max(0.0);
        self.algorithm.schedule_cached_traced(
            &mut self.cache,
            &self.procs,
            effective_budget_w,
            &self.tracer,
        );
    }

    /// Re-run passes 2 + 3 under a different budget over the processor
    /// set of the last [`compute`](Self::compute), skipping the liveness
    /// sweep (every per-processor fingerprint hits, so only the budget
    /// passes run). The hierarchy layer uses this when a rack's
    /// sub-budget changed but nothing inside the rack did.
    pub(crate) fn recompute_budget(&mut self, budget_w: f64) {
        let effective_budget_w = (budget_w - self.reserved_w).max(0.0);
        self.algorithm
            .schedule_cached(&mut self.cache, &self.procs, effective_budget_w);
    }

    /// Regroup the last computed decision into per-node commands, record
    /// the commanded power ceilings, and append blind fail-safe commands
    /// for charged nodes.
    pub(crate) fn emit_commands(&mut self) -> Vec<FrequencyCommand> {
        let d = self.cache.decision();
        // Regroup per node (the command vectors are shipped, so they are
        // allocated fresh).
        let mut commands: Vec<FrequencyCommand> = Vec::new();
        for ((node, _p), f) in self.coords.iter().zip(&d.freqs) {
            match commands.last_mut() {
                Some(cmd) if cmd.node == *node => cmd.freqs.push(*f),
                _ => commands.push(FrequencyCommand {
                    node: *node,
                    freqs: vec![*f],
                }),
            }
        }
        // Remember each commanded node's power ceiling for conservative
        // charging should it go silent before reporting again.
        for cmd in &commands {
            self.commanded_w[cmd.node] = cmd
                .freqs
                .iter()
                .map(|f| self.algorithm.power_table.power_interpolated(*f))
                .sum();
        }
        // Blind fail-safe: a charged node may be mute-but-running (its
        // uplink corrupted while its downlink still works), in which
        // case nothing we reserve restores *measured* compliance — so
        // command it to f_min anyway. Unacknowledged, hence it never
        // lowers `commanded_w`: the conservative charge stands until the
        // node actually reports again.
        let f_min = self.algorithm.freq_set.min();
        for &node in &self.blind {
            if let Some(n_procs) = self.shape[node] {
                commands.push(FrequencyCommand {
                    node,
                    freqs: vec![f_min; n_procs],
                });
            }
        }
        commands
    }

    /// The incremental-scheduling cache behind the global computation —
    /// the hierarchy layer reads the desired/floor powers and the
    /// demotion ladder of the last round from it.
    pub fn schedule_cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Nodes this coordinator was built for.
    pub fn num_nodes(&self) -> usize {
        self.latest.len()
    }

    /// Whether node `node` is currently presumed dead.
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead.get(node).copied().unwrap_or(false)
    }

    /// The earliest future time at which a currently-live node could be
    /// declared dead (its last heartbeat plus the timeout), or the
    /// startup-grace expiry for nodes never heard from. `+∞` when no
    /// liveness transition can occur without a new summary arriving.
    /// A round skipped until this deadline cannot miss a declaration.
    pub fn next_liveness_deadline_s(&self) -> f64 {
        let mut deadline = f64::INFINITY;
        for (node_idx, slot) in self.latest.iter().enumerate() {
            if self.dead[node_idx] {
                continue;
            }
            let due = match slot {
                Some(s) => s.sent_at_s + self.heartbeat_timeout_s,
                // Never reported: the grace period ends at the timeout.
                None => self.heartbeat_timeout_s,
            };
            deadline = deadline.min(due);
        }
        deadline
    }

    /// The newest summary held for `node` (snapshot export and tests).
    pub fn latest_summary(&self, node: usize) -> Option<&NodeSummary> {
        self.latest.get(node).and_then(|s| s.as_ref())
    }

    /// Export `node`'s charging state for a crash-recovery snapshot, or
    /// `None` when the index is out of range.
    pub fn export_node(&self, node: usize) -> Option<NodeRestore> {
        if node >= self.latest.len() {
            return None;
        }
        Some(NodeRestore {
            summary: self.latest[node].clone(),
            commanded_w: self.commanded_w[node],
            dead: self.dead[node],
            shape: self.shape[node],
        })
    }

    /// Restore `node`'s charging state from a snapshot — the resync
    /// charging path. The caller rebases `summary.sent_at_s` onto its
    /// own clock first; a resumed coordinator deliberately stamps it
    /// stale so the next liveness sweep charges the node
    /// `max(last reported, last commanded)` (its last-charged ceiling)
    /// until a fresh summary arrives. Out-of-range indices and
    /// malformed summaries are ignored (a snapshot cannot widen the
    /// cluster or inject what [`ingest`](Self::ingest) would refuse).
    pub fn restore_node(&mut self, node: usize, r: NodeRestore) {
        if node >= self.latest.len() {
            return;
        }
        if let Some(s) = &r.summary {
            let n_procs = s.models.len();
            if s.node != node
                || s.idle.len() != n_procs
                || s.current.len() != n_procs
                || !s.power_w.is_finite()
                || s.power_w < 0.0
            {
                // Keep the flags/ceiling but drop the corrupt summary:
                // the node degrades to worst-case charging.
                self.commanded_w[node] = if r.commanded_w.is_finite() && r.commanded_w >= 0.0 {
                    r.commanded_w
                } else {
                    0.0
                };
                self.dead[node] = r.dead;
                self.shape[node] = r.shape;
                self.latest[node] = None;
                return;
            }
        }
        self.latest[node] = r.summary;
        self.commanded_w[node] = if r.commanded_w.is_finite() && r.commanded_w >= 0.0 {
            r.commanded_w
        } else {
            0.0
        };
        self.dead[node] = r.dead;
        self.shape[node] = r.shape;
    }

    /// A conservative ceiling on what this coordinator's nodes can draw
    /// if the coordinator itself dies right now and can issue no further
    /// commands: the reserve already charged for silent nodes, plus each
    /// live node's last-commanded power ceiling (worst case for nodes
    /// never commanded). A parent tier charges this against its budget
    /// when the subtree goes dark.
    pub fn charge_ceiling_w(&self) -> f64 {
        let mut total = self.reserved_w;
        for (node_idx, slot) in self.latest.iter().enumerate() {
            let Some(s) = slot else {
                // Never-reported nodes are already in the reserve
                // (grace charges are part of `reserved_w` after any
                // compute).
                continue;
            };
            if self.dead[node_idx] {
                continue; // likewise already reserved
            }
            // The larger of what the node last reported drawing and the
            // ceiling of what it was last commanded; a node that was
            // never commanded cannot ramp past its current draw on its
            // own, so its report is the honest ceiling. Worst case only
            // if we know neither.
            let ceiling = self.commanded_w[node_idx].max(s.power_w);
            total += if ceiling > 0.0 {
                ceiling
            } else {
                self.worst_case_node_w
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(node: usize, at: f64, mem_times: &[f64]) -> NodeSummary {
        NodeSummary {
            node,
            sent_at_s: at,
            models: mem_times
                .iter()
                .map(|m| Some(CpiModel::from_components(1.0, *m)))
                .collect(),
            idle: vec![false; mem_times.len()],
            current: vec![FreqMhz(1000); mem_times.len()],
            power_w: 140.0 * mem_times.len() as f64,
        }
    }

    #[test]
    fn stale_summaries_do_not_replace_fresh_ones() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        c.ingest(summary(0, 2.0, &[0.0]));
        c.ingest(summary(0, 1.0, &[10.0e-9])); // older: ignored
        let cmds = c.schedule(f64::INFINITY, 2.0);
        assert_eq!(cmds.len(), 1);
        // The fresh (CPU-bound) summary wins: high frequency.
        assert!(cmds[0].freqs[0] >= FreqMhz(950));
    }

    #[test]
    fn global_budget_spans_nodes() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        // Node 0 CPU-bound, node 1 memory-bound, 2 procs each.
        c.ingest(summary(0, 1.0, &[0.0, 0.0]));
        c.ingest(summary(1, 1.0, &[10.0e-9, 10.0e-9]));
        // Budget forces trade-offs: 4 procs, 300 W total.
        let cmds = c.schedule(300.0, 1.0);
        let table = fvs_power::FreqPowerTable::p630_table1();
        let total: f64 = cmds
            .iter()
            .flat_map(|c| c.freqs.iter())
            .map(|f| table.power_interpolated(*f))
            .sum();
        assert!(total <= 300.0);
        // Diversity: the memory-bound node ended lower than the
        // CPU-bound node.
        let f_cpu = cmds.iter().find(|c| c.node == 0).unwrap().freqs[0];
        let f_mem = cmds.iter().find(|c| c.node == 1).unwrap().freqs[0];
        assert!(f_cpu > f_mem, "{f_cpu} vs {f_mem}");
    }

    #[test]
    fn missing_nodes_are_charged_worst_case_not_ignored() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 3);
        c.ingest(summary(1, 1.0, &[0.0]));
        let cmds = c.schedule(f64::INFINITY, 1.0);
        // Only the reporting node is commanded...
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].node, 1);
        assert_eq!(c.nodes_reporting(), 1);
        // ...but the two silent nodes are *not* free: each reserves the
        // worst-case node power against the budget.
        assert_eq!(c.reserved_w(), 2.0 * DEFAULT_WORST_CASE_NODE_W);
        // Past the heartbeat timeout they are declared dead outright.
        assert_eq!(c.dead_nodes(), 2);
    }

    #[test]
    fn silent_node_is_charged_its_last_known_power() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        // Both report; node 1 then falls silent.
        c.ingest(summary(0, 1.0, &[0.0, 0.0]));
        c.ingest(summary(1, 1.0, &[0.0, 0.0])); // last reported 280 W
        c.ingest(summary(0, 2.0, &[0.0, 0.0]));
        let cmds = c.schedule(300.0, 2.0);
        // Node 1 is a second past the timeout: dead, charged 280 W.
        assert_eq!(c.reserved_w(), 280.0);
        assert_eq!(c.dead_nodes(), 1);
        // Node 0's two CPU-bound procs get only the remaining 20 W:
        // they are demoted to the floor. Node 1 is not scheduled, but it
        // does get a blind fail-safe command — it may be mute yet
        // running, and the downlink might still work.
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].node, 0);
        for f in &cmds[0].freqs {
            assert_eq!(*f, FreqMhz(250));
        }
        assert_eq!(cmds[1].node, 1);
        assert_eq!(cmds[1].freqs, vec![FreqMhz(250); 2]);
        // The blind command is unacknowledged: node 1 stays charged.
        assert_eq!(c.reserved_w(), 280.0);
    }

    #[test]
    fn recovered_node_is_no_longer_charged() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        c.ingest(summary(0, 1.0, &[0.0]));
        c.ingest(summary(1, 1.0, &[0.0]));
        c.ingest(summary(0, 2.0, &[0.0]));
        c.schedule(300.0, 2.0);
        assert_eq!(c.dead_nodes(), 1);
        // Node 1 comes back (and node 0 keeps heartbeating).
        c.ingest(summary(0, 2.5, &[0.0]));
        c.ingest(summary(1, 2.5, &[0.0]));
        let cmds = c.schedule(300.0, 2.6);
        assert_eq!(c.reserved_w(), 0.0);
        assert_eq!(c.dead_nodes(), 0);
        assert_eq!(cmds.len(), 2);
    }

    /// The resync charging path: a coordinator built from another's
    /// exported node state charges a still-silent node its last-charged
    /// ceiling — never less — and releases the charge only when a fresh
    /// summary arrives.
    #[test]
    fn restored_node_state_keeps_the_conservative_charge() {
        let mut a = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        a.ingest(summary(0, 1.0, &[0.0, 0.0]));
        a.ingest(summary(1, 1.0, &[0.0, 0.0]));
        a.schedule(300.0, 1.0); // records commanded_w ceilings
        let exported: Vec<NodeRestore> = (0..2).map(|n| a.export_node(n).unwrap()).collect();
        assert!(exported[1].summary.is_some());
        assert!(exported[1].commanded_w > 0.0);

        // "Restart": a fresh coordinator restores both nodes with their
        // summaries re-stamped stale (the resumed clock starts over).
        let mut b = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        for (n, mut r) in exported.into_iter().enumerate() {
            if let Some(s) = &mut r.summary {
                s.sent_at_s = -10.0; // stale by construction
            }
            r.dead = true; // restored charges don't re-announce death
            b.restore_node(n, r);
        }
        b.schedule(300.0, 0.1);
        // Both nodes are charged max(last power, commanded ceiling) —
        // the last-charged-ceiling discipline — not scheduled as live.
        assert_eq!(b.dead_nodes(), 2);
        assert!(
            b.reserved_w() >= 2.0 * 280.0f64.min(300.0 / 2.0),
            "reserved {:.0} W",
            b.reserved_w()
        );
        // A fresh summary releases the charge.
        b.ingest(summary(1, 0.2, &[0.0, 0.0]));
        b.schedule(300.0, 0.25);
        assert_eq!(b.dead_nodes(), 1);

        // Out-of-range and corrupt restores are ignored, not panics.
        b.restore_node(
            9,
            NodeRestore {
                summary: None,
                commanded_w: 1.0,
                dead: false,
                shape: None,
            },
        );
        let mut bad = summary(0, 0.0, &[0.0]);
        bad.power_w = f64::NAN;
        b.restore_node(
            0,
            NodeRestore {
                summary: Some(bad),
                commanded_w: f64::NAN,
                dead: true,
                shape: Some(1),
            },
        );
        assert!(b.latest_summary(0).is_none(), "corrupt summary dropped");
        assert_eq!(b.export_node(0).unwrap().commanded_w, 0.0);
    }

    #[test]
    fn corrupt_summaries_are_rejected_whole() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        c.ingest(summary(0, 1.0, &[0.0]));
        // NaN power: rejected, the earlier summary survives.
        let mut bad = summary(0, 2.0, &[10.0e-9]);
        bad.power_w = f64::NAN;
        c.ingest(bad);
        // Mismatched vectors: rejected.
        let mut bad = summary(0, 2.0, &[10.0e-9]);
        bad.idle = vec![false; 3];
        c.ingest(bad);
        // Out-of-range node index: rejected (not a panic).
        c.ingest(summary(7, 2.0, &[0.0]));
        let cmds = c.schedule(f64::INFINITY, 1.0);
        assert_eq!(cmds.len(), 1);
        // The surviving summary is the clean CPU-bound one.
        assert!(cmds[0].freqs[0] >= FreqMhz(950));
    }

    #[test]
    fn invalid_models_degrade_to_unmodelled_not_nan() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 1);
        let mut s = summary(0, 1.0, &[0.0, 0.0]);
        s.models[1] = Some(CpiModel::from_components(f64::NAN, 0.0));
        s.current[1] = FreqMhz(800);
        c.ingest(s);
        let cmds = c.schedule(f64::INFINITY, 1.0);
        // The corrupt model is quarantined: its processor is scheduled
        // as unmodelled and holds its current frequency.
        assert_eq!(cmds[0].freqs[1], FreqMhz(800));
        assert!(cmds[0].freqs.iter().all(|f| f.0 > 0));
    }
}
