//! The global coordinator: Figure 3 across all nodes.

use fvs_model::{CpiModel, FreqMhz};
use fvs_sched::{CacheStats, FvsstAlgorithm, ModelTolerance, ProcInput, ScheduleCache};
use fvs_telemetry::{Counter, Gauge, SchedEvent, Telemetry};
use serde::{Deserialize, Serialize};

/// What a node ships to the coordinator each scheduling period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Sending node.
    pub node: usize,
    /// Send timestamp (s).
    pub sent_at_s: f64,
    /// Per-processor fitted models (None = uninformative window).
    pub models: Vec<Option<CpiModel>>,
    /// Per-processor idle signals.
    pub idle: Vec<bool>,
    /// Per-processor current frequencies.
    pub current: Vec<FreqMhz>,
    /// Node aggregate power at send time (W) — the coordinator's
    /// compliance telemetry.
    pub power_w: f64,
}

/// What the coordinator ships back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyCommand {
    /// Target node.
    pub node: usize,
    /// Frequency per processor of that node.
    pub freqs: Vec<FreqMhz>,
}

/// Runs the two-pass algorithm over every processor of every node under
/// the single global budget.
#[derive(Debug)]
pub struct GlobalCoordinator {
    algorithm: FvsstAlgorithm,
    latest: Vec<Option<NodeSummary>>,
    // Reused across rounds so the steady-state global computation does
    // not allocate; nodes with phase-stable models hit the fingerprint
    // cache and skip their per-processor rebuild entirely.
    cache: ScheduleCache,
    coords: Vec<(usize, usize)>,
    procs: Vec<ProcInput>,
    rounds: u64,
    telemetry: Telemetry,
    metrics: Option<CoordMetrics>,
}

/// Metric handles, created once at construction so scheduling rounds
/// never touch the registry mutex.
#[derive(Debug)]
struct CoordMetrics {
    rounds: std::sync::Arc<Counter>,
    summaries_ingested: std::sync::Arc<Counter>,
    summaries_stale: std::sync::Arc<Counter>,
    commands_sent: std::sync::Arc<Counter>,
    reported_power_watts: std::sync::Arc<Gauge>,
    nodes_reporting: std::sync::Arc<Gauge>,
}

impl GlobalCoordinator {
    /// Coordinator for `nodes` nodes.
    pub fn new(algorithm: FvsstAlgorithm, nodes: usize) -> Self {
        Self::with_telemetry(algorithm, nodes, Telemetry::disabled())
    }

    /// Coordinator that journals one [`SchedEvent::ClusterRound`] per
    /// global round and keeps `cluster.*` counters/gauges (summaries
    /// ingested and dropped as stale, commands fanned out, reported
    /// aggregate power).
    pub fn with_telemetry(algorithm: FvsstAlgorithm, nodes: usize, telemetry: Telemetry) -> Self {
        let metrics = telemetry.registry().map(|r| {
            let scope = r.scoped("cluster");
            CoordMetrics {
                rounds: scope.counter("rounds"),
                summaries_ingested: scope.counter("summaries_ingested"),
                summaries_stale: scope.counter("summaries_stale"),
                commands_sent: scope.counter("commands_sent"),
                reported_power_watts: scope.gauge("reported_power_watts"),
                nodes_reporting: scope.gauge("nodes_reporting"),
            }
        });
        GlobalCoordinator {
            algorithm,
            latest: vec![None; nodes],
            cache: ScheduleCache::with_tolerance(ModelTolerance::PHASE_DEFAULT),
            coords: Vec::new(),
            procs: Vec::new(),
            rounds: 0,
            telemetry,
            metrics,
        }
    }

    /// Cache effectiveness counters for the global computation.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Ingest a (possibly stale) node summary; newer summaries replace
    /// older ones.
    pub fn ingest(&mut self, summary: NodeSummary) {
        let slot = &mut self.latest[summary.node];
        let newer = slot
            .as_ref()
            .map(|old| summary.sent_at_s >= old.sent_at_s)
            .unwrap_or(true);
        if let Some(m) = &self.metrics {
            if newer {
                m.summaries_ingested.inc();
            } else {
                m.summaries_stale.inc();
            }
        }
        if newer {
            *slot = Some(summary);
        }
    }

    /// How many nodes have reported at least once.
    pub fn nodes_reporting(&self) -> usize {
        self.latest.iter().filter(|s| s.is_some()).count()
    }

    /// Sum of the latest reported node powers (telemetry view; lags
    /// reality by the message latency).
    pub fn reported_power_w(&self) -> f64 {
        self.latest.iter().flatten().map(|s| s.power_w).sum()
    }

    /// Run the global computation and emit one command per reporting
    /// node. Nodes that never reported are skipped and keep their
    /// current frequencies.
    pub fn schedule(&mut self, budget_w: f64) -> Vec<FrequencyCommand> {
        // Flatten all reporting processors into one ProcInput list,
        // remembering (node, proc) coordinates. Buffers are reused.
        self.coords.clear();
        self.procs.clear();
        for (node_idx, slot) in self.latest.iter().enumerate() {
            if let Some(s) = slot {
                for p in 0..s.models.len() {
                    self.coords.push((node_idx, p));
                    self.procs.push(ProcInput {
                        model: s.models[p],
                        idle: s.idle[p],
                        current: s.current[p],
                    });
                }
            }
        }
        let d = self
            .algorithm
            .schedule_cached(&mut self.cache, &self.procs, budget_w);
        let (feasible, predicted_power_w) = (d.feasible, d.predicted_power_w);
        // Regroup per node (the command vectors are shipped, so they are
        // allocated fresh).
        let mut commands: Vec<FrequencyCommand> = Vec::new();
        for ((node, _p), f) in self.coords.iter().zip(&d.freqs) {
            match commands.last_mut() {
                Some(cmd) if cmd.node == *node => cmd.freqs.push(*f),
                _ => commands.push(FrequencyCommand {
                    node: *node,
                    freqs: vec![*f],
                }),
            }
        }
        let round = self.rounds;
        self.rounds += 1;
        if self.telemetry.enabled() {
            self.telemetry.emit(SchedEvent::ClusterRound {
                round,
                nodes: self.nodes_reporting() as u32,
                procs: self.procs.len() as u32,
                budget_w,
                predicted_power_w,
                feasible,
            });
            if let Some(m) = &self.metrics {
                m.rounds.inc();
                m.commands_sent.add(commands.len() as u64);
                m.reported_power_watts.set(self.reported_power_w());
                m.nodes_reporting.set(self.nodes_reporting() as f64);
            }
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(node: usize, at: f64, mem_times: &[f64]) -> NodeSummary {
        NodeSummary {
            node,
            sent_at_s: at,
            models: mem_times
                .iter()
                .map(|m| Some(CpiModel::from_components(1.0, *m)))
                .collect(),
            idle: vec![false; mem_times.len()],
            current: vec![FreqMhz(1000); mem_times.len()],
            power_w: 140.0 * mem_times.len() as f64,
        }
    }

    #[test]
    fn stale_summaries_do_not_replace_fresh_ones() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        c.ingest(summary(0, 2.0, &[0.0]));
        c.ingest(summary(0, 1.0, &[10.0e-9])); // older: ignored
        let cmds = c.schedule(f64::INFINITY);
        assert_eq!(cmds.len(), 1);
        // The fresh (CPU-bound) summary wins: high frequency.
        assert!(cmds[0].freqs[0] >= FreqMhz(950));
    }

    #[test]
    fn global_budget_spans_nodes() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 2);
        // Node 0 CPU-bound, node 1 memory-bound, 2 procs each.
        c.ingest(summary(0, 1.0, &[0.0, 0.0]));
        c.ingest(summary(1, 1.0, &[10.0e-9, 10.0e-9]));
        // Budget forces trade-offs: 4 procs, 300 W total.
        let cmds = c.schedule(300.0);
        let table = fvs_power::FreqPowerTable::p630_table1();
        let total: f64 = cmds
            .iter()
            .flat_map(|c| c.freqs.iter())
            .map(|f| table.power_interpolated(*f))
            .sum();
        assert!(total <= 300.0);
        // Diversity: the memory-bound node ended lower than the
        // CPU-bound node.
        let f_cpu = cmds.iter().find(|c| c.node == 0).unwrap().freqs[0];
        let f_mem = cmds.iter().find(|c| c.node == 1).unwrap().freqs[0];
        assert!(f_cpu > f_mem, "{f_cpu} vs {f_mem}");
    }

    #[test]
    fn missing_nodes_are_skipped() {
        let mut c = GlobalCoordinator::new(FvsstAlgorithm::p630(), 3);
        c.ingest(summary(1, 1.0, &[0.0]));
        let cmds = c.schedule(f64::INFINITY);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].node, 1);
        assert_eq!(c.nodes_reporting(), 1);
    }
}
