//! A cluster node: one machine plus its local measurement agent.

use crate::coordinator::NodeSummary;
use fvs_model::{CounterDelta, FreqMhz};
use fvs_sched::Predictor;
use fvs_sim::Machine;
use fvs_workloads::Tier;

/// One node of the cluster.
#[derive(Debug)]
pub struct ClusterNode {
    /// Node index within the cluster.
    pub id: usize,
    /// The tier this node serves (reporting only).
    pub tier: Option<Tier>,
    machine: Machine,
    predictor: Predictor,
    /// Reused per-tick sample buffer: ticking a node allocates nothing
    /// in steady state (the cluster zero-alloc proof covers this).
    samples_buf: Vec<CounterDelta>,
}

impl ClusterNode {
    /// Wrap a machine as node `id`.
    pub fn new(id: usize, machine: Machine, tier: Option<Tier>) -> Self {
        let predictor = Predictor::new(machine.num_cores(), machine.config().latencies);
        let samples_buf = Vec::with_capacity(machine.num_cores());
        ClusterNode {
            id,
            tier,
            machine,
            predictor,
            samples_buf,
        }
    }

    /// The node's machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Advance the node by one dispatch tick and feed the local
    /// predictor.
    pub fn tick(&mut self, t_s: f64) {
        self.machine.step(t_s);
        let mut samples = std::mem::take(&mut self.samples_buf);
        self.machine.sample_all_into(&mut samples);
        for (i, s) in samples.iter().enumerate() {
            self.predictor.push(i, s);
        }
        self.samples_buf = samples;
    }

    /// Close the local measurement window and produce the summary the
    /// coordinator needs — a few dozen bytes per processor, which is the
    /// entire cross-node communication cost of the scheme.
    pub fn summarize(&mut self) -> NodeSummary {
        let n = self.machine.num_cores();
        let now = self.machine.now_s();
        let models = (0..n)
            .map(|i| {
                let current = self.machine.core(i).requested_frequency();
                self.predictor.refit(i, current)
            })
            .collect();
        NodeSummary {
            node: self.id,
            sent_at_s: now,
            models,
            idle: (0..n).map(|i| self.machine.idle_signal(i)).collect(),
            current: (0..n)
                .map(|i| self.machine.core(i).requested_frequency())
                .collect(),
            power_w: self.machine.total_power_w(),
        }
    }

    /// Apply a frequency vector from the coordinator.
    pub fn apply(&mut self, freqs: &[FreqMhz]) {
        for (i, f) in freqs.iter().enumerate().take(self.machine.num_cores()) {
            self.machine.set_frequency(i, *f);
        }
    }

    /// Aggregate processor power right now.
    pub fn power_w(&self) -> f64 {
        self.machine.total_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvs_sim::MachineBuilder;
    use fvs_workloads::WorkloadSpec;

    #[test]
    fn summaries_contain_fitted_models() {
        let machine = MachineBuilder::p630()
            .workload(0, WorkloadSpec::synthetic(0.0, 1.0e12))
            .build();
        let mut node = ClusterNode::new(3, machine, Some(Tier::Db));
        for _ in 0..10 {
            node.tick(0.01);
        }
        let s = node.summarize();
        assert_eq!(s.node, 3);
        assert_eq!(s.models.len(), 4);
        let m = s.models[0].expect("busy core has a model");
        // Memory-bound: substantial frequency-dependent component.
        assert!(m.mem_time_per_instr > 1.0e-9);
        assert!(s.idle[1], "unassigned cores idle");
        assert_eq!(s.power_w, 560.0);
    }

    #[test]
    fn apply_sets_frequencies() {
        let machine = MachineBuilder::p630().build();
        let mut node = ClusterNode::new(0, machine, None);
        node.apply(&[FreqMhz(500), FreqMhz(600), FreqMhz(700), FreqMhz(800)]);
        assert_eq!(node.machine().effective_frequency(0), FreqMhz(500));
        assert_eq!(node.machine().effective_frequency(3), FreqMhz(800));
        assert_eq!(node.power_w(), 35.0 + 48.0 + 66.0 + 84.0);
    }
}
